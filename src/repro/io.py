"""Trajectory and field output writers.

Production NAQMD runs stream atomic trajectories and observables to disk
for visualization (VMD/OVITO-style extended XYZ) and post-processing.
Lengths are written in angstroms (the de-facto XYZ convention); the
reader converts back to bohr.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from repro.constants import BOHR_ANGSTROM


class XYZTrajectoryWriter:
    """Extended-XYZ trajectory writer (append-per-frame).

    Usage::

        with XYZTrajectoryWriter("run.xyz", symbols) as traj:
            for step in ...:
                traj.write_frame(positions_bohr, comment=f"t={t:.2f}")
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        symbols: Sequence[str],
        box_bohr: Optional[Sequence[float]] = None,
    ) -> None:
        if not symbols:
            raise ValueError("need at least one atom")
        self.path = pathlib.Path(path)
        self.symbols = list(symbols)
        self.box = None if box_bohr is None else tuple(float(b) for b in box_bohr)
        self.frames_written = 0
        self._fh: Optional[TextIO] = None

    def __enter__(self) -> "XYZTrajectoryWriter":
        self._fh = self.path.open("w")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Flush and close the output file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def write_frame(self, positions_bohr: np.ndarray, comment: str = "") -> None:
        """Append one frame (positions in bohr, written in angstrom)."""
        if self._fh is None:
            raise RuntimeError("writer is not open (use it as a context manager)")
        pos = np.asarray(positions_bohr, dtype=float)
        if pos.shape != (len(self.symbols), 3):
            raise ValueError(
                f"positions shape {pos.shape} != ({len(self.symbols)}, 3)"
            )
        header = comment.replace("\n", " ")
        if self.box is not None:
            lx, ly, lz = (b * BOHR_ANGSTROM for b in self.box)
            lattice = (
                f'Lattice="{lx:.6f} 0 0 0 {ly:.6f} 0 0 0 {lz:.6f}" '
            )
            header = lattice + header
        self._fh.write(f"{len(self.symbols)}\n{header}\n")
        for sym, r in zip(self.symbols, pos * BOHR_ANGSTROM):
            self._fh.write(f"{sym:<3s} {r[0]:16.8f} {r[1]:16.8f} {r[2]:16.8f}\n")
        self.frames_written += 1
        self._fh.flush()


def read_xyz_trajectory(
    path: Union[str, pathlib.Path],
) -> List[Tuple[List[str], np.ndarray, str]]:
    """Read every frame of an (extended-)XYZ file.

    Returns a list of (symbols, positions_bohr, comment) triples.
    """
    path = pathlib.Path(path)
    frames: List[Tuple[List[str], np.ndarray, str]] = []
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        if not lines[i].strip():
            i += 1
            continue
        try:
            natoms = int(lines[i].strip())
        except ValueError as exc:
            raise ValueError(f"malformed XYZ frame header at line {i + 1}") from exc
        if i + 1 + natoms >= len(lines) + 1:
            raise ValueError("truncated XYZ frame")
        comment = lines[i + 1]
        symbols: List[str] = []
        pos = np.zeros((natoms, 3))
        for k in range(natoms):
            parts = lines[i + 2 + k].split()
            if len(parts) < 4:
                raise ValueError(f"malformed atom line {i + 3 + k}")
            symbols.append(parts[0])
            pos[k] = [float(x) for x in parts[1:4]]
        frames.append((symbols, pos / BOHR_ANGSTROM, comment))
        i += 2 + natoms
    return frames


def write_field_profile(
    path: Union[str, pathlib.Path],
    coordinates: np.ndarray,
    values: np.ndarray,
    header: str = "",
) -> pathlib.Path:
    """Two-column text dump of a 1-D field (e.g. the FDTD A(z) profile)."""
    coordinates = np.asarray(coordinates, dtype=float)
    values = np.asarray(values, dtype=float)
    if coordinates.shape != values.shape or coordinates.ndim != 1:
        raise ValueError("coordinates and values must be equal-length 1-D")
    path = pathlib.Path(path)
    with path.open("w") as fh:
        if header:
            fh.write(f"# {header}\n")
        for x, v in zip(coordinates, values):
            fh.write(f"{x:18.10e} {v:18.10e}\n")
    return path
