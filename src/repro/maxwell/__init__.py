"""Maxwell solvers: laser pulses, vector-potential FDTD, scalar-potential PDE."""

from repro.maxwell.laser import LaserPulse, GaussianPulse, Cos2Pulse, CWField
from repro.maxwell.vector_potential import VectorPotentialFDTD
from repro.maxwell.scalar_potential import ScalarPotentialSolver

__all__ = [
    "LaserPulse",
    "GaussianPulse",
    "Cos2Pulse",
    "CWField",
    "VectorPotentialFDTD",
    "ScalarPotentialSolver",
]
