"""1-D FDTD propagation of the electromagnetic vector potential.

In the multiscale DC-MESH scheme light propagates on a coarse 1-D mesh
along the propagation axis while each DC domain samples A at its centre
X(alpha) (dipole approximation within a domain).  The wave equation in
the Coulomb-ish gauge used here is

    d^2 A / dt^2 = c^2 d^2 A / dz^2 + 4 pi c J(z, t),

with J the macroscopic polarization current deposited by the domains
(Gaussian units; the sign follows from Ampere's law with
E = -(1/c) dA/dt, and gives the stable plasma response
d^2A/dt^2 = c^2 d^2A/dz^2 - omega_p^2 A for free carriers).
Discretization: explicit central differences in both time and space
(leapfrog); stability requires the CFL condition c dt <= dz.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import C_LIGHT
from repro.maxwell.laser import LaserPulse


class VectorPotentialFDTD:
    """Leapfrog solver for the 1-D vector-potential wave equation.

    Parameters
    ----------
    nz:
        Mesh points along the propagation axis.
    dz:
        Mesh spacing (bohr).  The 1-D light mesh is much coarser than the
        electronic meshes (light wavelengths are ~10^4 bohr).
    dt:
        Time step (a.u.); must satisfy the CFL bound c dt <= dz.
    source:
        Optional boundary-injected pulse (applied at z index 0).
    polarization_axis:
        Which Cartesian component of A this scalar field represents.
    """

    def __init__(
        self,
        nz: int,
        dz: float,
        dt: float,
        source: Optional[LaserPulse] = None,
        polarization_axis: int = 0,
    ) -> None:
        if nz < 3:
            raise ValueError("need at least 3 mesh points")
        if dz <= 0 or dt <= 0:
            raise ValueError("dz and dt must be positive")
        self.courant = C_LIGHT * dt / dz
        if self.courant > 1.0:
            raise ValueError(
                f"CFL violated: c dt / dz = {self.courant:.3f} > 1 "
                f"(reduce dt or coarsen dz)"
            )
        if polarization_axis not in (0, 1, 2):
            raise ValueError("polarization_axis must be 0, 1, or 2")
        self.nz = nz
        self.dz = dz
        self.dt = dt
        self.source = source
        self.polarization_axis = polarization_axis
        self.a = np.zeros(nz)
        self.a_prev = np.zeros(nz)
        self.time = 0.0

    def deposit_current(self, j: np.ndarray) -> np.ndarray:
        """Validate and return the current profile (length nz)."""
        j = np.asarray(j, dtype=float)
        if j.shape != (self.nz,):
            raise ValueError(f"current must have shape ({self.nz},)")
        return j

    def step(self, current: Optional[np.ndarray] = None) -> None:
        """Advance A by one dt with the given polarization current."""
        j = (
            self.deposit_current(current)
            if current is not None
            else np.zeros(self.nz)
        )
        lap = (np.roll(self.a, -1) - 2.0 * self.a + np.roll(self.a, 1)) / (
            self.dz * self.dz
        )
        a_next = (
            2.0 * self.a
            - self.a_prev
            + self.dt * self.dt * (C_LIGHT ** 2 * lap + 4.0 * np.pi * C_LIGHT * j)
        )
        self.a_prev = self.a
        self.a = a_next
        self.time += self.dt
        if self.source is not None:
            self.a[0] = float(
                self.source.vector_potential(self.time)[self.polarization_axis]
            )

    def sample(self, z: float) -> float:
        """Linearly interpolated A at position z (periodic)."""
        x = (z / self.dz) % self.nz
        i0 = int(np.floor(x))
        frac = x - i0
        i1 = (i0 + 1) % self.nz
        return float((1.0 - frac) * self.a[i0] + frac * self.a[i1])

    def sample_vector(self, z: float) -> np.ndarray:
        """A as a 3-vector at position z (only the polarized component set)."""
        v = np.zeros(3)
        v[self.polarization_axis] = self.sample(z)
        return v

    def energy(self) -> float:
        """Field energy density integral (1/8 pi) [ (dA/c dt)^2 + (dA/dz)^2 ].

        A conserved diagnostic for source-free propagation.
        """
        dadt = (self.a - self.a_prev) / self.dt
        dadz = (np.roll(self.a, -1) - np.roll(self.a, 1)) / (2.0 * self.dz)
        e2 = (dadt / C_LIGHT) ** 2
        b2 = dadz ** 2
        return float((e2 + b2).sum()) * self.dz / (8.0 * np.pi)
