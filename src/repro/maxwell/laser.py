"""Laser pulse shapes (the LCLS-II / fs-laser stand-ins of the application).

All pulses are specified through their vector potential A(t) so that the
velocity-gauge coupling of the LFD propagator is exact; the electric
field follows as E = -(1/c) dA/dt.  Amplitudes are in atomic units; use
:func:`repro.constants.laser_intensity_to_field` to convert from W/cm^2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.constants import C_LIGHT


@dataclass(frozen=True)
class LaserPulse:
    """Base class: a polarized vector-potential waveform.

    Attributes
    ----------
    e0:
        Peak electric-field amplitude (a.u.).
    omega:
        Carrier angular frequency (a.u.).
    polarization:
        Unit polarization vector.
    """

    e0: float
    omega: float
    polarization: Sequence[float] = (1.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if self.omega <= 0:
            raise ValueError("omega must be positive")
        pol = np.asarray(self.polarization, dtype=float)
        n = np.linalg.norm(pol)
        if n == 0:
            raise ValueError("polarization must be non-zero")
        object.__setattr__(self, "polarization", tuple(pol / n))

    @property
    def a0(self) -> float:
        """Peak vector-potential amplitude c E0 / omega."""
        return C_LIGHT * self.e0 / self.omega

    def envelope(self, t: float) -> float:
        """Dimensionless envelope in [0, 1]; overridden by subclasses."""
        raise NotImplementedError

    def vector_potential(self, t: float) -> np.ndarray:
        """A(t) = A0 * envelope(t) * cos(omega t) * polarization."""
        amp = self.a0 * self.envelope(t) * math.cos(self.omega * t)
        return amp * np.asarray(self.polarization)

    def electric_field(self, t: float, dt: float = 1e-3) -> np.ndarray:
        """E(t) = -(1/c) dA/dt, central difference."""
        a_p = self.vector_potential(t + dt)
        a_m = self.vector_potential(t - dt)
        return -(a_p - a_m) / (2.0 * dt * C_LIGHT)

    def fluence(self, t_end: float, nsamples: int = 2000) -> float:
        """Time-integrated |E|^2 (a.u.; proportional to the pulse fluence)."""
        ts = np.linspace(0.0, t_end, nsamples)
        e2 = [float(np.dot(self.electric_field(t), self.electric_field(t)))
              for t in ts]
        return float(np.trapezoid(e2, ts))


@dataclass(frozen=True)
class GaussianPulse(LaserPulse):
    """Gaussian envelope centred at ``t0`` with RMS duration ``sigma``."""

    t0: float = 0.0
    sigma: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def envelope(self, t: float) -> float:
        x = (t - self.t0) / self.sigma
        return math.exp(-0.5 * x * x)


@dataclass(frozen=True)
class Cos2Pulse(LaserPulse):
    """cos^2 envelope of total duration ``duration`` starting at t = 0."""

    duration: float = 100.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def envelope(self, t: float) -> float:
        if t < 0.0 or t > self.duration:
            return 0.0
        return math.cos(math.pi * (t - self.duration / 2.0) / self.duration) ** 2


@dataclass(frozen=True)
class CWField(LaserPulse):
    """Continuous wave (envelope = 1); useful for linear-response tests."""

    def envelope(self, t: float) -> float:
        return 1.0


@dataclass(frozen=True)
class DeltaKick:
    """An impulsive kick A(t >= 0) = -c * k0 * polarization.

    The standard probe for absorption spectra: a step in A imparts
    momentum hbar k0 to every electron at t = 0.
    """

    k0: float
    polarization: Sequence[float] = (1.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        pol = np.asarray(self.polarization, dtype=float)
        n = np.linalg.norm(pol)
        if n == 0:
            raise ValueError("polarization must be non-zero")
        object.__setattr__(self, "polarization", tuple(pol / n))

    def vector_potential(self, t: float) -> np.ndarray:
        """Step vector potential: zero before the kick, constant after."""
        if t < 0.0:
            return np.zeros(3)
        return -C_LIGHT * self.k0 * np.asarray(self.polarization)
