"""Auxiliary PDE solver for the scalar potential phi (Refs. 27-28).

Instead of solving the Poisson equation exactly at every step, DC-MESH
evolves phi with a Car-Parrinello-style damped wave equation

    d^2 phi / dt^2  =  c_s^2 ( nabla^2 phi + 4 pi rho )  -  gamma  d phi / dt,

whose stationary point is exactly the Poisson solution.  This keeps the
scalar potential local-in-time (no global solve inside the fast QD loop)
and is the "auxiliary partial differential equation for phi" of
Section II.  The solver exposes both single steps (for coupled dynamics)
and a relax-to-convergence mode whose result is tested against the
multigrid/FFT Poisson solution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.grids.grid import Grid3D
from repro.multigrid.smoothers import laplacian_periodic


class ScalarPotentialSolver:
    """Damped-wave relaxation of the scalar potential on a periodic grid.

    Parameters
    ----------
    grid:
        The field grid.
    cs:
        Pseudo-wave speed (a.u.).  Stability requires
        cs * dt <= min(h) / sqrt(3).
    gamma:
        Damping rate; critical damping ~ 2 cs k_min gives the fastest
        relaxation to the Poisson solution.
    dt:
        Pseudo-time step.
    """

    def __init__(
        self,
        grid: Grid3D,
        cs: float = 1.0,
        gamma: Optional[float] = None,
        dt: Optional[float] = None,
    ) -> None:
        if cs <= 0:
            raise ValueError("cs must be positive")
        self.grid = grid
        self.cs = cs
        hmin = min(grid.spacing)
        self.dt = dt if dt is not None else 0.5 * hmin / (cs * np.sqrt(3.0))
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if cs * self.dt > hmin / np.sqrt(3.0) + 1e-12:
            raise ValueError("CFL violated for the damped wave equation")
        if gamma is None:
            k_min = 2.0 * np.pi / max(grid.lengths)
            gamma = 2.0 * cs * k_min
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma
        self.phi = grid.zeros()
        self.phi_dot = grid.zeros()

    def step(self, rho: np.ndarray) -> None:
        """One damped-leapfrog step toward nabla^2 phi = -4 pi rho."""
        rho = np.asarray(rho, dtype=float)
        if rho.shape != self.grid.shape:
            raise ValueError("density shape does not match grid")
        accel = self.cs ** 2 * (
            laplacian_periodic(self.phi, self.grid.spacing)
            + 4.0 * np.pi * (rho - rho.mean())
        ) - self.gamma * self.phi_dot
        self.phi_dot = self.phi_dot + self.dt * accel
        self.phi = self.phi + self.dt * self.phi_dot
        self.phi -= self.phi.mean()

    def residual_norm(self, rho: np.ndarray) -> float:
        """|| nabla^2 phi + 4 pi rho ||_2 (zero at the Poisson solution)."""
        rho = np.asarray(rho, dtype=float)
        r = laplacian_periodic(self.phi, self.grid.spacing) + 4.0 * np.pi * (
            rho - rho.mean()
        )
        return float(np.linalg.norm(r))

    def relax(
        self, rho: np.ndarray, tol: float = 1e-6, max_steps: int = 20000
    ) -> int:
        """Iterate to the Poisson solution; returns the steps taken."""
        rho = np.asarray(rho, dtype=float)
        scale = max(float(np.linalg.norm(4.0 * np.pi * rho)), 1e-300)
        for n in range(max_steps):
            self.step(rho)
            if self.residual_norm(rho) <= tol * scale:
                return n + 1
        raise RuntimeError(
            f"scalar-potential relaxation did not reach tol={tol} in "
            f"{max_steps} steps (residual {self.residual_norm(rho):.3e})"
        )
