"""Molecular dynamics: velocity Verlet with optional Berendsen thermostat.

Atoms advance with the slow time step Delta_MD ~ fs while electrons take
N_QD = 10^2..10^3 sub-steps in between (Eqs. 3-4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.constants import KB_HA


@dataclass
class MDState:
    """Positions, velocities and masses of the nuclei (a.u.)."""

    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        self.velocities = np.asarray(self.velocities, dtype=float)
        self.masses = np.asarray(self.masses, dtype=float)
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3) or self.velocities.shape != (n, 3):
            raise ValueError("positions/velocities must have shape (natoms, 3)")
        if self.masses.shape != (n,):
            raise ValueError("need one mass per atom")
        if np.any(self.masses <= 0):
            raise ValueError("masses must be positive")

    @property
    def natoms(self) -> int:
        return self.positions.shape[0]

    def copy(self) -> "MDState":
        """Deep copy of the nuclear state."""
        return MDState(
            self.positions.copy(), self.velocities.copy(), self.masses.copy()
        )


def kinetic_energy(state: MDState) -> float:
    """Total nuclear kinetic energy (Ha)."""
    return 0.5 * float(np.sum(state.masses[:, None] * state.velocities ** 2))


def temperature(state: MDState) -> float:
    """Instantaneous temperature (K) from equipartition."""
    dof = 3 * state.natoms
    if dof == 0:
        return 0.0
    return 2.0 * kinetic_energy(state) / (dof * KB_HA)


def maxwell_boltzmann_velocities(
    masses: np.ndarray, temp_k: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample velocities at a target temperature, with zero net momentum."""
    masses = np.asarray(masses, dtype=float)
    sigma = np.sqrt(KB_HA * temp_k / masses)
    v = rng.standard_normal((masses.size, 3)) * sigma[:, None]
    # Remove the centre-of-mass drift.
    p = (masses[:, None] * v).sum(axis=0)
    v -= p / masses.sum()
    return v


class VelocityVerlet:
    """Velocity-Verlet integrator with a pluggable force callback.

    Parameters
    ----------
    force_fn:
        positions -> forces, shape (natoms, 3), in Ha/bohr.
    dt:
        MD time step Delta_MD (a.u.).
    thermostat_tau:
        Berendsen time constant (a.u.); ``None`` disables the thermostat.
    target_temp:
        Thermostat set point (K).
    """

    def __init__(
        self,
        force_fn: Callable[[np.ndarray], np.ndarray],
        dt: float,
        thermostat_tau: Optional[float] = None,
        target_temp: float = 300.0,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if thermostat_tau is not None and thermostat_tau <= 0:
            raise ValueError("thermostat_tau must be positive")
        self.force_fn = force_fn
        self.dt = dt
        self.thermostat_tau = thermostat_tau
        self.target_temp = target_temp
        self._cached_forces: Optional[np.ndarray] = None

    def _forces(self, positions: np.ndarray) -> np.ndarray:
        f = np.asarray(self.force_fn(positions), dtype=float)
        if f.shape != positions.shape:
            raise ValueError("force callback returned a wrong shape")
        return f

    def step(self, state: MDState) -> None:
        """Advance the state by one Delta_MD in place."""
        dt = self.dt
        m = state.masses[:, None]
        f0 = (
            self._cached_forces
            if self._cached_forces is not None
            else self._forces(state.positions)
        )
        state.positions = state.positions + state.velocities * dt + 0.5 * f0 / m * dt * dt
        f1 = self._forces(state.positions)
        state.velocities = state.velocities + 0.5 * (f0 + f1) / m * dt
        self._cached_forces = f1
        if self.thermostat_tau is not None:
            t_now = temperature(state)
            if t_now > 0:
                lam = np.sqrt(
                    1.0
                    + (dt / self.thermostat_tau) * (self.target_temp / t_now - 1.0)
                )
                state.velocities *= lam

    def rescale_velocities(self, state: MDState, scale: float) -> None:
        """Apply the surface-hopping velocity rescale factor."""
        if scale < 0:
            raise ValueError("scale must be non-negative")
        state.velocities *= scale
        self._cached_forces = self._cached_forces  # forces unchanged

    def invalidate_forces(self) -> None:
        """Drop cached forces (occupations changed between steps)."""
        self._cached_forces = None

    def run(
        self,
        state: MDState,
        nsteps: int,
        observer: Optional[Callable[[int, MDState], None]] = None,
    ) -> None:
        """Run ``nsteps`` MD steps."""
        for i in range(nsteps):
            self.step(state)
            if observer is not None:
                observer(i, state)
