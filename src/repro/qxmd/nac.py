"""Nonadiabatic couplings (NAC) from finite-difference orbital overlaps.

The surface-hopping operator U_SH of Eq. (3) updates occupations
according to NAC arising from slow atomic motions.  The couplings are
evaluated with the standard Hammes-Schiffer/Tully finite-difference
overlap formula between adiabatic orbitals at consecutive MD steps,

    d_jk(t + dt/2) = [ <phi_j(t)|phi_k(t+dt)> - <phi_j(t+dt)|phi_k(t)> ] / (2 dt),

after aligning the arbitrary gauge phases of the eigensolver output.
"""

from __future__ import annotations

import numpy as np

from repro.lfd.wavefunction import WaveFunctionSet


def align_phases(prev: WaveFunctionSet, curr: WaveFunctionSet) -> None:
    """Fix the gauge of ``curr`` so that <prev_s|curr_s> is real positive.

    Adiabatic eigenvectors carry an arbitrary phase per SCF solve; NAC
    values are only meaningful after this alignment.  Modifies ``curr``
    in place.
    """
    if prev.norb != curr.norb:
        raise ValueError("orbital counts differ")
    s = prev.overlap_matrix(curr)
    diag = np.diag(s)
    phases = np.ones(curr.norb, dtype=np.complex128)
    nonzero = np.abs(diag) > 1e-12
    phases[nonzero] = diag[nonzero].conj() / np.abs(diag[nonzero])
    curr.psi *= phases.astype(curr.dtype)


def nonadiabatic_couplings(
    prev: WaveFunctionSet,
    curr: WaveFunctionSet,
    dt: float,
    align: bool = True,
) -> np.ndarray:
    """NAC matrix d_jk at the midpoint of an MD step (anti-Hermitian).

    Parameters
    ----------
    prev, curr:
        Adiabatic orbital sets at t and t+dt (``curr`` is phase-aligned in
        place when ``align`` is set).
    dt:
        The MD time step.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if align:
        align_phases(prev, curr)
    s_fwd = prev.overlap_matrix(curr)   # <phi_j(t)|phi_k(t+dt)>
    d = (s_fwd - s_fwd.conj().T) / (2.0 * dt)
    return d
