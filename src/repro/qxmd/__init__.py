"""QXMD: the CPU-resident quantum-excitation molecular-dynamics subprogram.

Mirrors the Fortran/MPI QXMD side of DC-MESH (Fig. 1b): per-domain
Kohn-Sham ground/adiabatic states from global-local SCF iterations
(3 SCF x 3 CG in the paper's benchmark), surface hopping between
adiabatic states driven by nonadiabatic couplings, excited-state
(Ehrenfest) forces and velocity-Verlet molecular dynamics.
"""

from repro.qxmd.xc import lda_exchange_correlation, xc_energy_density
from repro.qxmd.hartree import hartree_potential, hartree_energy
from repro.qxmd.hamiltonian import KSHamiltonian
from repro.qxmd.cg import cg_eigensolve, rayleigh_quotients
from repro.qxmd.scf import SCFConfig, SCFResult, scf_solve
from repro.qxmd.dftsolver import DomainSolver, GlobalDCSolver, DCResult
from repro.qxmd.nac import nonadiabatic_couplings, align_phases
from repro.qxmd.sh_kernels import HopPolicy
from repro.qxmd.surface_hopping import FSSH, SurfaceHoppingState
from repro.qxmd.forces import ForceCalculator, ForceBreakdown
from repro.qxmd.md import VelocityVerlet, MDState, kinetic_energy, temperature
from repro.qxmd.mixing import LinearMixer, PulayMixer, make_mixer
from repro.qxmd.itp import imaginary_time_ground_state
from repro.qxmd.xc_spin import lsda_exchange_correlation
from repro.qxmd.scf_spin import SpinSCFResult, scf_solve_spin, spin_occupations

__all__ = [
    "lda_exchange_correlation",
    "xc_energy_density",
    "hartree_potential",
    "hartree_energy",
    "KSHamiltonian",
    "cg_eigensolve",
    "rayleigh_quotients",
    "SCFConfig",
    "SCFResult",
    "scf_solve",
    "DomainSolver",
    "GlobalDCSolver",
    "DCResult",
    "nonadiabatic_couplings",
    "align_phases",
    "FSSH",
    "HopPolicy",
    "SurfaceHoppingState",
    "ForceCalculator",
    "ForceBreakdown",
    "VelocityVerlet",
    "MDState",
    "kinetic_energy",
    "temperature",
    "LinearMixer",
    "PulayMixer",
    "make_mixer",
    "imaginary_time_ground_state",
    "lsda_exchange_correlation",
    "SpinSCFResult",
    "scf_solve_spin",
    "spin_occupations",
]
