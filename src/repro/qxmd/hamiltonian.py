"""The Kohn-Sham Hamiltonian of one DC domain.

H = T (3-point finite-difference kinetic) + v_loc (local pseudopotential
+ Hartree + local XC, a multiplicative field) + optional Kleinman-
Bylander nonlocal projectors.  This is the operator the CG eigensolver
refines against and the reference for the scissor shift (the paper's
"nl" vs "loc" Hamiltonians of Eq. 8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import HBAR, M_ELECTRON
from repro.grids.grid import Grid3D
from repro.lfd.wavefunction import WaveFunctionSet
from repro.pseudo.kb import KBProjectorSet


class KSHamiltonian:
    """Apply-oriented Kohn-Sham Hamiltonian on a periodic grid."""

    def __init__(
        self,
        grid: Grid3D,
        vloc: np.ndarray,
        kb: Optional[KBProjectorSet] = None,
        mass: float = M_ELECTRON,
    ) -> None:
        vloc = np.asarray(vloc, dtype=float)
        if vloc.shape != grid.shape:
            raise ValueError(f"vloc shape {vloc.shape} != grid {grid.shape}")
        if kb is not None and kb.grid.shape != grid.shape:
            raise ValueError("KB projectors live on a different grid")
        self.grid = grid
        self.vloc = vloc
        self.kb = kb
        self.mass = mass

    def without_nonlocal(self) -> "KSHamiltonian":
        """The local-only Hamiltonian h_loc of Eq. (5)."""
        return KSHamiltonian(self.grid, self.vloc, kb=None, mass=self.mass)

    # ------------------------------------------------------------------ #
    def apply_kinetic(self, psi: np.ndarray) -> np.ndarray:
        """T|psi> with the 3-point stencil, for SoA or single-orbital data."""
        out = np.zeros_like(psi, dtype=np.complex128)
        for axis in range(3):
            h = self.grid.spacing[axis]
            d = HBAR * HBAR / (self.mass * h * h)
            o = -0.5 * d
            out += d * psi + o * (
                np.roll(psi, 1, axis=axis) + np.roll(psi, -1, axis=axis)
            )
        return out

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """H|psi>.  ``psi`` is either (nx,ny,nz) or SoA (nx,ny,nz,norb)."""
        if psi.ndim == 4:
            vpsi = self.vloc[..., None] * psi
        elif psi.ndim == 3:
            vpsi = self.vloc * psi
        else:
            raise ValueError("psi must be a 3-D field or SoA orbital array")
        out = self.apply_kinetic(psi) + vpsi
        if self.kb is not None:
            out = out + self.kb.apply(np.asarray(psi, dtype=np.complex128))
        return out

    def apply_wf(self, wf: WaveFunctionSet) -> np.ndarray:
        """H applied to every orbital of a wave-function set (SoA result)."""
        return self.apply(wf.psi.astype(np.complex128, copy=False))

    # ------------------------------------------------------------------ #
    def expectation(self, wf: WaveFunctionSet) -> np.ndarray:
        """Per-orbital <psi_s|H|psi_s> (real for Hermitian H)."""
        hpsi = self.apply_wf(wf)
        m = wf.as_matrix().astype(np.complex128, copy=False)
        hm = hpsi.reshape(m.shape)
        return np.real(np.einsum("gs,gs->s", m.conj(), hm)) * self.grid.dvol

    def subspace_matrix(self, wf: WaveFunctionSet) -> np.ndarray:
        """<psi_s|H|psi_u> in the span of the orbital set (one GEMM)."""
        hpsi = self.apply_wf(wf).reshape(self.grid.npoints, wf.norb)
        m = wf.as_matrix().astype(np.complex128, copy=False)
        return (m.conj().T @ hpsi) * self.grid.dvol

    def dense_matrix(self) -> np.ndarray:
        """Full dense matrix (tests only; O(Ngrid^2) memory)."""
        n = self.grid.npoints
        if n > 2048:
            raise MemoryError(f"dense Hamiltonian of {n} points refused")
        eye = np.eye(n, dtype=np.complex128)
        cols = []
        for i in range(n):
            col = self.apply(eye[:, i].reshape(self.grid.shape))
            cols.append(col.ravel())
        return np.stack(cols, axis=1)
