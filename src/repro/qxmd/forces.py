"""Atomic forces: electrostatic, core repulsion, nonlocal, excited-state.

The Ehrenfest/excited-state character enters through the occupations: the
electron density (and hence the electrostatic and nonlocal forces) is
built with the occupation numbers delivered by surface hopping and the
LFD occupation remap, so laser-modified occupations reshape the force
landscape exactly as in Eq. (3)'s modified energy surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.grids.grid import Grid3D
from repro.lfd.wavefunction import WaveFunctionSet
from repro.multigrid.poisson import PoissonMultigrid
from repro.pseudo.elements import PseudoSpecies
from repro.pseudo.kb import KBProjectorSet
from repro.pseudo.local import (
    core_repulsion_pair_forces,
    gaussian_ion_density,
    ion_structure_fourier,
    ionic_density,
    ionic_density_fourier,
)
from repro.multigrid.poisson import solve_poisson_fft
from repro.qxmd.hartree import hartree_potential


@dataclass
class ForceBreakdown:
    """Per-term force decomposition, each of shape (natoms, 3)."""

    electrostatic: np.ndarray
    core_pair: np.ndarray
    nonlocal_: np.ndarray

    @property
    def total(self) -> np.ndarray:
        return self.electrostatic + self.core_pair + self.nonlocal_


def _gradient(field: np.ndarray, grid: Grid3D) -> list[np.ndarray]:
    """Central-difference gradient of a periodic field."""
    out = []
    for axis in range(3):
        h = grid.spacing[axis]
        out.append(
            (np.roll(field, -1, axis=axis) - np.roll(field, 1, axis=axis)) / (2.0 * h)
        )
    return out


class ForceCalculator:
    """Computes forces for a given electronic state.

    Parameters
    ----------
    grid:
        Global (or domain) grid.
    species:
        One species per atom.
    poisson:
        Optional multigrid solver to amortize across MD steps.
    """

    def __init__(
        self,
        grid: Grid3D,
        species: Sequence[PseudoSpecies],
        poisson: Optional[PoissonMultigrid] = None,
    ) -> None:
        self.grid = grid
        self.species = list(species)
        self.poisson = poisson if poisson is not None else PoissonMultigrid(grid)

    # ------------------------------------------------------------------ #
    def electrostatic_forces(
        self, positions: np.ndarray, rho_e: np.ndarray
    ) -> np.ndarray:
        """F_I = -integral rho_I(r - R_I) grad phi_total(r) dV.

        phi_total is the potential of the *net* charge (ions minus
        electrons); the ion's own symmetric Gaussian contributes no net
        self-force, so the full potential can be used directly.
        """
        positions = np.asarray(positions, dtype=float)
        rho_ion = ionic_density(self.grid, positions, self.species)
        phi = hartree_potential(
            rho_ion - rho_e, self.grid, method="multigrid", solver=self.poisson
        )
        grad = _gradient(phi, self.grid)
        forces = np.zeros((positions.shape[0], 3))
        for i, (r, sp) in enumerate(zip(positions, self.species)):
            rho_i = gaussian_ion_density(self.grid, r, sp.zval, sp.gauss_width)
            for axis in range(3):
                forces[i, axis] = -float(np.sum(rho_i * grad[axis])) * self.grid.dvol
        return forces

    def electrostatic_forces_spectral(
        self, positions: np.ndarray, rho_e: np.ndarray
    ) -> np.ndarray:
        """Spectrally exact electrostatic forces.

        Builds the ionic densities in Fourier space (translation-exact
        periodic Gaussians) and evaluates F_I = -int rho_I grad phi with
        the spectral gradient, which makes the force *analytically* the
        negative gradient of the grid electrostatic energy -- verified to
        near machine precision in the consistency tests.  Prefer this for
        MD energy conservation; the real-space variant remains for the
        minimum-image code path.
        """
        positions = np.asarray(positions, dtype=float)
        grid = self.grid
        rho_ion = ionic_density_fourier(grid, positions, self.species)
        phi = solve_poisson_fft(rho_ion - rho_e, grid)
        phi_k = np.fft.fftn(phi)
        kvecs = [
            2.0 * np.pi * np.fft.fftfreq(n, d=h)
            for n, h in zip(grid.shape, grid.spacing)
        ]
        kx, ky, kz = np.meshgrid(*kvecs, indexing="ij")
        grads = [
            np.real(np.fft.ifftn(1j * kd * phi_k)) for kd in (kx, ky, kz)
        ]
        forces = np.zeros((positions.shape[0], 3))
        for i, (r, sp) in enumerate(zip(positions, self.species)):
            rho_i = (
                np.real(
                    np.fft.ifftn(
                        ion_structure_fourier(
                            grid, r[None, :], [sp.zval], [sp.gauss_width]
                        )
                    )
                )
                / grid.dvol
            )
            for axis in range(3):
                forces[i, axis] = -float(np.sum(rho_i * grads[axis])) * grid.dvol
        return forces

    def nonlocal_forces(
        self,
        positions: np.ndarray,
        wf: WaveFunctionSet,
        occupations: np.ndarray,
        kb: Optional[KBProjectorSet] = None,
    ) -> np.ndarray:
        """Forces from the KB projectors, F_I = -dE_nl/dR_I.

        Uses d chi(r - R)/dR = -grad_r chi and the chain rule on
        E_nl = sum_{s,c} f_s E_c |<chi_c|psi_s>|^2 for projectors owned by
        atom I.
        """
        positions = np.asarray(positions, dtype=float)
        natoms = positions.shape[0]
        forces = np.zeros((natoms, 3))
        if kb is None:
            kb = KBProjectorSet(self.grid, positions, self.species)
        if kb.nproj == 0:
            return forces
        occupations = np.asarray(occupations, dtype=float)
        psi = wf.as_matrix().astype(np.complex128, copy=False)   # (Ngrid, Norb)
        dvol = self.grid.dvol
        coeff = (kb.projectors.T @ psi) * dvol       # (Nproj, Norb)
        for axis in range(3):
            h = self.grid.spacing[axis]
            proj_fields = kb.projectors.reshape(self.grid.shape + (kb.nproj,))
            dproj = (
                np.roll(proj_fields, -1, axis=axis)
                - np.roll(proj_fields, 1, axis=axis)
            ) / (2.0 * h)
            dmat = dproj.reshape(self.grid.npoints, kb.nproj)
            dcoeff = (dmat.T @ psi) * dvol           # <d chi/dr | psi>
            # dE/dR = -2 Re sum f_s E_c <dchi|psi> <psi|chi>; F = -dE/dR.
            contrib = 2.0 * np.real(
                np.einsum("ps,p,ps,s->p", dcoeff, kb.energies, coeff.conj(),
                          occupations)
            )
            for p in range(kb.nproj):
                forces[kb.owners[p], axis] -= contrib[p]
        return forces

    # ------------------------------------------------------------------ #
    def compute(
        self,
        positions: np.ndarray,
        wf: WaveFunctionSet,
        occupations: np.ndarray,
        kb: Optional[KBProjectorSet] = None,
        include_nonlocal: bool = True,
    ) -> ForceBreakdown:
        """Full force breakdown for the current electronic state."""
        from repro.lfd.observables import density

        rho_e = density(wf, occupations)
        f_es = self.electrostatic_forces(positions, rho_e)
        f_pair = core_repulsion_pair_forces(self.grid, positions, self.species)
        if include_nonlocal:
            f_nl = self.nonlocal_forces(positions, wf, occupations, kb=kb)
        else:
            f_nl = np.zeros_like(f_es)
        return ForceBreakdown(electrostatic=f_es, core_pair=f_pair, nonlocal_=f_nl)
