"""Globally-sparse, locally-dense DC-DFT solvers (Section II).

:class:`DomainSolver` solves one DC domain's Kohn-Sham problem on its
core+buffer grid with the globally informed potential as the LDC
(density-adaptive) boundary condition.  :class:`GlobalDCSolver` runs the
global-local SCF iteration: the global electrostatic potential is solved
once per cycle with the O(N) multigrid on the *global* grid (globally
sparse), each domain then refines its orbitals against the gathered
local potential (locally dense), and the domain core densities recombine
exactly (partition of unity) into the next global density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.grids.domain import Domain, DomainDecomposition
from repro.grids.grid import Grid3D
from repro.lfd.observables import density
from repro.lfd.wavefunction import WaveFunctionSet
from repro.multigrid.poisson import PoissonMultigrid
from repro.obs import trace_span
from repro.pseudo.elements import PseudoSpecies
from repro.pseudo.kb import KBProjectorSet
from repro.pseudo.local import core_repulsion_potential, ionic_density
from repro.qxmd.cg import cg_eigensolve
from repro.qxmd.hamiltonian import KSHamiltonian
from repro.qxmd.hartree import hartree_potential
from repro.qxmd.scf import default_occupations
from repro.qxmd.xc import lda_exchange_correlation
from repro.resilience.faults import fault_point
from repro.resilience.guards import SCFDivergenceError


@dataclass
class DomainState:
    """Per-domain electronic state."""

    domain: Domain
    wf: WaveFunctionSet
    occupations: np.ndarray
    eigenvalues: np.ndarray
    kb: Optional[KBProjectorSet]
    vloc: np.ndarray
    atom_indices: List[int]


class DomainSolver:
    """Refine one domain's orbitals against an externally supplied potential.

    The LDC boundary condition enters through the gathered global
    potential: the buffer region of ``vloc`` carries the globally informed
    values, so local orbitals feel the right environment without any
    global orbital data.
    """

    def __init__(self, domain: Domain, norb: int, seed: int = 0) -> None:
        self.domain = domain
        self.norb = norb
        self.seed = seed

    def initial_wavefunctions(self) -> WaveFunctionSet:
        """Seeded random orthonormal start (deterministic per domain)."""
        rng = np.random.default_rng(self.seed + 7919 * self.domain.alpha)
        return WaveFunctionSet.random(self.domain.local_grid, self.norb, rng)

    def refine(
        self,
        wf: WaveFunctionSet,
        vloc_local: np.ndarray,
        kb: Optional[KBProjectorSet],
        ncg: int,
    ) -> np.ndarray:
        """A few CG sweeps against the gathered potential; returns eigenvalues."""
        ham = KSHamiltonian(self.domain.local_grid, vloc_local, kb=kb)
        return cg_eigensolve(ham, wf, ncg=ncg)


def _domain_refine_task(args: tuple) -> tuple:
    """Executor task: refine one domain against the global potential.

    ``args`` is ``(domain, psi, occupations, kb, v_global, ncg, seed)``.
    Under the serial and thread backends ``psi`` is the caller's live
    orbital array and is refined in place; under the process backend it
    arrives as a read-only shared-memory view and is copied first, with
    the parent writing the returned orbitals back.  Returns
    ``(psi, eigenvalues, vloc, rho_local)``.
    """
    domain, psi, occupations, kb, v_global, ncg, seed = args
    if not psi.flags.writeable:
        psi = psi.copy()
    wf = WaveFunctionSet(domain.local_grid, psi.shape[-1], data=psi, copy=False)
    vloc = domain.gather(v_global)
    eigenvalues = DomainSolver(domain, wf.norb, seed=seed).refine(
        wf, vloc, kb, ncg
    )
    rho_local = density(wf, occupations)
    return wf.psi, eigenvalues, vloc, rho_local


@dataclass
class DCResult:
    """State of a converged (or iteration-limited) global-local SCF."""

    states: List[DomainState]
    rho_global: np.ndarray
    v_global: np.ndarray
    energy_history: List[float]

    def eigenvalues(self, alpha: int) -> np.ndarray:
        """Eigenvalues of domain ``alpha``."""
        return self.states[alpha].eigenvalues

    def band_sum(self) -> float:
        """Sum over domains of occupied band energies (monitoring metric)."""
        return float(
            sum(np.dot(s.occupations, s.eigenvalues) for s in self.states)
        )


class GlobalDCSolver:
    """Global-local SCF across all DC domains.

    Parameters
    ----------
    grid:
        Global periodic grid.
    decomposition:
        DC domain decomposition of the grid.
    positions, species:
        All atoms; they are assigned to domains by core containment.
    norb_extra:
        Unoccupied orbitals per domain beyond the Aufbau filling (needed
        by surface hopping and the scissor correction).
    executor:
        A :class:`repro.parallel.executor.DomainExecutor` running the
        per-domain local refinements (None means serial).  All backends
        produce the same physics; serial and thread are bit-identical.
    """

    def __init__(
        self,
        grid: Grid3D,
        decomposition: DomainDecomposition,
        positions: np.ndarray,
        species: Sequence[PseudoSpecies],
        norb_extra: int = 2,
        nscf: int = 3,
        ncg: int = 3,
        mixing: float = 0.4,
        include_nonlocal: bool = True,
        seed: int = 1234,
        executor=None,
    ) -> None:
        self.grid = grid
        self.decomposition = decomposition
        self.positions = np.asarray(positions, dtype=float)
        self.species = list(species)
        if self.positions.shape[0] != len(self.species):
            raise ValueError("need one species per atom")
        self.norb_extra = norb_extra
        self.nscf = nscf
        self.ncg = ncg
        self.mixing = mixing
        self.include_nonlocal = include_nonlocal
        self.seed = seed
        self.poisson = PoissonMultigrid(grid)
        self.owners = decomposition.assign_atoms(self.positions)
        self.executor = executor

    def _executor(self):
        """The configured executor, defaulting to a fresh serial backend."""
        if self.executor is None:
            # Imported lazily: repro.parallel's package __init__ imports
            # this module back through DistributedDCSolver.
            from repro.parallel.backends.serial import SerialBackend

            self.executor = SerialBackend(seed=self.seed)
        return self.executor

    def _domain_setup(self, dom: Domain, atom_idx: List[int]) -> DomainState:
        """Build one domain's orbitals, occupations and projectors."""
        local_species = [self.species[i] for i in atom_idx]
        local_pos = self.positions[atom_idx] if atom_idx else np.zeros((0, 3))
        nelec = sum(sp.zval for sp in local_species)
        norb = max(1, int(np.ceil(nelec / 2.0)) + self.norb_extra)
        occ = default_occupations(nelec, norb)
        solver = DomainSolver(dom, norb, seed=self.seed)
        wf = solver.initial_wavefunctions()
        kb = (
            KBProjectorSet(dom.local_grid, local_pos, local_species)
            if (self.include_nonlocal and atom_idx)
            else None
        )
        return DomainState(
            domain=dom,
            wf=wf,
            occupations=occ,
            eigenvalues=np.zeros(norb),
            kb=kb,
            vloc=dom.local_grid.zeros(),
            atom_indices=list(atom_idx),
        )

    def solve(self, warm_wfs: Optional[Sequence] = None) -> DCResult:
        """Run the global-local SCF iterations (the QXMD DC phase).

        ``warm_wfs`` optionally seeds each domain with previous orbitals
        (one WaveFunctionSet or None per domain); entries whose orbital
        count no longer matches (atoms migrated) fall back to the random
        start.  Warm starts make consecutive MD-step solves converge in
        the paper's small 3 SCF x 3 CG budget.
        """
        grid = self.grid
        rho_ion = ionic_density(grid, self.positions, self.species)
        v_core = core_repulsion_potential(grid, self.positions, self.species)
        nelec_total = sum(sp.zval for sp in self.species)
        states = [
            self._domain_setup(dom, idx)
            for dom, idx in zip(self.decomposition, self.owners)
        ]
        if warm_wfs is not None:
            if len(warm_wfs) != len(states):
                raise ValueError("need one warm wavefunction set per domain")
            for st, warm in zip(states, warm_wfs):
                if warm is not None and warm.norb == st.wf.norb:
                    st.wf.psi[...] = warm.psi
        # Neutral-atom guess for the global electron density.
        rho_e = rho_ion * (nelec_total / (float(rho_ion.sum()) * grid.dvol))
        v_global = grid.zeros()
        history: List[float] = []
        for it in range(self.nscf):
            if fault_point("qxmd.scf_diverge") is not None:
                raise SCFDivergenceError(
                    f"injected global-local SCF divergence at cycle "
                    f"{it + 1}/{self.nscf}"
                )
            with trace_span("scf.cycle", "scf", cycle=it + 1,
                            ndomains=len(states)):
                # --- global phase: one O(N) multigrid solve on the full grid.
                phi = hartree_potential(
                    rho_ion - rho_e, grid, method="multigrid", solver=self.poisson
                )
                v_xc, _ = lda_exchange_correlation(rho_e)
                v_new = -phi + v_xc + v_core
                v_global = (
                    v_new if it == 0 else (1.0 - self.mixing) * v_global + self.mixing * v_new
                )
                # --- local phase: every domain refines against the gathered
                #     (LDC boundary-informed) potential.
                items = [
                    (st.domain, st.wf.psi, st.occupations, st.kb,
                     v_global, self.ncg, self.seed)
                    for st in states
                ]
                results = self._executor().map(
                    _domain_refine_task, items, label="scf.domains"
                )
                local_rhos = []
                for st, (psi, eig, vloc, rho) in zip(states, results):
                    if psi is not st.wf.psi:
                        st.wf.psi[...] = psi
                    st.eigenvalues = eig
                    st.vloc = vloc
                    local_rhos.append(rho)
                # --- recombine: disjoint cores tile the global density.
                rho_new = self.decomposition.recombine(local_rhos)
                # Renormalize to the exact electron count (buffer truncation).
                total = float(rho_new.sum()) * grid.dvol
                if total > 0:
                    rho_new *= nelec_total / total
                rho_e = rho_new
                history.append(
                    float(sum(np.dot(s.occupations, s.eigenvalues) for s in states))
                )
        return DCResult(
            states=states,
            rho_global=rho_e,
            v_global=v_global,
            energy_history=history,
        )
