"""Band-by-band preconditioned conjugate-gradient eigensolver.

QXMD refines each Kohn-Sham wave function with a few CG iterations per
SCF cycle (the paper's benchmark uses 3 CG x 3 SCF).  Each band is
minimized over rotations psi' = cos(theta) psi + sin(theta) d, where d is
the Fourier-preconditioned, orthogonalized residual direction; a final
Rayleigh-Ritz rotation diagonalizes H in the refined subspace.
"""

from __future__ import annotations


import numpy as np

from repro.constants import HBAR, M_ELECTRON
from repro.lfd.wavefunction import WaveFunctionSet
from repro.qxmd.hamiltonian import KSHamiltonian


def _kinetic_eigs(ham: KSHamiltonian) -> np.ndarray:
    """Eigenvalue field of the FD kinetic operator (for preconditioning)."""
    grid = ham.grid
    eig = np.zeros(grid.shape)
    for axis, (n, h) in enumerate(zip(grid.shape, grid.spacing)):
        k = np.fft.fftfreq(n) * 2.0 * np.pi
        lam = (2.0 - 2.0 * np.cos(k)) * HBAR * HBAR / (2.0 * M_ELECTRON * h * h)
        shape = [1, 1, 1]
        shape[axis] = n
        eig = eig + lam.reshape(shape)
    return eig


def _precondition(r: np.ndarray, kin_eigs: np.ndarray, e_ref: float) -> np.ndarray:
    """Fourier diagonal preconditioner ~ (1 + T_k / E_ref)^-1 applied to r."""
    e_ref = max(e_ref, 1e-3)
    rk = np.fft.fftn(r)
    rk /= 1.0 + kin_eigs / e_ref
    return np.fft.ifftn(rk)


def rayleigh_quotients(ham: KSHamiltonian, wf: WaveFunctionSet) -> np.ndarray:
    """Per-orbital Rayleigh quotients <psi|H|psi>/<psi|psi>."""
    e = ham.expectation(wf)
    n2 = wf.norms() ** 2
    return e / n2


def _orthogonalize_against(
    psi: np.ndarray, basis: np.ndarray, dvol: float
) -> np.ndarray:
    """Project psi orthogonal to the columns of ``basis`` ((Ngrid, k))."""
    if basis.shape[1] == 0:
        return psi
    flat = psi.ravel()
    coeff = (basis.conj().T @ flat) * dvol
    return (flat - basis @ coeff).reshape(psi.shape)


def cg_eigensolve(
    ham: KSHamiltonian,
    wf: WaveFunctionSet,
    ncg: int = 3,
    rayleigh_ritz: bool = True,
) -> np.ndarray:
    """Refine all bands of ``wf`` toward the lowest eigenstates of ``ham``.

    Modifies ``wf`` in place; returns the per-band eigenvalue estimates
    (ascending after the final Rayleigh-Ritz rotation).
    """
    if ncg < 0:
        raise ValueError("ncg must be non-negative")
    grid = ham.grid
    dvol = grid.dvol
    kin_eigs = _kinetic_eigs(ham)
    wf.orthonormalize()
    mat = wf.as_matrix()
    for s in range(wf.norb):
        lower = mat[:, :s]
        psi = wf.orbital(s).astype(np.complex128)
        for _ in range(ncg):
            psi = _orthogonalize_against(psi, lower, dvol)
            nrm = np.sqrt(np.real(np.vdot(psi, psi)) * dvol)
            if nrm == 0.0:
                raise RuntimeError(f"band {s} collapsed to zero during CG")
            psi /= nrm
            hpsi = ham.apply(psi)
            lam = np.real(np.vdot(psi, hpsi)) * dvol
            resid = hpsi - lam * psi
            d = _precondition(resid, kin_eigs, e_ref=abs(lam) + 1.0)
            d = _orthogonalize_against(d, lower, dvol)
            # Orthogonalize the search direction against psi itself.
            d -= (np.vdot(psi, d) * dvol) * psi
            dn = np.sqrt(np.real(np.vdot(d, d)) * dvol)
            if dn < 1e-14:
                break
            d /= dn
            hd = ham.apply(d)
            a = lam
            b = np.real(np.vdot(d, hd)) * dvol
            c = np.real(np.vdot(psi, hd)) * dvol
            theta = 0.5 * np.arctan2(2.0 * c, a - b)
            cand = np.cos(theta) * psi + np.sin(theta) * d
            e_cand = (
                np.cos(theta) ** 2 * a
                + np.sin(theta) ** 2 * b
                + 2.0 * np.sin(theta) * np.cos(theta) * c
            )
            if e_cand > lam:  # pick the minimizing branch of the rotation
                theta += 0.5 * np.pi
                cand = np.cos(theta) * psi + np.sin(theta) * d
            psi = cand
        psi = _orthogonalize_against(psi, lower, dvol)
        psi /= np.sqrt(np.real(np.vdot(psi, psi)) * dvol)
        wf.set_orbital(s, psi.astype(wf.dtype, copy=False))
        mat = wf.as_matrix()
    if rayleigh_ritz:
        return subspace_rotate(ham, wf)
    return rayleigh_quotients(ham, wf)


def subspace_rotate(ham: KSHamiltonian, wf: WaveFunctionSet) -> np.ndarray:
    """Rayleigh-Ritz: diagonalize H in span(wf) and rotate the orbitals.

    Returns the ascending subspace eigenvalues.
    """
    hsub = ham.subspace_matrix(wf)
    ssub = wf.overlap_matrix()
    # Solve the (nearly identity-overlap) generalized problem robustly.
    import scipy.linalg as sla

    vals, vecs = sla.eigh(hsub, ssub)
    mat = wf.as_matrix().astype(np.complex128, copy=False)
    rotated = mat @ vecs
    wf.psi[...] = rotated.reshape(wf.psi.shape).astype(wf.dtype)
    wf.normalize()
    return vals
