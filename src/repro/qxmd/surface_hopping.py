"""Fewest-switches surface hopping (FSSH) on Kohn-Sham orbitals.

Implements the U_SH factor of Eq. (3): quantum amplitudes over the
adiabatic Kohn-Sham states are propagated under the instantaneous
energies and nonadiabatic couplings, hop probabilities follow Tully's
fewest-switches prescription, and accepted hops update the orbital
occupation numbers that shape the excited-state energy landscape.  Hops
upward in energy are accepted only when the nuclear kinetic energy can
pay for them (velocity-rescaling criterion); the rescale factor is
returned to the MD driver.

All floating-point arithmetic lives in :mod:`repro.qxmd.sh_kernels` and
runs here on single-row ``(1, nstates)`` views.  The ensemble engine
calls the same kernels on ``(ntraj, nstates)`` stacks, which is what
makes a batch-extracted trajectory bit-identical to this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.qxmd.sh_kernels import (
    HopPolicy,
    apply_edc_batch,
    batched_norm,
    hop_probabilities_batch,
    propagate_amplitudes_batch,
    resolve_hops,
    select_hops,
)


@dataclass
class SurfaceHoppingState:
    """Quantum amplitudes and current active state of one FSSH carrier."""

    amplitudes: np.ndarray   # complex coefficients over adiabatic states
    active: int              # index of the occupied (active) state

    def __post_init__(self) -> None:
        self.amplitudes = np.asarray(self.amplitudes, dtype=np.complex128)
        if self.amplitudes.ndim != 1:
            # Normalize-on-construct would silently rescale every row of a
            # stacked array by the *global* norm, hiding zero-amplitude
            # rows; batches belong in repro.ensemble.SwarmState.
            raise ValueError(
                "SurfaceHoppingState holds one carrier (1-D amplitudes); "
                "use repro.ensemble.SwarmState for stacked trajectories"
            )
        n = self.amplitudes.size
        if not (0 <= self.active < n):
            raise ValueError("active state out of range")
        norm = float(batched_norm(self.amplitudes[None, :])[0])
        if norm == 0:
            raise ValueError("zero amplitude vector")
        self.amplitudes = self.amplitudes / norm

    @property
    def nstates(self) -> int:
        return self.amplitudes.size

    @property
    def populations(self) -> np.ndarray:
        return np.abs(self.amplitudes) ** 2

    @classmethod
    def on_state(cls, nstates: int, active: int) -> "SurfaceHoppingState":
        amps = np.zeros(nstates, dtype=np.complex128)
        amps[active] = 1.0
        return cls(amplitudes=amps, active=active)


@dataclass
class HopEvent:
    """One accepted or rejected (frustrated) hop."""

    step: int
    source: int
    target: int
    accepted: bool
    energy_change: float


class FSSH:
    """Fewest-switches surface-hopping propagator.

    Parameters
    ----------
    rng:
        Random generator for hop decisions (explicit for reproducibility).
    substeps:
        Electronic sub-steps per MD step for amplitude integration (RK4).
    decoherence_c:
        Legacy shorthand: energy-based decoherence constant (Ha) of the
        Granucci-Persico correction; ``None`` disables it.  Equivalent
        to ``policy=HopPolicy(dec_correction="edc", edc_parameter=...)``.
    policy:
        Full unixmd-style hopping knob set (velocity rescaling,
        frustrated-hop handling, decoherence).  Mutually exclusive with
        ``decoherence_c``; defaults to the historical behaviour
        (``hop_rescale="energy"``, ``hop_reject="keep"``, no decoherence).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        substeps: int = 20,
        decoherence_c: Optional[float] = None,
        policy: Optional[HopPolicy] = None,
    ) -> None:
        if substeps < 1:
            raise ValueError("substeps must be positive")
        if decoherence_c is not None:
            if policy is not None:
                raise ValueError(
                    "pass either decoherence_c or policy, not both"
                )
            if decoherence_c < 0:
                raise ValueError("decoherence_c must be non-negative")
            policy = HopPolicy(dec_correction="edc",
                               edc_parameter=decoherence_c)
        self.rng = rng
        self.substeps = substeps
        self.policy = policy if policy is not None else HopPolicy()
        self.events: List[HopEvent] = []
        self._step_count = 0

    @property
    def decoherence_c(self) -> Optional[float]:
        """The EDC constant in Hartree, or ``None`` when EDC is off."""
        if self.policy.dec_correction == "edc":
            return self.policy.edc_parameter
        return None

    # ------------------------------------------------------------------ #
    def propagate_amplitudes(
        self,
        state: SurfaceHoppingState,
        energies: np.ndarray,
        nac: np.ndarray,
        dt: float,
    ) -> None:
        """RK4 integration of the amplitude equation over one MD step."""
        energies = np.asarray(energies, dtype=float)
        nac = np.asarray(nac, dtype=np.complex128)
        n = state.nstates
        if energies.shape != (n,) or nac.shape != (n, n):
            raise ValueError("energies/NAC dimensions do not match the state")
        state.amplitudes = propagate_amplitudes_batch(
            state.amplitudes[None, :], energies, nac, dt, self.substeps
        )[0]

    def hop_probabilities(
        self, state: SurfaceHoppingState, nac: np.ndarray, dt: float
    ) -> np.ndarray:
        """Tully's fewest-switches probabilities g_{active -> j}."""
        nac = np.asarray(nac, dtype=np.complex128)
        return hop_probabilities_batch(
            state.amplitudes[None, :],
            np.array([state.active]),
            nac,
            dt,
        )[0]

    def attempt_hop(
        self,
        state: SurfaceHoppingState,
        energies: np.ndarray,
        nac: np.ndarray,
        dt: float,
        kinetic_energy: float,
    ) -> Tuple[bool, float]:
        """One stochastic hop attempt.

        Returns (hopped, velocity_scale): the factor by which nuclear
        velocities must be rescaled (1.0 when nothing changed; ``-1.0``
        reverses them under the ``hop_reject="reverse"`` policy).  Under
        the default ``hop_rescale="energy"`` policy, upward hops
        exceeding the available kinetic energy are frustrated (rejected,
        logged).
        """
        self._step_count += 1
        g = self.hop_probabilities(state, nac, dt)
        xi = self.rng.random()
        target = int(select_hops(g[None, :], np.array([xi]))[0])
        if target < 0:
            return False, 1.0
        de = float(energies[target] - energies[state.active])
        accepted, scale = resolve_hops(
            np.array([de]), np.array([kinetic_energy]), self.policy
        )
        hopped = bool(accepted[0])
        self.events.append(
            HopEvent(self._step_count, state.active, target, hopped, de)
        )
        if hopped:
            state.active = target
        return hopped, float(scale[0])

    def apply_decoherence(
        self,
        state: SurfaceHoppingState,
        energies: np.ndarray,
        dt: float,
        kinetic_energy: float,
    ) -> None:
        """Granucci-Persico energy-based decoherence correction.

        Non-active amplitudes decay with the lifetime
        tau_j = (hbar / |E_j - E_a|) * (1 + C / E_kin); the active
        amplitude is rescaled to restore the norm.  Counteracts the
        well-known FSSH overcoherence that biases hop statistics.
        """
        if self.policy.dec_correction != "edc":
            return
        energies = np.asarray(energies, dtype=float)
        state.amplitudes = apply_edc_batch(
            state.amplitudes[None, :].copy(),
            np.array([state.active]),
            energies,
            dt,
            np.array([kinetic_energy]),
            self.policy.edc_parameter,
        )[0]

    def step(
        self,
        state: SurfaceHoppingState,
        energies: np.ndarray,
        nac: np.ndarray,
        dt: float,
        kinetic_energy: float,
    ) -> Tuple[bool, float]:
        """Full U_SH update: propagate amplitudes, decohere, attempt a hop."""
        self.propagate_amplitudes(state, energies, nac, dt)
        self.apply_decoherence(state, energies, dt, kinetic_energy)
        return self.attempt_hop(state, energies, nac, dt, kinetic_energy)


def occupations_from_states(
    carriers: List[SurfaceHoppingState], norb: int, base_filling: np.ndarray
) -> np.ndarray:
    """Occupations from FSSH carriers layered on a closed-shell filling.

    Each carrier represents one electron promoted out of the highest
    orbital that still holds charge *at promotion time* into its active
    state.  Recomputing the donor per carrier (instead of fixing it to
    the HOMO of the base filling) keeps multi-carrier stacks physical:
    three carriers drain HOMO twice and HOMO-1 once rather than driving
    the HOMO occupation negative.
    """
    f = np.array(base_filling, dtype=float, copy=True)
    if f.shape != (norb,):
        raise ValueError("base filling length mismatch")
    valence = np.asarray(base_filling) > 1e-8
    for carrier in carriers:
        if carrier.active >= norb:
            raise ValueError("carrier active state outside the orbital set")
        # Donors come from the *base* (valence) orbitals only: a freshly
        # promoted electron sitting in the conduction band must never be
        # mistaken for the next carrier's source.
        occupied = np.nonzero(valence & (f > 1e-8))[0]
        if occupied.size == 0:
            raise ValueError("no occupied orbital left to promote from")
        donor = int(occupied[-1])
        if carrier.active == donor:
            continue
        f[donor] -= 1.0
        f[carrier.active] += 1.0
    if np.any(f < -1e-9) or np.any(f > 2.0 + 1e-9):
        raise ValueError("occupations left the physical range [0, 2]")
    return np.clip(f, 0.0, 2.0)
