"""Fewest-switches surface hopping (FSSH) on Kohn-Sham orbitals.

Implements the U_SH factor of Eq. (3): quantum amplitudes over the
adiabatic Kohn-Sham states are propagated under the instantaneous
energies and nonadiabatic couplings, hop probabilities follow Tully's
fewest-switches prescription, and accepted hops update the orbital
occupation numbers that shape the excited-state energy landscape.  Hops
upward in energy are accepted only when the nuclear kinetic energy can
pay for them (velocity-rescaling criterion); the rescale factor is
returned to the MD driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.constants import HBAR


@dataclass
class SurfaceHoppingState:
    """Quantum amplitudes and current active state of one FSSH carrier."""

    amplitudes: np.ndarray   # complex coefficients over adiabatic states
    active: int              # index of the occupied (active) state

    def __post_init__(self) -> None:
        self.amplitudes = np.asarray(self.amplitudes, dtype=np.complex128)
        n = self.amplitudes.size
        if not (0 <= self.active < n):
            raise ValueError("active state out of range")
        norm = np.linalg.norm(self.amplitudes)
        if norm == 0:
            raise ValueError("zero amplitude vector")
        self.amplitudes = self.amplitudes / norm

    @property
    def nstates(self) -> int:
        return self.amplitudes.size

    @property
    def populations(self) -> np.ndarray:
        return np.abs(self.amplitudes) ** 2

    @classmethod
    def on_state(cls, nstates: int, active: int) -> "SurfaceHoppingState":
        amps = np.zeros(nstates, dtype=np.complex128)
        amps[active] = 1.0
        return cls(amplitudes=amps, active=active)


@dataclass
class HopEvent:
    """One accepted or rejected (frustrated) hop."""

    step: int
    source: int
    target: int
    accepted: bool
    energy_change: float


class FSSH:
    """Fewest-switches surface-hopping propagator.

    Parameters
    ----------
    rng:
        Random generator for hop decisions (explicit for reproducibility).
    substeps:
        Electronic sub-steps per MD step for amplitude integration (RK4).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        substeps: int = 20,
        decoherence_c: Optional[float] = None,
    ) -> None:
        """``decoherence_c``: energy-based decoherence constant (Ha) of
        the Granucci-Persico correction; ``None`` disables it.  The
        conventional value is 0.1 Ha."""
        if substeps < 1:
            raise ValueError("substeps must be positive")
        if decoherence_c is not None and decoherence_c < 0:
            raise ValueError("decoherence_c must be non-negative")
        self.rng = rng
        self.substeps = substeps
        self.decoherence_c = decoherence_c
        self.events: List[HopEvent] = []
        self._step_count = 0

    # ------------------------------------------------------------------ #
    def _derivative(
        self, c: np.ndarray, energies: np.ndarray, nac: np.ndarray
    ) -> np.ndarray:
        """dc/dt = -(i/hbar) E c - D c (D = NAC matrix, anti-Hermitian)."""
        return (-1j / HBAR) * energies * c - nac @ c

    def propagate_amplitudes(
        self,
        state: SurfaceHoppingState,
        energies: np.ndarray,
        nac: np.ndarray,
        dt: float,
    ) -> None:
        """RK4 integration of the amplitude equation over one MD step."""
        energies = np.asarray(energies, dtype=float)
        nac = np.asarray(nac, dtype=np.complex128)
        n = state.nstates
        if energies.shape != (n,) or nac.shape != (n, n):
            raise ValueError("energies/NAC dimensions do not match the state")
        h = dt / self.substeps
        c = state.amplitudes
        for _ in range(self.substeps):
            k1 = self._derivative(c, energies, nac)
            k2 = self._derivative(c + 0.5 * h * k1, energies, nac)
            k3 = self._derivative(c + 0.5 * h * k2, energies, nac)
            k4 = self._derivative(c + h * k3, energies, nac)
            c = c + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        # Anti-Hermitian NAC keeps the norm; renormalize the RK4 residual.
        state.amplitudes = c / np.linalg.norm(c)

    def hop_probabilities(
        self, state: SurfaceHoppingState, nac: np.ndarray, dt: float
    ) -> np.ndarray:
        """Tully's fewest-switches probabilities g_{active -> j}."""
        c = state.amplitudes
        a = state.active
        pop_a = float(np.abs(c[a]) ** 2)
        if pop_a < 1e-12:
            return np.zeros(state.nstates)
        # b_ja = 2 Re( c_a c_j^* d_ja );  g_j = dt * b_ja / |c_a|^2.
        b = 2.0 * np.real(c[a] * np.conj(c) * nac[:, a])
        g = np.clip(dt * b / pop_a, 0.0, 1.0)
        g[a] = 0.0
        return g

    def attempt_hop(
        self,
        state: SurfaceHoppingState,
        energies: np.ndarray,
        nac: np.ndarray,
        dt: float,
        kinetic_energy: float,
    ) -> Tuple[bool, float]:
        """One stochastic hop attempt.

        Returns (hopped, velocity_scale): the factor by which nuclear
        velocities must be rescaled to conserve total energy (1.0 when no
        hop happened).  Upward hops exceeding the available kinetic energy
        are frustrated (rejected, logged).
        """
        self._step_count += 1
        g = self.hop_probabilities(state, nac, dt)
        xi = self.rng.random()
        cumulative = 0.0
        for j in np.argsort(-g):
            if g[j] <= 0.0:
                break
            cumulative += g[j]
            if xi < cumulative:
                de = float(energies[j] - energies[state.active])
                if de > kinetic_energy:
                    self.events.append(
                        HopEvent(self._step_count, state.active, int(j), False, de)
                    )
                    return False, 1.0
                scale = np.sqrt(max(0.0, 1.0 - de / max(kinetic_energy, 1e-30)))
                self.events.append(
                    HopEvent(self._step_count, state.active, int(j), True, de)
                )
                state.active = int(j)
                return True, float(scale)
        return False, 1.0

    def apply_decoherence(
        self,
        state: SurfaceHoppingState,
        energies: np.ndarray,
        dt: float,
        kinetic_energy: float,
    ) -> None:
        """Granucci-Persico energy-based decoherence correction.

        Non-active amplitudes decay with the lifetime
        tau_j = (hbar / |E_j - E_a|) * (1 + C / E_kin); the active
        amplitude is rescaled to restore the norm.  Counteracts the
        well-known FSSH overcoherence that biases hop statistics.
        """
        if self.decoherence_c is None:
            return
        energies = np.asarray(energies, dtype=float)
        a = state.active
        c = state.amplitudes
        ekin = max(kinetic_energy, 1e-12)
        factor = 1.0 + self.decoherence_c / ekin
        other_pop = 0.0
        for j in range(state.nstates):
            if j == a:
                continue
            gap = abs(energies[j] - energies[a])
            if gap < 1e-12:
                continue
            tau = HBAR / gap * factor
            c[j] *= np.exp(-dt / tau)
        other_pop = float(np.sum(np.abs(np.delete(c, a)) ** 2))
        pop_a = float(np.abs(c[a]) ** 2)
        if pop_a > 0.0:
            c[a] *= np.sqrt(max(0.0, 1.0 - other_pop) / pop_a)
        state.amplitudes = c / np.linalg.norm(c)

    def step(
        self,
        state: SurfaceHoppingState,
        energies: np.ndarray,
        nac: np.ndarray,
        dt: float,
        kinetic_energy: float,
    ) -> Tuple[bool, float]:
        """Full U_SH update: propagate amplitudes, decohere, attempt a hop."""
        self.propagate_amplitudes(state, energies, nac, dt)
        self.apply_decoherence(state, energies, dt, kinetic_energy)
        return self.attempt_hop(state, energies, nac, dt, kinetic_energy)


def occupations_from_states(
    carriers: List[SurfaceHoppingState], norb: int, base_filling: np.ndarray
) -> np.ndarray:
    """Occupations from FSSH carriers layered on a closed-shell filling.

    Each carrier represents one electron promoted out of the HOMO of the
    base filling into its active state.
    """
    f = np.array(base_filling, dtype=float, copy=True)
    if f.shape != (norb,):
        raise ValueError("base filling length mismatch")
    homo = int(np.nonzero(f > 1e-8)[0][-1])
    for carrier in carriers:
        if carrier.active >= norb:
            raise ValueError("carrier active state outside the orbital set")
        if carrier.active != homo:
            f[homo] -= 1.0
            f[carrier.active] += 1.0
    if np.any(f < -1e-9) or np.any(f > 2.0 + 1e-9):
        raise ValueError("occupations left the physical range [0, 2]")
    return np.clip(f, 0.0, 2.0)
