"""Spin-polarized self-consistent field solver (collinear LSDA).

Two Kohn-Sham orbital sets (up/down) share the electrostatics but feel
spin-resolved exchange-correlation potentials -- the full sigma index of
the paper's Eq. (1).  Open-shell systems (odd electron counts, magnetic
configurations) gain the spin-polarization energy the restricted solver
cannot capture; the closed-shell limit reduces to the restricted result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.grids.grid import Grid3D
from repro.lfd.observables import density
from repro.lfd.wavefunction import WaveFunctionSet
from repro.multigrid.poisson import PoissonMultigrid
from repro.pseudo.elements import PseudoSpecies
from repro.pseudo.kb import KBProjectorSet
from repro.pseudo.local import core_repulsion_potential, ionic_density
from repro.qxmd.cg import cg_eigensolve
from repro.qxmd.hamiltonian import KSHamiltonian
from repro.qxmd.hartree import hartree_potential
from repro.qxmd.scf import SCFConfig
from repro.qxmd.xc_spin import lsda_exchange_correlation


def spin_occupations(nelec: float, norb: int, magnetization: float = 0.0
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Aufbau filling of up/down channels for a target net magnetization.

    n_up = (nelec + m)/2, n_dn = (nelec - m)/2, each filled with at most
    one electron per orbital per spin channel.
    """
    if nelec < 0:
        raise ValueError("nelec must be non-negative")
    n_up = (nelec + magnetization) / 2.0
    n_dn = (nelec - magnetization) / 2.0
    if n_up < 0 or n_dn < 0:
        raise ValueError("magnetization exceeds the electron count")

    def fill(n: float) -> np.ndarray:
        f = np.zeros(norb)
        remaining = float(n)
        for s in range(norb):
            f[s] = min(1.0, remaining)
            remaining -= f[s]
            if remaining <= 0:
                break
        if remaining > 1e-9:
            raise ValueError(f"{norb} orbitals cannot hold {n} electrons/spin")
        return f

    return fill(n_up), fill(n_dn)


@dataclass
class SpinSCFResult:
    """Converged spin-polarized state."""

    wf_up: WaveFunctionSet
    wf_dn: WaveFunctionSet
    eigenvalues_up: np.ndarray
    eigenvalues_dn: np.ndarray
    occ_up: np.ndarray
    occ_dn: np.ndarray
    rho_up: np.ndarray
    rho_dn: np.ndarray
    vloc_up: np.ndarray
    vloc_dn: np.ndarray
    band_energy_history: List[float] = field(default_factory=list)

    @property
    def rho(self) -> np.ndarray:
        return self.rho_up + self.rho_dn

    @property
    def magnetization_density(self) -> np.ndarray:
        return self.rho_up - self.rho_dn

    def total_magnetization(self, grid: Grid3D) -> float:
        """Net magnetization integral (electrons, up minus down)."""
        return float(self.magnetization_density.sum()) * grid.dvol

    def band_energy(self) -> float:
        """Occupation-weighted band-energy sum over both channels."""
        return float(
            np.dot(self.occ_up, self.eigenvalues_up)
            + np.dot(self.occ_dn, self.eigenvalues_dn)
        )


def scf_solve_spin(
    grid: Grid3D,
    positions: np.ndarray,
    species: Sequence[PseudoSpecies],
    norb: int,
    magnetization: float = 0.0,
    config: Optional[SCFConfig] = None,
) -> SpinSCFResult:
    """Solve the collinear spin-polarized KS ground state."""
    config = config if config is not None else SCFConfig()
    positions = np.asarray(positions, dtype=float)
    nelec = sum(sp.zval for sp in species)
    occ_up, occ_dn = spin_occupations(nelec, norb, magnetization)

    rho_ion = ionic_density(grid, positions, species)
    v_core = core_repulsion_potential(grid, positions, species)
    kb = (
        KBProjectorSet(grid, positions, species)
        if config.include_nonlocal
        else None
    )
    solver = PoissonMultigrid(grid)
    rng = np.random.default_rng(config.seed)
    wf_up = WaveFunctionSet.random(grid, norb, rng)
    wf_dn = WaveFunctionSet.random(grid, norb, rng)

    # Slightly spin-split initial guess (breaks the symmetric saddle).
    rho_up = rho_ion * (max(occ_up.sum(), 1e-12) / (rho_ion.sum() * grid.dvol))
    rho_dn = rho_ion * (max(occ_dn.sum(), 1e-12) / (rho_ion.sum() * grid.dvol))

    v_up = grid.zeros()
    v_dn = grid.zeros()
    history: List[float] = []
    e_up = np.zeros(norb)
    e_dn = np.zeros(norb)
    for it in range(config.nscf):
        phi = hartree_potential(
            rho_ion - (rho_up + rho_dn), grid,
            method=config.poisson_method if config.poisson_method != "fft" else "fft",
            solver=solver if config.poisson_method == "multigrid" else None,
            tol=config.poisson_tol,
        )
        vxc_up, vxc_dn, _ = lsda_exchange_correlation(rho_up, rho_dn)
        new_up = -phi + vxc_up + v_core
        new_dn = -phi + vxc_dn + v_core
        if it == 0:
            v_up, v_dn = new_up, new_dn
        else:
            v_up = (1.0 - config.mixing) * v_up + config.mixing * new_up
            v_dn = (1.0 - config.mixing) * v_dn + config.mixing * new_dn
        e_up = cg_eigensolve(KSHamiltonian(grid, v_up, kb=kb), wf_up,
                             ncg=config.ncg)
        e_dn = cg_eigensolve(KSHamiltonian(grid, v_dn, kb=kb), wf_dn,
                             ncg=config.ncg)
        rho_up = density(wf_up, occ_up)
        rho_dn = density(wf_dn, occ_dn)
        history.append(
            float(np.dot(occ_up, e_up) + np.dot(occ_dn, e_dn))
        )
    return SpinSCFResult(
        wf_up=wf_up,
        wf_dn=wf_dn,
        eigenvalues_up=np.asarray(e_up),
        eigenvalues_dn=np.asarray(e_dn),
        occ_up=occ_up,
        occ_dn=occ_dn,
        rho_up=rho_up,
        rho_dn=rho_dn,
        vloc_up=v_up,
        vloc_dn=v_dn,
        band_energy_history=history,
    )
