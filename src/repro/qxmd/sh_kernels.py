"""Batched surface-hopping kernels shared by FSSH and the swarm engine.

Every kernel operates on *stacked* trajectory arrays -- amplitudes of
shape ``(ntraj, nstates)``, active states and kinetic energies of shape
``(ntraj,)`` -- and is written so that row ``t`` of a batched call is
**bit-identical** to calling the same kernel on the single-row slice.
That is the contract the trajectory-ensemble engine rests on: a swarm of
``ntraj`` FSSH carriers stepped together must be indistinguishable, bit
for bit, from ``ntraj`` standalone :class:`~repro.qxmd.surface_hopping.FSSH`
loops on the same RNG streams (the exact tier of
``tests/ensemble/test_ensemble_equivalence.py``).

Two implementation rules make the invariance hold:

1. **No cross-trajectory reductions.**  Everything is elementwise over
   the trajectory axis; NumPy ufuncs are value-deterministic, so a row's
   result cannot depend on how many other rows share the array.
2. **State-axis sums are explicit ordered loops.**  ``nstates`` is small
   (a handful of adiabatic states), so summing over it with a ``for k``
   loop costs nothing, while BLAS ``matmul``/``np.sum`` would pick
   shape-dependent blocking and break bitwise row equality between a
   ``(1, n)`` and an ``(ntraj, n)`` call.

The hopping *policies* (velocity rescaling, frustrated-hop handling,
energy-based decoherence) mirror unixmd's MQC knob set
(``hop_rescale`` / ``hop_reject`` / ``dec_correction`` /
``edc_parameter``) adapted to the scalar-kinetic-energy interface the
DC-MESH surface-hopping driver exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.constants import HBAR

#: Velocity-rescale policies after a *successful* hop.
HOP_RESCALE_POLICIES = ("energy", "augment", "none")

#: Frustrated-hop policies (what happens when the hop is rejected).
HOP_REJECT_POLICIES = ("keep", "reverse")

#: Decoherence-correction schemes (``None`` disables the correction).
DEC_CORRECTIONS = ("edc",)


@dataclass(frozen=True)
class HopPolicy:
    """The unixmd-style hopping knob set, in one frozen value object.

    Attributes
    ----------
    hop_rescale:
        Velocity handling after an accepted hop.  ``"energy"`` rescales
        the nuclear velocities isotropically so total energy is
        conserved and *frustrates* upward hops the kinetic energy cannot
        pay for (the classic Tully prescription, and the historical
        behaviour of :class:`~repro.qxmd.surface_hopping.FSSH`).
        ``"augment"`` accepts every hop, draining as much kinetic energy
        as is available (the rescale factor floors at zero) -- a
        scalar-KE adaptation of unixmd's augmented hopping.  ``"none"``
        accepts every hop and never touches the velocities: the
        classical-path approximation (CPA) limit where nuclear motion is
        prescribed and only the electronic subsystem is stochastic.
    hop_reject:
        What a frustrated hop does to the nuclei: ``"keep"`` leaves the
        velocities alone (scale ``+1``); ``"reverse"`` inverts them
        (scale ``-1``; kinetic energy is unchanged), the momentum-
        reversal prescription that improves detailed balance.
        Irrelevant unless ``hop_rescale == "energy"``.
    dec_correction:
        ``None`` (uncorrected FSSH) or ``"edc"``: the energy-based
        decoherence correction of Granucci-Persico, with non-active
        amplitudes decaying on the lifetime
        ``tau_j = hbar / |E_j - E_a| * (1 + edc_parameter / E_kin)``.
    edc_parameter:
        The EDC energy constant ``C`` in Hartree (unixmd default 0.1).
    """

    hop_rescale: str = "energy"
    hop_reject: str = "keep"
    dec_correction: Optional[str] = None
    edc_parameter: float = 0.1

    def __post_init__(self) -> None:
        if self.hop_rescale not in HOP_RESCALE_POLICIES:
            raise ValueError(
                f"unknown hop_rescale {self.hop_rescale!r}; "
                f"options: {', '.join(HOP_RESCALE_POLICIES)}"
            )
        if self.hop_reject not in HOP_REJECT_POLICIES:
            raise ValueError(
                f"unknown hop_reject {self.hop_reject!r}; "
                f"options: {', '.join(HOP_REJECT_POLICIES)}"
            )
        if self.dec_correction is not None and \
                self.dec_correction not in DEC_CORRECTIONS:
            raise ValueError(
                f"unknown dec_correction {self.dec_correction!r}; "
                f"options: None, {', '.join(DEC_CORRECTIONS)}"
            )
        if self.edc_parameter < 0:
            raise ValueError("edc_parameter must be non-negative")

    @classmethod
    def cpa(cls, dec_correction: Optional[str] = None,
            edc_parameter: float = 0.1) -> "HopPolicy":
        """The classical-path-approximation policy (no nuclear feedback)."""
        return cls(hop_rescale="none", hop_reject="keep",
                   dec_correction=dec_correction,
                   edc_parameter=edc_parameter)


# --------------------------------------------------------------------- #
# elementwise building blocks
# --------------------------------------------------------------------- #
def batched_norm(c: np.ndarray) -> np.ndarray:
    """Per-row 2-norm of stacked amplitudes, batch-size invariant.

    The state-axis sum is an ordered ``for k`` accumulation, so each
    row's partial-sum sequence is identical no matter how many rows the
    array holds (``np.linalg.norm``/``np.sum`` switch to pairwise
    summation at shape-dependent thresholds and would not be).
    """
    ntraj, nstates = c.shape
    acc = np.zeros(ntraj, dtype=np.float64)
    for k in range(nstates):
        acc = acc + np.abs(c[:, k]) ** 2
    return np.sqrt(acc)


def _apply_nac(c: np.ndarray, nac: np.ndarray) -> np.ndarray:
    """Row-wise ``nac @ c[t]`` as an ordered state-axis accumulation.

    ``out[t, i] = sum_k nac[i, k] * c[t, k]`` with the ``k`` sum running
    in index order -- the same floating-point operation sequence for a
    row regardless of the batch size (BLAS ``matmul`` would not be).
    """
    ntraj, nstates = c.shape
    acc = np.zeros((ntraj, nstates), dtype=np.complex128)
    for k in range(nstates):
        acc = acc + c[:, k, None] * nac[None, :, k]
    return acc


def amplitude_derivative(
    c: np.ndarray, energies: np.ndarray, nac: np.ndarray
) -> np.ndarray:
    """``dc/dt = -(i/hbar) E c - D c`` for stacked amplitudes ``(ntraj, n)``."""
    return (-1j / HBAR) * energies[None, :] * c - _apply_nac(c, nac)


def propagate_amplitudes_batch(
    c: np.ndarray,
    energies: np.ndarray,
    nac: np.ndarray,
    dt: float,
    substeps: int,
) -> np.ndarray:
    """RK4 integration of stacked amplitudes over one MD step.

    Returns the new, per-row renormalized amplitude array (the NAC is
    anti-Hermitian so the norm is conserved up to the RK4 residual,
    exactly as in the single-carrier loop).
    """
    if substeps < 1:
        raise ValueError("substeps must be positive")
    h = dt / substeps
    for _ in range(substeps):
        k1 = amplitude_derivative(c, energies, nac)
        k2 = amplitude_derivative(c + 0.5 * h * k1, energies, nac)
        k3 = amplitude_derivative(c + 0.5 * h * k2, energies, nac)
        k4 = amplitude_derivative(c + h * k3, energies, nac)
        c = c + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
    return c / batched_norm(c)[:, None]


# --------------------------------------------------------------------- #
# hop probabilities and selection
# --------------------------------------------------------------------- #
def hop_probabilities_batch(
    c: np.ndarray, active: np.ndarray, nac: np.ndarray, dt: float
) -> np.ndarray:
    """Tully fewest-switches probabilities ``g[t, j]`` for every row.

    Rows whose active population has collapsed below ``1e-12`` get an
    all-zero probability vector, mirroring the single-carrier guard.
    """
    ntraj = c.shape[0]
    rows = np.arange(ntraj)
    ca = c[rows, active]
    pop_a = np.abs(ca) ** 2
    # b_ja = 2 Re( c_a c_j^* d_ja );  g_j = dt * b_ja / |c_a|^2.
    b = 2.0 * np.real(ca[:, None] * np.conj(c) * nac[:, active].T)
    safe_pop = np.where(pop_a < 1e-12, 1.0, pop_a)
    g = np.clip(dt * b / safe_pop[:, None], 0.0, 1.0)
    g[pop_a < 1e-12, :] = 0.0
    g[rows, active] = 0.0
    return g


def stay_probabilities(g: np.ndarray) -> np.ndarray:
    """Per-row probability of *not* hopping this step.

    Clipped at zero: the per-channel probabilities are individually
    clipped to [0, 1], so their sum can transiently exceed 1 for large
    ``dt * NAC`` (the selection sweep then hops with certainty).
    """
    ntraj, nstates = g.shape
    total = np.zeros(ntraj, dtype=np.float64)
    for k in range(nstates):
        total = total + g[:, k]
    return np.maximum(0.0, 1.0 - total)


def select_hops(g: np.ndarray, xi: np.ndarray) -> np.ndarray:
    """Fewest-switches target selection for every row; ``-1`` = no hop.

    Replicates the single-carrier sweep exactly: candidates are visited
    in descending probability (``np.argsort`` order on the negated
    probabilities -- identical per row to the 1-D sort), the cumulative
    sum grows in that order, the sweep stops at the first non-positive
    probability, and row ``t`` hops to the first candidate whose
    cumulative probability exceeds ``xi[t]``.
    """
    ntraj, nstates = g.shape
    order = np.argsort(-g, axis=1)
    g_sorted = np.take_along_axis(g, order, axis=1)
    # cumsum is a sequential per-row prefix sum: the partial sums are the
    # same additions, in the same order, as the scalar accumulation loop.
    cum = np.cumsum(g_sorted, axis=1)
    hit = (g_sorted > 0.0) & (xi[:, None] < cum)
    first = np.argmax(hit, axis=1)
    hopped = np.any(hit, axis=1)
    target = order[np.arange(ntraj), first]
    return np.where(hopped, target, -1)


def resolve_hops(
    de: np.ndarray, kinetic: np.ndarray, policy: HopPolicy
) -> Tuple[np.ndarray, np.ndarray]:
    """Accept/frustrate attempted hops and compute velocity-scale factors.

    Parameters
    ----------
    de:
        Energy change ``E_target - E_source`` of each attempted hop.
    kinetic:
        Nuclear kinetic energy available to each trajectory.

    Returns ``(accepted, scale)``: whether each hop goes through, and
    the factor by which the nuclear velocities must be multiplied
    (``1.0`` when nothing changes, negative for a momentum reversal).
    Rows whose attempt was already vacuous (no candidate selected) are
    the caller's concern -- this kernel only prices the energy budget.
    """
    energy_scale = np.sqrt(
        np.maximum(0.0, 1.0 - de / np.maximum(kinetic, 1e-30))
    )
    if policy.hop_rescale == "energy":
        frustrated = de > kinetic
        reject_scale = 1.0 if policy.hop_reject == "keep" else -1.0
        scale = np.where(frustrated, reject_scale, energy_scale)
        return ~frustrated, scale
    if policy.hop_rescale == "augment":
        return np.ones(de.shape, dtype=bool), energy_scale
    # "none": the classical path carries on regardless.
    return np.ones(de.shape, dtype=bool), np.ones_like(de)


# --------------------------------------------------------------------- #
# energy-based decoherence correction (EDC)
# --------------------------------------------------------------------- #
def apply_edc_batch(
    c: np.ndarray,
    active: np.ndarray,
    energies: np.ndarray,
    dt: float,
    kinetic: np.ndarray,
    edc_parameter: float,
) -> np.ndarray:
    """Granucci-Persico EDC on stacked amplitudes; returns the new array.

    Non-active amplitudes decay with lifetime
    ``tau_j = hbar / |E_j - E_a| * (1 + C / E_kin)``; the active
    amplitude is then rescaled to absorb the released population and the
    row renormalized.  States degenerate with the active one
    (``|gap| < 1e-12``) are untouched.
    """
    ntraj, nstates = c.shape
    rows = np.arange(ntraj)
    ekin = np.maximum(kinetic, 1e-12)
    factor = 1.0 + edc_parameter / ekin
    e_active = energies[active]
    gap = np.abs(energies[None, :] - e_active[:, None])
    decaying = gap >= 1e-12
    decaying[rows, active] = False
    safe_gap = np.where(decaying, gap, 1.0)
    tau = HBAR / safe_gap * factor[:, None]
    decay = np.where(decaying, np.exp(-dt / tau), 1.0)
    c = c * decay
    other_pop = np.zeros(ntraj, dtype=np.float64)
    pop = np.abs(c) ** 2
    for k in range(nstates):
        # Adding an exact 0.0 for the active column keeps the ordered
        # partial-sum sequence identical to a sum that skips it.
        other_pop = other_pop + np.where(active == k, 0.0, pop[:, k])
    pop_a = pop[rows, active]
    boost = np.where(
        pop_a > 0.0,
        np.sqrt(np.maximum(0.0, 1.0 - other_pop) / np.where(pop_a > 0.0,
                                                            pop_a, 1.0)),
        1.0,
    )
    ca = c[rows, active] * boost
    c[rows, active] = ca
    return c / batched_norm(c)[:, None]


# --------------------------------------------------------------------- #
# portable (array-API) formulations
# --------------------------------------------------------------------- #
# The xp variants below reformulate the batched kernels on the array-API
# surface (:mod:`repro.backend`): no integer-array fancy indexing (the
# ``c[rows, active]`` gathers become ``take``/``take_along_axis``), no
# boolean-mask setitem (``where`` with a one-hot active mask instead).
# The ordered state-axis ``for k`` accumulations -- the batch-size
# invariance contract -- survive unchanged.  Hop *selection* and
# *pricing* (:func:`select_hops`, :func:`resolve_hops`) stay NumPy-only:
# they are host-side control flow, the shape a device port keeps on the
# CPU as well.


def _one_hot_active(xp: Any, active: Any, nstates: int) -> Any:
    """Boolean mask ``(ntraj, nstates)`` selecting each row's active state."""
    states = xp.reshape(xp.arange(nstates), (1, -1))
    return xp.reshape(active, (-1, 1)) == states


def _gather_active(xp: Any, c: Any, active: Any) -> Any:
    """Portable ``c[rows, active]``: one element per row, shape ``(ntraj,)``."""
    picked = xp.take_along_axis(c, xp.reshape(active, (-1, 1)), axis=1)
    return xp.reshape(picked, (-1,))


def batched_norm_xp(xp: Any, c: Any) -> Any:
    """Array-API :func:`batched_norm` (same ordered partial sums)."""
    ntraj, nstates = c.shape
    acc = xp.zeros(ntraj, dtype=xp.float64)
    for k in range(nstates):
        acc = acc + xp.abs(c[:, k]) ** 2
    return xp.sqrt(acc)


def _apply_nac_xp(xp: Any, c: Any, nac: Any) -> Any:
    """Array-API :func:`_apply_nac` (ordered state-axis accumulation)."""
    ntraj, nstates = c.shape
    acc = xp.zeros((ntraj, nstates), dtype=xp.complex128)
    for k in range(nstates):
        acc = acc + c[:, k, None] * nac[None, :, k]
    return acc


def amplitude_derivative_xp(
    xp: Any, c: Any, energies: Any, nac: Any
) -> Any:
    """Array-API :func:`amplitude_derivative`."""
    return (-1j / HBAR) * energies[None, :] * c - _apply_nac_xp(xp, c, nac)


def propagate_amplitudes_batch_xp(
    xp: Any, c: Any, energies: Any, nac: Any, dt: float, substeps: int
) -> Any:
    """Array-API :func:`propagate_amplitudes_batch` (RK4 + renormalize)."""
    if substeps < 1:
        raise ValueError("substeps must be positive")
    h = dt / substeps
    for _ in range(substeps):
        k1 = amplitude_derivative_xp(xp, c, energies, nac)
        k2 = amplitude_derivative_xp(xp, c + 0.5 * h * k1, energies, nac)
        k3 = amplitude_derivative_xp(xp, c + 0.5 * h * k2, energies, nac)
        k4 = amplitude_derivative_xp(xp, c + h * k3, energies, nac)
        c = c + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
    return c / batched_norm_xp(xp, c)[:, None]


def hop_probabilities_batch_xp(
    xp: Any, c: Any, active: Any, nac: Any, dt: float
) -> Any:
    """Array-API :func:`hop_probabilities_batch`."""
    ntraj, nstates = c.shape
    onehot = _one_hot_active(xp, active, nstates)
    ca = _gather_active(xp, c, active)
    pop_a = xp.abs(ca) ** 2
    # nac[:, active].T without fancy indexing: gather the active columns.
    nac_a = xp.matrix_transpose(xp.take(nac, active, axis=1))
    b = 2.0 * xp.real(ca[:, None] * xp.conj(c) * nac_a)
    collapsed = pop_a < 1e-12
    safe_pop = xp.where(collapsed, xp.asarray(1.0), pop_a)
    g = xp.clip(dt * b / safe_pop[:, None], 0.0, 1.0)
    g = xp.where(collapsed[:, None], xp.asarray(0.0), g)
    return xp.where(onehot, xp.asarray(0.0), g)


def stay_probabilities_xp(xp: Any, g: Any) -> Any:
    """Array-API :func:`stay_probabilities` (ordered channel sum)."""
    ntraj, nstates = g.shape
    total = xp.zeros(ntraj, dtype=xp.float64)
    for k in range(nstates):
        total = total + g[:, k]
    return xp.maximum(xp.asarray(0.0), 1.0 - total)


def apply_edc_batch_xp(
    xp: Any,
    c: Any,
    active: Any,
    energies: Any,
    dt: float,
    kinetic: Any,
    edc_parameter: float,
) -> Any:
    """Array-API :func:`apply_edc_batch`."""
    ntraj, nstates = c.shape
    onehot = _one_hot_active(xp, active, nstates)
    ekin = xp.maximum(kinetic, xp.asarray(1e-12))
    factor = 1.0 + edc_parameter / ekin
    e_active = xp.take(energies, active, axis=0)
    gap = xp.abs(energies[None, :] - e_active[:, None])
    decaying = (gap >= 1e-12) & ~onehot
    safe_gap = xp.where(decaying, gap, xp.asarray(1.0))
    tau = HBAR / safe_gap * factor[:, None]
    decay = xp.where(decaying, xp.exp(-dt / tau), xp.asarray(1.0))
    c = c * decay
    other_pop = xp.zeros(ntraj, dtype=xp.float64)
    pop = xp.abs(c) ** 2
    for k in range(nstates):
        # Adding an exact 0.0 for the active column keeps the ordered
        # partial-sum sequence identical to a sum that skips it.
        other_pop = other_pop + xp.where(
            active == k, xp.asarray(0.0), pop[:, k]
        )
    pop_a = _gather_active(xp, pop, active)
    alive = pop_a > 0.0
    boost = xp.where(
        alive,
        xp.sqrt(
            xp.maximum(xp.asarray(0.0), 1.0 - other_pop)
            / xp.where(alive, pop_a, xp.asarray(1.0))
        ),
        xp.asarray(1.0),
    )
    ca = _gather_active(xp, c, active) * boost
    c = xp.where(onehot, ca[:, None], c)
    return c / batched_norm_xp(xp, c)[:, None]
