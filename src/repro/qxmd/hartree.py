"""Hartree potential of a charge density (multigrid or FFT backend)."""

from __future__ import annotations

from typing import Literal, Optional, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.grids.grid import Grid3D
from repro.multigrid.poisson import PoissonMultigrid, solve_poisson_fft
from repro.obs import trace_span


def hartree_potential(
    rho: np.ndarray,
    grid: Grid3D,
    method: Literal["multigrid", "fft"] = "multigrid",
    solver: Optional[PoissonMultigrid] = None,
    tol: float = 1e-8,
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """Solve nabla^2 V_H = -4 pi rho for the (mean-free) Hartree potential.

    ``rho`` may be a *net* charge density (electrons minus ions); on a
    periodic cell only its mean-free part is physical and the solver
    projects accordingly.  Pass a prebuilt ``solver`` to amortize the
    multigrid hierarchy across SCF iterations (its own backend then
    governs the solve; ``backend`` applies when this function builds the
    solver, and to the FFT path).
    """
    if method == "fft":
        b = get_backend(backend)
        with trace_span("hartree.fft", "hartree", backend=b.name):
            return solve_poisson_fft(rho, grid, backend=b)
    if method != "multigrid":
        raise ValueError("method must be 'multigrid' or 'fft'")
    if solver is None:
        solver = PoissonMultigrid(grid, backend=backend)
    with trace_span("hartree.multigrid", "hartree", backend=solver.backend.name):
        v, stats = solver.solve(rho, tol=tol)
    if not stats.converged:
        raise RuntimeError(
            f"multigrid failed to converge: residual {stats.final_residual:.3e} "
            f"after {stats.cycles} cycles"
        )
    return v


def hartree_energy(rho: np.ndarray, v_h: np.ndarray, grid: Grid3D) -> float:
    """E_H = 1/2 integral rho V_H dV."""
    if rho.shape != grid.shape or v_h.shape != grid.shape:
        raise ValueError("field shapes do not match the grid")
    return 0.5 * float(np.sum(rho * v_h)) * grid.dvol
