"""Self-consistent-field solution of the Kohn-Sham problem on one grid.

One SCF cycle: build the electron density from the current orbitals,
solve the periodic electrostatics of (rho_ion - rho_e) (combining the
long-range local pseudopotential and the Hartree term in a single O(N)
Poisson solve), add local XC and the short-range cores, mix, and refine
the orbitals with a few CG iterations.  The paper's benchmark
configuration is 3 SCF cycles with 3 CG iterations each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.grids.grid import Grid3D
from repro.lfd.observables import density
from repro.lfd.wavefunction import WaveFunctionSet
from repro.multigrid.poisson import PoissonMultigrid
from repro.obs import trace_span
from repro.pseudo.elements import PseudoSpecies
from repro.pseudo.kb import KBProjectorSet
from repro.pseudo.local import (
    core_repulsion_pair_energy,
    core_repulsion_potential,
    ionic_density,
)
from repro.qxmd.cg import cg_eigensolve
from repro.qxmd.hamiltonian import KSHamiltonian
from repro.qxmd.hartree import hartree_potential
from repro.qxmd.xc import lda_exchange_correlation
from repro.resilience.faults import fault_point
from repro.resilience.guards import SCFDivergenceError


@dataclass
class SCFConfig:
    """SCF/CG solver knobs (paper benchmark: nscf=3, ncg=3).

    ``mixer`` selects the potential-mixing scheme: ``"linear"`` (robust
    default) or ``"pulay"`` (DIIS over ``mixer_history`` residuals,
    usually fewer SCF cycles).
    """

    nscf: int = 3
    ncg: int = 3
    mixing: float = 0.4
    mixer: str = "linear"
    mixer_history: int = 6
    poisson_method: str = "multigrid"
    poisson_tol: float = 1e-7
    include_nonlocal: bool = True
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.nscf < 1 or self.ncg < 0:
            raise ValueError("nscf must be >= 1 and ncg >= 0")
        if not (0.0 < self.mixing <= 1.0):
            raise ValueError("mixing must be in (0, 1]")
        if self.mixer not in ("linear", "pulay"):
            raise ValueError("mixer must be 'linear' or 'pulay'")


@dataclass
class SCFResult:
    """Converged (or iteration-limited) SCF state."""

    wf: WaveFunctionSet
    eigenvalues: np.ndarray
    occupations: np.ndarray
    vloc: np.ndarray
    rho: np.ndarray
    energies: Dict[str, float]
    history: List[float] = field(default_factory=list)
    kb: Optional[KBProjectorSet] = None

    @property
    def homo_index(self) -> int:
        occ = np.nonzero(self.occupations > 1e-8)[0]
        if occ.size == 0:
            raise ValueError("no occupied orbitals")
        return int(occ[-1])

    @property
    def lumo_index(self) -> int:
        idx = self.homo_index + 1
        if idx >= self.eigenvalues.size:
            raise ValueError("no unoccupied orbital available (increase norb)")
        return idx

    @property
    def gap(self) -> float:
        """HOMO-LUMO gap (Ha)."""
        return float(
            self.eigenvalues[self.lumo_index] - self.eigenvalues[self.homo_index]
        )


def default_occupations(nelec: float, norb: int) -> np.ndarray:
    """Spin-unpolarized Aufbau occupations (2 electrons per orbital)."""
    if nelec < 0:
        raise ValueError("nelec must be non-negative")
    f = np.zeros(norb)
    remaining = float(nelec)
    for s in range(norb):
        f[s] = min(2.0, remaining)
        remaining -= f[s]
        if remaining <= 0:
            break
    if remaining > 1e-9:
        raise ValueError(f"{norb} orbitals cannot hold {nelec} electrons")
    return f


def build_local_potential(
    grid: Grid3D,
    rho_e: np.ndarray,
    rho_ion: np.ndarray,
    v_core: np.ndarray,
    method: str = "multigrid",
    solver: Optional[PoissonMultigrid] = None,
    tol: float = 1e-7,
) -> np.ndarray:
    """Electron local potential: -phi(rho_ion - rho_e) + v_xc + v_core."""
    phi = hartree_potential(rho_ion - rho_e, grid, method=method, solver=solver, tol=tol)
    v_xc, _ = lda_exchange_correlation(rho_e)
    return -phi + v_xc + v_core


def scf_solve(
    grid: Grid3D,
    positions: np.ndarray,
    species: Sequence[PseudoSpecies],
    norb: int,
    occupations: Optional[np.ndarray] = None,
    config: Optional[SCFConfig] = None,
    initial_wf: Optional[WaveFunctionSet] = None,
) -> SCFResult:
    """Solve the KS ground state of an atomic configuration on ``grid``."""
    config = config if config is not None else SCFConfig()
    positions = np.asarray(positions, dtype=float)
    nelec = sum(sp.zval for sp in species)
    if occupations is None:
        occupations = default_occupations(nelec, norb)
    occupations = np.asarray(occupations, dtype=float)
    if occupations.shape != (norb,):
        raise ValueError("need one occupation per orbital")

    rho_ion = ionic_density(grid, positions, species)
    v_core = core_repulsion_potential(grid, positions, species)
    kb = KBProjectorSet(grid, positions, species) if config.include_nonlocal else None

    rng = np.random.default_rng(config.seed)
    wf = (
        initial_wf
        if initial_wf is not None
        else WaveFunctionSet.random(grid, norb, rng)
    )
    solver = (
        PoissonMultigrid(grid) if config.poisson_method == "multigrid" else None
    )

    # Initial potential from the neutral-atom guess density (ion profile
    # scaled to the electron count).
    rho_e = rho_ion * (nelec / (float(rho_ion.sum()) * grid.dvol))
    vloc = build_local_potential(
        grid, rho_e, rho_ion, v_core, config.poisson_method, solver, config.poisson_tol
    )

    from repro.qxmd.mixing import make_mixer

    mixer = make_mixer(config.mixer, beta=config.mixing,
                       history=config.mixer_history)
    mixer.mix(vloc)  # seed the history with the initial potential

    history: List[float] = []
    eigenvalues = np.zeros(norb)
    with trace_span("scf.solve", "scf", nscf=config.nscf, ncg=config.ncg):
        for it in range(config.nscf):
            if fault_point("qxmd.scf_diverge") is not None:
                raise SCFDivergenceError(
                    f"injected SCF divergence at cycle {it + 1}/{config.nscf}"
                )
            with trace_span("scf.cycle", "scf", cycle=it + 1):
                ham = KSHamiltonian(grid, vloc, kb=kb)
                eigenvalues = cg_eigensolve(ham, wf, ncg=config.ncg)
                rho_e = density(wf, occupations)
                vloc_new = build_local_potential(
                    grid, rho_e, rho_ion, v_core,
                    config.poisson_method, solver, config.poisson_tol,
                )
                vloc = mixer.mix(vloc_new)
                energies = total_energy(
                    grid, wf, occupations, rho_e, rho_ion, v_core, species,
                    positions, kb,
                    method=config.poisson_method, solver=solver,
                    tol=config.poisson_tol,
                )
                history.append(energies["total"])

    return SCFResult(
        wf=wf,
        eigenvalues=np.asarray(eigenvalues),
        occupations=occupations,
        vloc=vloc,
        rho=rho_e,
        energies=energies,
        history=history,
        kb=kb,
    )


@dataclass
class SCFTask:
    """One independent :func:`scf_solve` problem for batch execution.

    Instances are shipped to executor workers, so every field must be
    picklable (grids, species, and wavefunction sets all are).
    """

    grid: Grid3D
    positions: np.ndarray
    species: Sequence[PseudoSpecies]
    norb: int
    occupations: Optional[np.ndarray] = None
    config: Optional[SCFConfig] = None
    initial_wf: Optional[WaveFunctionSet] = None


def _scf_task_call(task: SCFTask) -> SCFResult:
    """Executor task wrapper: solve one :class:`SCFTask`."""
    return scf_solve(
        task.grid,
        task.positions,
        task.species,
        task.norb,
        occupations=task.occupations,
        config=task.config,
        initial_wf=task.initial_wf,
    )


def scf_solve_batch(
    tasks: Sequence[SCFTask],
    executor=None,
) -> List[SCFResult]:
    """Solve independent SCF problems on a DomainExecutor backend.

    The problems are embarrassingly parallel (separate grids, separate
    atoms), which is exactly the executor's contract: results come back
    in task order and are identical on every backend (bit-identical for
    serial and thread; the process backend recomputes on copied inputs,
    which performs the same floating-point program).  With ``executor``
    None the batch runs on a fresh serial backend.
    """
    if executor is None:
        from repro.parallel.backends.serial import SerialBackend

        executor = SerialBackend()
    return executor.map(_scf_task_call, list(tasks), label="scf.batch")


def total_energy(
    grid: Grid3D,
    wf: WaveFunctionSet,
    occupations: np.ndarray,
    rho_e: np.ndarray,
    rho_ion: np.ndarray,
    v_core: np.ndarray,
    species: Sequence[PseudoSpecies],
    positions: np.ndarray,
    kb: Optional[KBProjectorSet] = None,
    method: str = "multigrid",
    solver: Optional[PoissonMultigrid] = None,
    tol: float = 1e-7,
) -> Dict[str, float]:
    """Total-energy breakdown (all terms in Ha).

    E = T_s + E_ext(e-ion) + E_H(e-e) + E_xc + E_core + E_nl + E_ii + E_pair.
    The two Poisson solves (ion field, electron field) keep the e-ion and
    ion-ion pieces separable; the ion self-energy is a configuration-
    independent constant absorbed in E_ii.
    """
    dvol = grid.dvol
    occupations = np.asarray(occupations, dtype=float)
    ham_kin = KSHamiltonian(grid, np.zeros(grid.shape))
    psi = wf.psi.astype(np.complex128, copy=False)
    tpsi = ham_kin.apply_kinetic(psi)
    e_kin = float(
        np.dot(
            occupations,
            np.real(np.einsum("xyzs,xyzs->s", psi.conj(), tpsi)) * dvol,
        )
    )
    phi_ion = hartree_potential(rho_ion, grid, method=method, solver=solver, tol=tol)
    phi_e = hartree_potential(rho_e, grid, method=method, solver=solver, tol=tol)
    e_ext = -float(np.sum(rho_e * phi_ion)) * dvol
    e_hartree = 0.5 * float(np.sum(rho_e * phi_e)) * dvol
    _, e_xc_int = lda_exchange_correlation(rho_e)
    e_xc = e_xc_int * dvol
    e_core = float(np.sum(rho_e * v_core)) * dvol
    e_ii = 0.5 * float(np.sum(rho_ion * phi_ion)) * dvol
    e_pair = core_repulsion_pair_energy(grid, positions, species)
    e_nl = kb.energy(wf, occupations) if kb is not None else 0.0
    total = e_kin + e_ext + e_hartree + e_xc + e_core + e_nl + e_ii + e_pair
    return {
        "kinetic": e_kin,
        "external": e_ext,
        "hartree": e_hartree,
        "xc": e_xc,
        "core": e_core,
        "nonlocal": e_nl,
        "ion_ion": e_ii,
        "core_pair": e_pair,
        "total": total,
    }
