"""LDA exchange-correlation (Perdew-Zunger 1981 parametrization).

Higher-order correlations represented by the XC kernel are short-ranged
and therefore treated locally within each DC domain (Section II); the
local-density approximation used here has exactly that data locality.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

# Perdew-Zunger correlation parameters (unpolarized).
_A, _B, _C, _D = 0.0311, -0.048, 0.0020, -0.0116
_GAMMA, _BETA1, _BETA2 = -0.1423, 1.0529, 0.3334

_RHO_FLOOR = 1e-14


def _exchange(rho: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Slater exchange energy density eps_x and potential v_x."""
    cx = -(3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0)
    eps = cx * rho ** (1.0 / 3.0)
    v = (4.0 / 3.0) * eps
    return eps, v


def _correlation(rho: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """PZ81 correlation energy density eps_c and potential v_c."""
    rs = (3.0 / (4.0 * np.pi * np.maximum(rho, _RHO_FLOOR))) ** (1.0 / 3.0)
    eps = np.zeros_like(rs)
    v = np.zeros_like(rs)
    high = rs < 1.0  # high density: logarithmic form
    if np.any(high):
        r = rs[high]
        ln = np.log(r)
        eps[high] = _A * ln + _B + _C * r * ln + _D * r
        v[high] = (
            _A * ln
            + (_B - _A / 3.0)
            + (2.0 / 3.0) * _C * r * ln
            + ((2.0 * _D - _C) / 3.0) * r
        )
    low = ~high
    if np.any(low):
        r = rs[low]
        sq = np.sqrt(r)
        denom = 1.0 + _BETA1 * sq + _BETA2 * r
        e = _GAMMA / denom
        eps[low] = e
        v[low] = e * (1.0 + (7.0 / 6.0) * _BETA1 * sq + (4.0 / 3.0) * _BETA2 * r) / denom
    return eps, v


def xc_energy_density(rho: np.ndarray) -> np.ndarray:
    """Total XC energy density eps_xc(rho) (energy per electron)."""
    rho = np.maximum(np.asarray(rho, dtype=float), 0.0)
    ex, _ = _exchange(rho)
    ec, _ = _correlation(rho)
    return ex + ec


def lda_exchange_correlation(rho: np.ndarray) -> Tuple[np.ndarray, float]:
    """XC potential and total XC energy for a density field.

    Returns
    -------
    (v_xc, E_xc_density_integrand):
        The multiplicative XC potential and the energy density
        rho * eps_xc summed (integrate with the grid's dvol for E_xc).
    """
    rho = np.maximum(np.asarray(rho, dtype=float), 0.0)
    ex, vx = _exchange(rho)
    ec, vc = _correlation(rho)
    v_xc = vx + vc
    v_xc[rho <= _RHO_FLOOR] = 0.0  # vacuum carries no XC potential
    e_integrand = float(np.sum(rho * (ex + ec)))
    return v_xc, e_integrand
