"""Local spin-density approximation (LSDA) exchange-correlation.

The paper's Kohn-Sham orbitals carry an explicit spin index sigma
(Eq. 1); this module provides the spin-polarized functional: exact
spin-scaling Slater exchange plus Perdew-Zunger correlation with the
von Barth-Hedin zeta-interpolation between the unpolarized and fully
polarized parametrizations.  The potentials are validated against
numerical functional derivatives in the tests, and the zeta = 0 limit
reduces exactly to the spin-restricted LDA of :mod:`repro.qxmd.xc`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_RHO_FLOOR = 1e-14

# Perdew-Zunger correlation parameter sets: (A, B, C, D, gamma, beta1, beta2)
_PZ_UNPOLARIZED = (0.0311, -0.048, 0.0020, -0.0116, -0.1423, 1.0529, 0.3334)
_PZ_POLARIZED = (0.01555, -0.0269, 0.0007, -0.0048, -0.0843, 1.3981, 0.2611)


def _pz_eps_and_drs(rs: np.ndarray, params) -> Tuple[np.ndarray, np.ndarray]:
    """PZ correlation energy density eps_c(rs) and d eps_c / d rs."""
    a, b, c, d, gamma, beta1, beta2 = params
    eps = np.zeros_like(rs)
    deps = np.zeros_like(rs)
    high = rs < 1.0
    if np.any(high):
        r = rs[high]
        ln = np.log(r)
        eps[high] = a * ln + b + c * r * ln + d * r
        deps[high] = a / r + c * (ln + 1.0) + d
    low = ~high
    if np.any(low):
        r = rs[low]
        sq = np.sqrt(r)
        denom = 1.0 + beta1 * sq + beta2 * r
        eps[low] = gamma / denom
        deps[low] = -gamma * (0.5 * beta1 / sq + beta2) / denom ** 2
    return eps, deps


def _zeta_interp(zeta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """f(zeta) and f'(zeta) of the von Barth-Hedin interpolation."""
    norm = 2.0 ** (4.0 / 3.0) - 2.0
    zp = np.clip(1.0 + zeta, 0.0, None)
    zm = np.clip(1.0 - zeta, 0.0, None)
    f = (zp ** (4.0 / 3.0) + zm ** (4.0 / 3.0) - 2.0) / norm
    fp = (4.0 / 3.0) * (zp ** (1.0 / 3.0) - zm ** (1.0 / 3.0)) / norm
    return f, fp


def lsda_exchange_correlation(
    rho_up: np.ndarray, rho_dn: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, float]:
    """LSDA potentials (v_up, v_dn) and the energy integrand sum(rho*eps).

    Multiply the returned integrand by the grid volume element for E_xc.
    """
    rho_up = np.maximum(np.asarray(rho_up, dtype=float), 0.0)
    rho_dn = np.maximum(np.asarray(rho_dn, dtype=float), 0.0)
    if rho_up.shape != rho_dn.shape:
        raise ValueError("spin densities must share a shape")
    rho = rho_up + rho_dn
    safe = np.maximum(rho, _RHO_FLOOR)
    zeta = np.clip((rho_up - rho_dn) / safe, -1.0, 1.0)

    # --- exchange: exact spin scaling E_x = sum_s E_x[2 rho_s] / 2. ----- #
    cx = -(3.0 / 4.0) * (3.0 / np.pi) ** (1.0 / 3.0)
    ex_up_density = 0.5 * cx * (2.0 * rho_up) ** (4.0 / 3.0)  # energy density
    ex_dn_density = 0.5 * cx * (2.0 * rho_dn) ** (4.0 / 3.0)
    vx_up = (4.0 / 3.0) * cx * (2.0 * rho_up) ** (1.0 / 3.0)
    vx_dn = (4.0 / 3.0) * cx * (2.0 * rho_dn) ** (1.0 / 3.0)

    # --- correlation: PZ with zeta interpolation. ----------------------- #
    rs = (3.0 / (4.0 * np.pi * safe)) ** (1.0 / 3.0)
    eps_u, deps_u = _pz_eps_and_drs(rs, _PZ_UNPOLARIZED)
    eps_p, deps_p = _pz_eps_and_drs(rs, _PZ_POLARIZED)
    f, fp = _zeta_interp(zeta)
    eps_c = eps_u + f * (eps_p - eps_u)
    deps_c_drs = deps_u + f * (deps_p - deps_u)
    deps_c_dzeta = fp * (eps_p - eps_u)
    # v_c,sigma = eps_c - (rs/3) d eps/d rs + (sign - zeta) d eps/d zeta
    common = eps_c - (rs / 3.0) * deps_c_drs
    vc_up = common + (1.0 - zeta) * deps_c_dzeta
    vc_dn = common - (1.0 + zeta) * deps_c_dzeta

    mask = rho <= _RHO_FLOOR
    v_up = vx_up + vc_up
    v_dn = vx_dn + vc_dn
    v_up[mask] = 0.0
    v_dn[mask] = 0.0
    e_integrand = float(
        np.sum(ex_up_density + ex_dn_density + rho * eps_c * (~mask))
    )
    return v_up, v_dn, e_integrand
