"""Density/potential mixing schemes for SCF acceleration.

Linear mixing (the default in :mod:`repro.qxmd.scf`) is robust but slow;
Anderson/Pulay (DIIS) mixing extrapolates over the residual history and
typically converges metallic/ionic systems in far fewer SCF cycles -- a
standard ingredient of production DFT codes like the paper's QXMD.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class LinearMixer:
    """x_{n+1} = (1 - beta) x_n + beta x_new."""

    def __init__(self, beta: float = 0.4) -> None:
        if not (0.0 < beta <= 1.0):
            raise ValueError("beta must be in (0, 1]")
        self.beta = beta
        self._prev: Optional[np.ndarray] = None

    def mix(self, x_new: np.ndarray) -> np.ndarray:
        """Blend the new iterate with the stored history."""
        x_new = np.asarray(x_new, dtype=float)
        if self._prev is None:
            self._prev = x_new.copy()
            return x_new.copy()
        out = (1.0 - self.beta) * self._prev + self.beta * x_new
        self._prev = out.copy()
        return out

    def reset(self) -> None:
        """Forget the mixing history."""
        self._prev = None


class PulayMixer:
    """Pulay (DIIS) mixing over a bounded residual history.

    Given input/output pairs (x_in, x_out) with residuals
    r = x_out - x_in, the next input minimizes ||sum_i c_i r_i||^2 under
    sum_i c_i = 1, then applies a damped step along the extrapolated
    residual:

        x_next = sum_i c_i (x_in_i + beta r_i).

    Parameters
    ----------
    beta:
        Damping of the residual step.
    history:
        Maximum stored iterations (older entries are dropped).
    regularization:
        Tikhonov term on the DIIS matrix (guards near-singular histories).
    """

    def __init__(self, beta: float = 0.4, history: int = 6,
                 regularization: float = 1e-12) -> None:
        if not (0.0 < beta <= 1.0):
            raise ValueError("beta must be in (0, 1]")
        if history < 2:
            raise ValueError("history must be at least 2")
        self.beta = beta
        self.history = history
        self.regularization = regularization
        self._inputs: List[np.ndarray] = []
        self._residuals: List[np.ndarray] = []
        self._last_input: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Forget the DIIS history."""
        self._inputs.clear()
        self._residuals.clear()
        self._last_input = None

    @property
    def depth(self) -> int:
        return len(self._inputs)

    def mix(self, x_out: np.ndarray) -> np.ndarray:
        """Feed the latest SCF output; returns the next SCF input."""
        x_out = np.asarray(x_out, dtype=float)
        if self._last_input is None:
            # First call: take the output as-is (also seeds the history).
            self._last_input = x_out.copy()
            return x_out.copy()
        residual = x_out - self._last_input
        self._inputs.append(self._last_input.copy())
        self._residuals.append(residual)
        if len(self._inputs) > self.history:
            self._inputs.pop(0)
            self._residuals.pop(0)

        n = len(self._residuals)
        if n == 1:
            x_next = self._last_input + self.beta * residual
        else:
            r = np.stack([res.ravel() for res in self._residuals])
            a = r @ r.T
            a += self.regularization * np.trace(a) / n * np.eye(n)
            # Solve the constrained least squares via the bordered system.
            m = np.zeros((n + 1, n + 1))
            m[:n, :n] = a
            m[:n, n] = 1.0
            m[n, :n] = 1.0
            rhs = np.zeros(n + 1)
            rhs[n] = 1.0
            try:
                sol = np.linalg.solve(m, rhs)
                coeff = sol[:n]
            except np.linalg.LinAlgError:
                coeff = np.zeros(n)
                coeff[-1] = 1.0
            x_next = np.zeros_like(x_out)
            for c, x_in, res in zip(coeff, self._inputs, self._residuals):
                x_next += c * (x_in + self.beta * res)
        self._last_input = x_next.copy()
        return x_next


def make_mixer(kind: str, beta: float = 0.4, history: int = 6):
    """Factory: ``"linear"`` or ``"pulay"``."""
    if kind == "linear":
        return LinearMixer(beta=beta)
    if kind == "pulay":
        return PulayMixer(beta=beta, history=history)
    raise ValueError(f"unknown mixer {kind!r}; options: linear, pulay")
