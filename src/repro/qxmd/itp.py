"""Imaginary-time propagation (ITP) ground-state solver.

An alternative to the band-by-band CG eigensolver: propagating
exp(-tau H) filters every component except the lowest states, and a
Gram-Schmidt re-orthonormalization per step keeps the band set from
collapsing onto the ground state.  The kinetic factor is applied exactly
in Fourier space using the *finite-difference* dispersion, so ITP
converges to eigenstates of the same discrete Hamiltonian the CG solver
and the real-time propagator use (agreement is asserted in the tests).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.constants import HBAR, M_ELECTRON
from repro.lfd.wavefunction import WaveFunctionSet
from repro.qxmd.hamiltonian import KSHamiltonian


def _fd_kinetic_eigenvalues(grid, mass: float) -> np.ndarray:
    eig = np.zeros(grid.shape)
    for axis, (n, h) in enumerate(zip(grid.shape, grid.spacing)):
        k = np.fft.fftfreq(n) * 2.0 * np.pi
        lam = (2.0 - 2.0 * np.cos(k)) * HBAR * HBAR / (2.0 * mass * h * h)
        shape = [1, 1, 1]
        shape[axis] = n
        eig = eig + lam.reshape(shape)
    return eig


def imaginary_time_ground_state(
    ham: KSHamiltonian,
    wf: WaveFunctionSet,
    dtau: float = 0.05,
    nsteps: int = 200,
    tol: float = 1e-8,
    mass: float = M_ELECTRON,
) -> Tuple[np.ndarray, int]:
    """Relax ``wf`` toward the lowest eigenstates of ``ham`` (in place).

    Strang-split imaginary-time step exp(-dtau H) ~
    exp(-dtau V/2) exp(-dtau T) exp(-dtau V/2), followed by QR
    re-orthonormalization.  Stops early when all Rayleigh quotients move
    less than ``tol`` between steps.

    Returns (eigenvalue estimates, steps taken).  Only the *local*
    Hamiltonian part is filtered (the nonlocal KB projectors, if present
    on ``ham``, are ignored here -- match the CG solver by passing
    ``ham.without_nonlocal()`` when comparing).
    """
    if dtau <= 0:
        raise ValueError("dtau must be positive")
    if nsteps < 1:
        raise ValueError("nsteps must be positive")
    grid = ham.grid
    kin = _fd_kinetic_eigenvalues(grid, mass)
    kin_factor = np.exp(-dtau * kin)[..., None]
    v_half = np.exp(-0.5 * dtau * ham.vloc)[..., None]
    prev = None
    evals = np.zeros(wf.norb)
    steps = 0
    for step in range(nsteps):
        psi = wf.psi.astype(np.complex128, copy=False)
        psi = v_half * psi
        psi = np.fft.ifftn(
            kin_factor * np.fft.fftn(psi, axes=(0, 1, 2)), axes=(0, 1, 2)
        )
        psi = v_half * psi
        wf.psi[...] = psi.astype(wf.dtype)
        wf.orthonormalize()
        steps = step + 1
        evals = np.real(ham.without_nonlocal().expectation(wf))
        if prev is not None and np.abs(evals - prev).max() < tol:
            break
        prev = evals
    # Final Rayleigh-Ritz rotation sorts and decouples the band set.
    from repro.qxmd.cg import subspace_rotate

    evals = subspace_rotate(ham.without_nonlocal(), wf)
    return np.asarray(evals), steps
