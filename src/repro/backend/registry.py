"""Array-API backend registry: named, picklable namespace handles.

The kernel layer never imports ``numpy`` conditionally or consults a
process-global "current backend"; instead every kernel entry point takes
an explicit ``backend=`` argument (a name or an :class:`ArrayBackend`)
and resolves it here.  The handle carries

* ``name``   -- the registry key (``"numpy"``, ``"array_api_strict"``);
* ``xp``     -- the array-API namespace module to compute with;
* ``native`` -- True when ``xp`` *is* NumPy, i.e. the kernel may take its
  pre-refactor fast path (fancy indexing, einsum, in-place views) with
  **bit-identical** results, because the namespace refactor is then a
  pure re-spelling of the same floating-point program.

Handles pickle **by name** (``__reduce__`` returns ``get_backend(name)``)
so they survive the process-spawn executor boundary: a worker unpickles
the name and re-resolves the namespace module in its own interpreter
rather than trying to pickle a module object.

For ``"array_api_strict"`` the real `array-api-strict` package is used
when importable; otherwise :mod:`repro.backend.strict_shim` -- a
pure-stdlib(+NumPy) strict namespace with the same interop policing --
stands in.  ``"auto"`` resolves to ``"numpy"`` today; when CuPy/JAX/
PyTorch backends are registered it will prefer an accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

import numpy as np

#: Names accepted by :func:`get_backend` / the ``--array-backend`` CLI flag.
BACKEND_NAMES: Tuple[str, ...] = ("numpy", "array_api_strict", "auto")

#: The default substrate (and what ``"auto"`` resolves to on CPU-only hosts).
DEFAULT_BACKEND = "numpy"


@dataclass(frozen=True)
class ArrayBackend:
    """A named array-API namespace handle (picklable by name)."""

    name: str
    xp: Any = field(repr=False, compare=False)
    native: bool = field(default=True, compare=False)

    def __reduce__(self):
        # Pickle by name: namespace modules cannot cross a spawn boundary,
        # the registry key can.  Workers re-resolve in their interpreter.
        return (get_backend, (self.name,))

    # ---- boundary converters ------------------------------------- #
    def asarray(self, obj: Any, dtype: Any = None) -> Any:
        """Import host data into this backend's namespace (the boundary)."""
        if self.native:
            return np.asarray(obj, dtype=dtype)
        if dtype is None:
            return self.xp.asarray(obj)
        return self.xp.asarray(obj, dtype=dtype)

    def to_numpy(self, arr: Any) -> np.ndarray:
        """Export an array of this namespace back to host NumPy."""
        return to_numpy(arr)


def _strict_namespace() -> Any:
    try:  # the real package, when the environment provides it
        import array_api_strict  # type: ignore[import-not-found]

        return array_api_strict
    except ImportError:
        from repro.backend import strict_shim

        return strict_shim


_HANDLES: dict = {}


def get_backend(backend: Union[str, ArrayBackend, None] = None) -> ArrayBackend:
    """Resolve a backend name (or pass a handle through) to a handle."""
    if isinstance(backend, ArrayBackend):
        return backend
    name = DEFAULT_BACKEND if backend is None else str(backend)
    if name == "auto":
        name = DEFAULT_BACKEND
    handle = _HANDLES.get(name)
    if handle is not None:
        return handle
    if name == "numpy":
        handle = ArrayBackend(name="numpy", xp=np, native=True)
    elif name == "array_api_strict":
        handle = ArrayBackend(
            name="array_api_strict", xp=_strict_namespace(), native=False
        )
    else:
        raise ValueError(
            f"unknown array backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        )
    _HANDLES[name] = handle
    return handle


def get_namespace(backend: Union[str, ArrayBackend, None] = None) -> Any:
    """The array-API namespace module of a backend (``xp``)."""
    return get_backend(backend).xp


def resolve_backend(
    explicit: Union[str, ArrayBackend, None], tunable: Optional[str] = None
) -> ArrayBackend:
    """Precedence: explicit argument > tuning-profile param > default."""
    if explicit is not None:
        return get_backend(explicit)
    if tunable is not None:
        from repro.tuning.profile import get_active_profile

        # .get(): profiles persisted before the backend dimension existed
        # (old checkpoints) carry no "backend" key.
        name = get_active_profile().params_for(tunable).get(
            "backend", DEFAULT_BACKEND
        )
        return get_backend(str(name))
    return get_backend(DEFAULT_BACKEND)


def available_backends() -> Tuple[str, ...]:
    """Concrete backends usable in this interpreter (excludes ``auto``)."""
    return ("numpy", "array_api_strict")


def to_numpy(arr: Any) -> np.ndarray:
    """Export any backend's array to host NumPy (the exit boundary)."""
    if isinstance(arr, np.ndarray):
        return arr
    from repro.backend.strict_shim import Array as _ShimArray
    from repro.backend.strict_shim import _strict_export

    if isinstance(arr, _ShimArray):
        return _strict_export(arr)
    # real array_api_strict (or any other namespace): standard DLPack /
    # buffer interop via np.asarray on the unwrapped array
    unwrap = getattr(arr, "_array", None)
    if unwrap is not None:
        return np.asarray(unwrap)
    return np.asarray(arr)
