"""A strict array-API namespace shim (the ``array_api_strict`` fallback).

When the real ``array-api-strict`` package is not installed, this module
is what :func:`repro.backend.get_namespace` hands out for the
``"array_api_strict"`` backend.  Like the real package it wraps NumPy in
an opaque :class:`Array` that exposes *only* the array-API surface and
refuses implicit NumPy interop:

* ``np.asarray(shim_array)`` (and every implicit ``__array__`` round
  trip) raises ``TypeError`` -- a converted kernel that silently falls
  back to a ``np.*`` call on the strict path fails loudly instead of
  silently executing on the NumPy fast path.
* Raw ``np.ndarray`` operands in arithmetic, indexing or namespace
  functions raise ``TypeError``; :func:`asarray` is the single
  sanctioned entry point (the boundary the DCL016 lint allowlists).
* Integer-array (fancy) indexing is rejected, mirroring the standard's
  indexing rules; use :func:`take` / ``roll`` / slicing formulations.

The shim intentionally *computes* with NumPy under the hood (so do
``array-api-strict`` and the CPU paths of CuPy/JAX test doubles); its
job is to police the API surface, not to reimplement arithmetic.  All
functions operate on :class:`Array` instances and return them.
"""

from __future__ import annotations

import numpy as _np

__array_api_version__ = "2023.12"

# ------------------------------------------------------------------ #
# dtypes and constants (array-API names)
# ------------------------------------------------------------------ #
int8 = _np.int8
int16 = _np.int16
int32 = _np.int32
int64 = _np.int64
uint8 = _np.uint8
uint16 = _np.uint16
uint32 = _np.uint32
uint64 = _np.uint64
float32 = _np.float32
float64 = _np.float64
complex64 = _np.complex64
complex128 = _np.complex128
bool = _np.bool_  # noqa: A001 -- the standard names the dtype ``bool``

pi = _np.pi
e = _np.e
inf = _np.inf
nan = _np.nan
newaxis = None

_SCALARS = (__builtins__["bool"] if isinstance(__builtins__, dict)
            else __builtins__.bool, int, float, complex)


class Array:
    """Opaque strict array: array-API surface only, no NumPy interop."""

    __slots__ = ("_a",)

    #: refuse to let NumPy ufuncs absorb shim arrays silently
    __array_ufunc__ = None

    def __init__(self, data: _np.ndarray) -> None:
        object.__setattr__(self, "_a", data)

    # -- interop policing ------------------------------------------- #
    def __array__(self, dtype=None, copy=None):  # pragma: no cover - msg only
        raise TypeError(
            "implicit conversion of a strict Array to a NumPy array is not "
            "allowed; use repro.backend.to_numpy(...) at the kernel boundary"
        )

    def __array_namespace__(self, api_version=None):
        import repro.backend.strict_shim as shim

        return shim

    # -- introspection ---------------------------------------------- #
    @property
    def shape(self):
        return self._a.shape

    @property
    def dtype(self):
        return self._a.dtype

    @property
    def ndim(self):
        return self._a.ndim

    @property
    def size(self):
        return self._a.size

    @property
    def device(self):
        return "cpu"

    def to_device(self, device, /):
        """Array-API device transfer; the shim only knows ``"cpu"``."""
        if device != "cpu":
            raise ValueError("strict shim arrays live on 'cpu'")
        return self

    @property
    def mT(self):  # noqa: N802 -- standard attribute name
        return Array(_np.swapaxes(self._a, -1, -2))

    @property
    def T(self):  # noqa: N802
        if self._a.ndim != 2:
            raise ValueError(".T is only defined for 2-D arrays; "
                             "use permute_dims")
        return Array(self._a.T)

    def __len__(self):
        return len(self._a)

    def __repr__(self):
        return f"StrictArray({self._a!r})"

    # -- scalar conversion (0-d only, as the standard specifies) ----- #
    def __bool__(self):
        return self._a.__bool__()

    def __int__(self):
        return int(self._a)

    def __float__(self):
        return float(self._a)

    def __complex__(self):
        return complex(self._a)

    def __index__(self):
        return self._a.__index__()

    # -- indexing ---------------------------------------------------- #
    def __getitem__(self, key):
        return Array(self._a[_index(key)])

    def __setitem__(self, key, value):
        self._a[_index(key)] = _operand(value, "assigned value")

    # -- arithmetic -------------------------------------------------- #
    def __pos__(self):
        return Array(+self._a)

    def __neg__(self):
        return Array(-self._a)

    def __invert__(self):
        return Array(~self._a)

    def __abs__(self):
        return Array(_np.abs(self._a))

    def __matmul__(self, other):
        return Array(self._a @ _operand(other, "matmul operand"))

    def __rmatmul__(self, other):
        return Array(_operand(other, "matmul operand") @ self._a)


def _operand(x, what):
    """Unwrap an operand: strict Arrays and Python scalars only."""
    if isinstance(x, Array):
        return x._a
    if isinstance(x, _SCALARS):
        return x
    raise TypeError(
        f"strict namespace: {what} must be a strict Array or a Python "
        f"scalar, not {type(x).__name__}; convert at the boundary with "
        f"asarray(...)"
    )


def _index(key):
    """Validate an index: ints, slices, Ellipsis, None, bool masks."""
    if isinstance(key, tuple):
        return tuple(_index_one(k) for k in key)
    return _index_one(key)


def _index_one(k):
    if k is None or k is Ellipsis or isinstance(k, (int, slice)):
        return k
    if isinstance(k, Array):
        if k._a.dtype == _np.bool_:
            return k._a
        raise TypeError(
            "strict namespace: integer-array (fancy) indexing is not part "
            "of the array API; use take()/roll()/slicing instead"
        )
    if hasattr(k, "__index__"):
        return k.__index__()
    raise TypeError(
        f"strict namespace: invalid index component {type(k).__name__}"
    )


def _binop(name, symbol=None):
    def op(self, other):
        return Array(getattr(self._a, name)(_operand(other, "operand")))

    op.__name__ = name
    return op


def _inplace(name):
    def op(self, other):
        getattr(self._a, name)(_operand(other, "operand"))
        return self

    op.__name__ = name
    return op


for _name in ("__add__", "__radd__", "__sub__", "__rsub__", "__mul__",
              "__rmul__", "__truediv__", "__rtruediv__", "__floordiv__",
              "__rfloordiv__", "__mod__", "__rmod__", "__pow__",
              "__rpow__", "__and__", "__rand__", "__or__", "__ror__",
              "__xor__", "__rxor__", "__lt__", "__le__", "__gt__",
              "__ge__", "__eq__", "__ne__"):
    setattr(Array, _name, _binop(_name))
for _name in ("__iadd__", "__isub__", "__imul__", "__itruediv__",
              "__ifloordiv__", "__imod__", "__ipow__"):
    setattr(Array, _name, _inplace(_name))
del _name


def _arr(x, fname):
    """Require a strict Array argument for a namespace function."""
    if isinstance(x, Array):
        return x._a
    raise TypeError(
        f"strict namespace: {fname}() requires a strict Array, not "
        f"{type(x).__name__}; convert at the boundary with asarray(...)"
    )


def _arr_or_scalar(x, fname):
    if isinstance(x, Array):
        return x._a
    if isinstance(x, _SCALARS):
        return x
    raise TypeError(
        f"strict namespace: {fname}() operands must be strict Arrays or "
        f"Python scalars, not {type(x).__name__}"
    )


# ------------------------------------------------------------------ #
# creation
# ------------------------------------------------------------------ #
def asarray(obj, /, *, dtype=None, copy=None):
    """The sanctioned boundary: lists, scalars and NumPy arrays enter here."""
    if isinstance(obj, Array):
        obj = obj._a
    a = _np.array(obj, dtype=dtype, copy=True if copy else None)
    return Array(a)


def _creation(np_func):
    def func(shape, *, dtype=None):
        return Array(np_func(shape, dtype=dtype if dtype is not None
                             else float64))

    func.__name__ = np_func.__name__
    return func


zeros = _creation(_np.zeros)
ones = _creation(_np.ones)
empty = _creation(_np.empty)


def full(shape, fill_value, *, dtype=None):
    return Array(_np.full(shape, fill_value, dtype=dtype))


def zeros_like(x, /, *, dtype=None):
    return Array(_np.zeros_like(_arr(x, "zeros_like"), dtype=dtype))


def ones_like(x, /, *, dtype=None):
    return Array(_np.ones_like(_arr(x, "ones_like"), dtype=dtype))


def empty_like(x, /, *, dtype=None):
    return Array(_np.empty_like(_arr(x, "empty_like"), dtype=dtype))


def full_like(x, /, fill_value, *, dtype=None):
    return Array(_np.full_like(_arr(x, "full_like"), fill_value, dtype=dtype))


def arange(start, /, stop=None, step=1, *, dtype=None):
    return Array(_np.arange(start, stop, step, dtype=dtype))


def linspace(start, stop, /, num, *, dtype=None, endpoint=True):
    return Array(_np.linspace(start, stop, num, dtype=dtype,
                              endpoint=endpoint))


def meshgrid(*arrays, indexing="xy"):
    grids = _np.meshgrid(*(_arr(a, "meshgrid") for a in arrays),
                         indexing=indexing)
    return [Array(g) for g in grids]


def tril(x, /, *, k=0):
    return Array(_np.tril(_arr(x, "tril"), k=k))


def triu(x, /, *, k=0):
    return Array(_np.triu(_arr(x, "triu"), k=k))


# ------------------------------------------------------------------ #
# dtype helpers
# ------------------------------------------------------------------ #
def astype(x, dtype, /, *, copy=True):
    return Array(_arr(x, "astype").astype(dtype, copy=copy))


def isdtype(dtype, kind):
    np_kinds = {
        "bool": "b", "signed integer": "i", "unsigned integer": "u",
        "integral": "iu", "real floating": "f", "complex floating": "c",
        "numeric": "iufc",
    }
    dt = _np.dtype(dtype)
    if isinstance(kind, tuple):
        return any(isdtype(dt, k) for k in kind)
    return dt.kind in np_kinds[kind]


def finfo(dtype, /):
    return _np.finfo(dtype)


def iinfo(dtype, /):
    return _np.iinfo(dtype)


def result_type(*args):
    return _np.result_type(*(
        a._a if isinstance(a, Array) else a for a in args
    ))


# ------------------------------------------------------------------ #
# elementwise
# ------------------------------------------------------------------ #
def _unary(np_func, name=None):
    fname = name or np_func.__name__

    def func(x, /):
        return Array(np_func(_arr(x, fname)))

    func.__name__ = fname
    return func


abs = _unary(_np.abs, "abs")  # noqa: A001 -- standard function name
exp = _unary(_np.exp)
log = _unary(_np.log)
sin = _unary(_np.sin)
cos = _unary(_np.cos)
tan = _unary(_np.tan)
sinh = _unary(_np.sinh)
cosh = _unary(_np.cosh)
tanh = _unary(_np.tanh)
sqrt = _unary(_np.sqrt)
sign = _unary(_np.sign)
conj = _unary(_np.conj)
real = _unary(_np.real)
imag = _unary(_np.imag)
floor = _unary(_np.floor)
ceil = _unary(_np.ceil)
round = _unary(_np.round, "round")  # noqa: A001
isfinite = _unary(_np.isfinite)
isnan = _unary(_np.isnan)
isinf = _unary(_np.isinf)
logical_not = _unary(_np.logical_not)
positive = _unary(_np.positive)
negative = _unary(_np.negative)
square = _unary(_np.square)


def _binary(np_func, name=None):
    fname = name or np_func.__name__

    def func(x1, x2, /):
        return Array(np_func(_arr_or_scalar(x1, fname),
                             _arr_or_scalar(x2, fname)))

    func.__name__ = fname
    return func


add = _binary(_np.add)
subtract = _binary(_np.subtract)
multiply = _binary(_np.multiply)
divide = _binary(_np.divide)
pow = _binary(_np.power, "pow")  # noqa: A001
maximum = _binary(_np.maximum)
minimum = _binary(_np.minimum)
equal = _binary(_np.equal)
not_equal = _binary(_np.not_equal)
less = _binary(_np.less)
less_equal = _binary(_np.less_equal)
greater = _binary(_np.greater)
greater_equal = _binary(_np.greater_equal)
logical_and = _binary(_np.logical_and)
logical_or = _binary(_np.logical_or)
atan2 = _binary(_np.arctan2, "atan2")
remainder = _binary(_np.remainder)
copysign = _binary(_np.copysign)
hypot = _binary(_np.hypot)


def where(condition, x1, x2, /):
    return Array(_np.where(_arr(condition, "where"),
                           _arr_or_scalar(x1, "where"),
                           _arr_or_scalar(x2, "where")))


def clip(x, /, min=None, max=None):  # noqa: A002 -- standard arg names
    return Array(_np.clip(_arr(x, "clip"),
                          _arr_or_scalar(min, "clip") if min is not None
                          else None,
                          _arr_or_scalar(max, "clip") if max is not None
                          else None))


# ------------------------------------------------------------------ #
# statistical / sorting / searching
# ------------------------------------------------------------------ #
def _reduction(np_func, name=None, has_dtype=False):
    fname = name or np_func.__name__

    def func(x, /, *, axis=None, keepdims=False, **kw):
        extra = {}
        if has_dtype and "dtype" in kw:
            extra["dtype"] = kw.pop("dtype")
        if kw:
            raise TypeError(f"{fname}: unexpected arguments {sorted(kw)}")
        return Array(np_func(_arr(x, fname), axis=axis, keepdims=keepdims,
                             **extra))

    func.__name__ = fname
    return func


sum = _reduction(_np.sum, "sum", has_dtype=True)  # noqa: A001
prod = _reduction(_np.prod, "prod", has_dtype=True)
mean = _reduction(_np.mean)
std = _reduction(_np.std)
var = _reduction(_np.var)
max = _reduction(_np.max, "max")  # noqa: A001
min = _reduction(_np.min, "min")  # noqa: A001
any = _reduction(_np.any, "any")  # noqa: A001
all = _reduction(_np.all, "all")  # noqa: A001


def argmax(x, /, *, axis=None, keepdims=False):
    return Array(_np.argmax(_arr(x, "argmax"), axis=axis, keepdims=keepdims))


def argmin(x, /, *, axis=None, keepdims=False):
    return Array(_np.argmin(_arr(x, "argmin"), axis=axis, keepdims=keepdims))


def argsort(x, /, *, axis=-1, descending=False, stable=True):
    a = _arr(x, "argsort")
    kind = "stable" if stable else None
    if descending:
        return Array(_np.flip(_np.argsort(_np.flip(a, axis), axis=axis,
                                          kind=kind), axis))
    return Array(_np.argsort(a, axis=axis, kind=kind))


def sort(x, /, *, axis=-1, descending=False, stable=True):
    a = _np.sort(_arr(x, "sort"), axis=axis,
                 kind="stable" if stable else None)
    if descending:
        a = _np.flip(a, axis)
    return Array(a)


def cumulative_sum(x, /, *, axis=None, dtype=None, include_initial=False):
    a = _arr(x, "cumulative_sum")
    if axis is None:
        if a.ndim != 1:
            raise ValueError("cumulative_sum needs an explicit axis for "
                             "multi-dimensional input")
        axis = 0
    out = _np.cumsum(a, axis=axis, dtype=dtype)
    if include_initial:
        shape = list(out.shape)
        shape[axis] = 1
        out = _np.concatenate([_np.zeros(shape, dtype=out.dtype), out],
                              axis=axis)
    return Array(out)


def nonzero(x, /):
    return tuple(Array(i) for i in _np.nonzero(_arr(x, "nonzero")))


def unique_values(x, /):
    return Array(_np.unique(_arr(x, "unique_values")))


# ------------------------------------------------------------------ #
# manipulation
# ------------------------------------------------------------------ #
def reshape(x, /, shape, *, copy=None):
    return Array(_np.reshape(_arr(x, "reshape"), shape))


def permute_dims(x, /, axes):
    return Array(_np.transpose(_arr(x, "permute_dims"), axes))


def moveaxis(x, source, destination, /):
    return Array(_np.moveaxis(_arr(x, "moveaxis"), source, destination))


def expand_dims(x, /, *, axis=0):
    return Array(_np.expand_dims(_arr(x, "expand_dims"), axis))


def squeeze(x, /, axis):
    return Array(_np.squeeze(_arr(x, "squeeze"), axis))


def stack(arrays, /, *, axis=0):
    return Array(_np.stack([_arr(a, "stack") for a in arrays], axis=axis))


def concat(arrays, /, *, axis=0):
    return Array(_np.concatenate([_arr(a, "concat") for a in arrays],
                                 axis=axis))


def broadcast_to(x, /, shape):
    return Array(_np.broadcast_to(_arr(x, "broadcast_to"), shape))


def broadcast_arrays(*arrays):
    out = _np.broadcast_arrays(*(_arr(a, "broadcast_arrays")
                                 for a in arrays))
    return [Array(a) for a in out]


def roll(x, /, shift, *, axis=None):
    return Array(_np.roll(_arr(x, "roll"), shift, axis=axis))


def flip(x, /, *, axis=None):
    return Array(_np.flip(_arr(x, "flip"), axis=axis))


def tile(x, repetitions, /):
    return Array(_np.tile(_arr(x, "tile"), repetitions))


def repeat(x, repeats, /, *, axis=None):
    return Array(_np.repeat(_arr(x, "repeat"), repeats, axis=axis))


def take(x, indices, /, *, axis=None):
    return Array(_np.take(_arr(x, "take"), _arr(indices, "take"), axis=axis))


def take_along_axis(x, indices, /, *, axis=-1):
    return Array(_np.take_along_axis(_arr(x, "take_along_axis"),
                                     _arr(indices, "take_along_axis"),
                                     axis=axis))


# ------------------------------------------------------------------ #
# linear algebra (main namespace + linalg extension)
# ------------------------------------------------------------------ #
def matmul(x1, x2, /):
    return Array(_np.matmul(_arr(x1, "matmul"), _arr(x2, "matmul")))


def tensordot(x1, x2, /, *, axes=2):
    return Array(_np.tensordot(_arr(x1, "tensordot"), _arr(x2, "tensordot"),
                               axes=axes))


def vecdot(x1, x2, /, *, axis=-1):
    """Conjugating inner product along ``axis`` (standard semantics)."""
    a = _np.moveaxis(_arr(x1, "vecdot"), axis, -1)
    b = _np.moveaxis(_arr(x2, "vecdot"), axis, -1)
    return Array(_np.sum(_np.conj(a) * b, axis=-1))


def matrix_transpose(x, /):
    return Array(_np.swapaxes(_arr(x, "matrix_transpose"), -1, -2))


class _Linalg:
    """The ``linalg`` extension: the subset the kernels use."""

    @staticmethod
    def vector_norm(x, /, *, axis=None, keepdims=False, ord=2):  # noqa: A002
        return Array(_np.linalg.vector_norm(_arr(x, "vector_norm"),
                                            axis=axis, keepdims=keepdims,
                                            ord=ord))

    @staticmethod
    def matrix_norm(x, /, *, keepdims=False, ord="fro"):  # noqa: A002
        return Array(_np.linalg.matrix_norm(_arr(x, "matrix_norm"),
                                            keepdims=keepdims, ord=ord))

    vecdot = staticmethod(vecdot)
    matmul = staticmethod(matmul)
    tensordot = staticmethod(tensordot)
    matrix_transpose = staticmethod(matrix_transpose)

    @staticmethod
    def qr(x, /, *, mode="reduced"):
        q, r = _np.linalg.qr(_arr(x, "qr"), mode=mode)
        return Array(q), Array(r)

    @staticmethod
    def diagonal(x, /, *, offset=0):
        return Array(_np.diagonal(_arr(x, "diagonal"), offset=offset,
                                  axis1=-2, axis2=-1))


linalg = _Linalg()


# ------------------------------------------------------------------ #
# fft extension
# ------------------------------------------------------------------ #
class _FFT:
    """The ``fft`` extension: the subset the Poisson solver uses."""

    @staticmethod
    def fftn(x, /, *, s=None, axes=None, norm="backward"):
        return Array(_np.fft.fftn(_arr(x, "fft.fftn"), s=s, axes=axes,
                                  norm=norm))

    @staticmethod
    def ifftn(x, /, *, s=None, axes=None, norm="backward"):
        return Array(_np.fft.ifftn(_arr(x, "fft.ifftn"), s=s, axes=axes,
                                   norm=norm))

    @staticmethod
    def fft(x, /, *, n=None, axis=-1, norm="backward"):
        return Array(_np.fft.fft(_arr(x, "fft.fft"), n=n, axis=axis,
                                 norm=norm))

    @staticmethod
    def ifft(x, /, *, n=None, axis=-1, norm="backward"):
        return Array(_np.fft.ifft(_arr(x, "fft.ifft"), n=n, axis=axis,
                                  norm=norm))

    @staticmethod
    def fftfreq(n, /, *, d=1.0):
        return Array(_np.fft.fftfreq(n, d=d))


fft = _FFT()


# ------------------------------------------------------------------ #
# export helper (used by repro.backend, not part of the standard)
# ------------------------------------------------------------------ #
def _strict_export(x):
    """Boundary exit: a NumPy copy of a strict Array's data."""
    if isinstance(x, Array):
        return _np.array(x._a, copy=True)
    raise TypeError(f"not a strict Array: {type(x).__name__}")


# ------------------------------------------------------------------ #
# docstrings: every public function here implements the array-API
# standard's operation of the same name; the semantics are the
# standard's, not this module's, so document them uniformly instead of
# paraphrasing the spec a hundred times.
# ------------------------------------------------------------------ #
def _document_standard_functions():
    """Stamp a uniform docstring on each undocumented standard function."""
    import types

    for _name, _obj in list(globals().items()):
        if _name.startswith("_") or not isinstance(_obj, types.FunctionType):
            continue
        if _obj.__module__ == __name__ and not _obj.__doc__:
            _obj.__doc__ = (
                f"Array-API standard ``{_name}``: strict, interop-policed "
                f"wrapper over the NumPy implementation (operands must be "
                f"this namespace's Array; raw ndarrays raise TypeError)."
            )


_document_standard_functions()
