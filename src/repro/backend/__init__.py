"""Array-API namespace layer: one kernel source, many substrates.

Kernels obtain a namespace with ``xp = get_namespace(backend)`` and are
written against the array-API standard subset; ``backend`` is threaded
explicitly through ``PropagatorConfig`` / ``NonlocalCorrector`` /
``PoissonMultigrid`` construction (no process globals).  See
:mod:`repro.backend.registry` for the dispatch rules and
:mod:`repro.backend.strict_shim` for the strict fallback namespace.
"""

from repro.backend.registry import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    ArrayBackend,
    available_backends,
    get_backend,
    get_namespace,
    resolve_backend,
    to_numpy,
)

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ArrayBackend",
    "available_backends",
    "get_backend",
    "get_namespace",
    "resolve_backend",
    "to_numpy",
]
