"""Kinetic stencil propagation kernels: Algorithms 1-5 of the paper.

One *pass* applies, along a stencil direction ``d`` and for every mesh
point ``i`` (periodic), the tridiagonal-shaped update

    psi'[i] = al * psi[i] + bl[i] * psi[i-1] + bu[i] * psi[i+1],

with the even/odd pair-split coefficients of
:mod:`repro.grids.stencil`; a Strang sweep of three passes per direction
realizes ``exp(-i dt T_d / hbar)`` exactly unitarily.  The paper's
optimization sequence is re-expressed in NumPy so that each variant keeps
the *same data-layout and loop-structure idea* while the interpreter/cache
costs play the role of the scalar-code/cache costs of the C++ original:

=============  =======================================================
Variant        Paper analogue
=============  =======================================================
``baseline``   Algorithm 1: AoS layout ``psi[n][i][j][k]``, full work
               array, orbital-outermost loops, generic tridiagonal
               update (both neighbour coefficients multiplied even
               when one is zero), explicit copy-back.
``interchange``Algorithm 3: SoA layout ``psi[i][j][k][n]``, loops
               reordered so the orbital index is innermost/unit-stride,
               in-place update with a saved old value, no work array.
``blocked``    Algorithm 4: adds orbital blocking; each Python-level
               iteration now touches a (k, orbital-block) tile, the
               analogue of keeping ``psi_old`` in cache / distributing
               blocks to more GPU thread blocks.
``collapsed``  Algorithm 5: the three outer loops are collapsed into
               whole-array operations -- the analogue of
               ``target teams distribute collapse(3)`` + ``parallel for
               simd``.  This is the variant executed on the virtual
               GPU device (with ``nowait`` async launch modelling).
=============  =======================================================

All variants produce bit-identical results for the same inputs (up to
floating-point reassociation) and are cross-checked in the tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy
from repro.constants import M_ELECTRON
from repro.grids.stencil import PairSplitCoefficients, strang_passes
from repro.lfd.wavefunction import WaveFunctionSet
from repro.obs import trace_charge, trace_span


def _pair_indices(n: int, parity: int) -> Tuple[np.ndarray, np.ndarray]:
    """Left/right member indices of the pairs of one pass."""
    left = np.arange(parity, n, 2) % n
    right = (left + 1) % n
    return left, right


# --------------------------------------------------------------------- #
# Algorithm 1: baseline (AoS, work array, orbital-outermost)
# --------------------------------------------------------------------- #
def kin_prop_baseline(  # dclint: disable=DCL006 -- timed by kinetic_step
    aos: np.ndarray, coeff: PairSplitCoefficients, axis: int
) -> None:
    """Baseline kernel on AoS data ``psi[n, ix, iy, iz]`` (Algorithm 1).

    Loops orbitals outermost, sweeps the full grid writing into a separate
    work array (the O(M^D) temporary the paper criticizes) and copies the
    result back.  The generic tridiagonal update multiplies both neighbour
    coefficients even though one of them is exactly zero in a pair pass --
    exactly what a layout-oblivious stencil code does.
    """
    if aos.ndim != 4:
        raise ValueError("AoS data must have shape (norb, nx, ny, nz)")
    norb = aos.shape[0]
    n = aos.shape[1 + axis]
    if coeff.n != n:
        raise ValueError("coefficient length does not match grid axis")
    al, bl, bu = coeff.al, coeff.bl, coeff.bu
    # One O(M^D) work array per call (the temporary Algorithm 2 removes),
    # shared across orbitals rather than reallocated per orbital.
    wrk = np.empty_like(np.moveaxis(aos[0], axis, 0))
    for nn in range(norb):
        q = np.moveaxis(aos[nn], axis, 0)  # view: (n, a, b)
        na = q.shape[1]
        for i in range(n):
            im = (i - 1) % n
            ip = (i + 1) % n
            for j in range(na):
                wrk[i, j, :] = al * q[i, j, :] + bl[i] * q[im, j, :] + bu[i] * q[ip, j, :]
        q[...] = wrk


# --------------------------------------------------------------------- #
# shared pair update used by the optimized variants
# --------------------------------------------------------------------- #
def _apply_pass_block(
    p: np.ndarray,
    coeff: PairSplitCoefficients,
    left: np.ndarray,
    right: np.ndarray,
) -> None:
    """In-place pair update on ``p`` of shape (n, ...) along its axis 0."""
    extra = p.ndim - 1
    bshape = (-1,) + (1,) * extra
    bu_l = coeff.bu[left].reshape(bshape)
    bl_r = coeff.bl[right].reshape(bshape)
    p_l = p[left]   # fancy indexing -> copies of the old values
    p_r = p[right]
    p[left] = coeff.al * p_l + bu_l * p_r
    p[right] = coeff.al * p_r + bl_r * p_l


# --------------------------------------------------------------------- #
# Algorithm 3: loop interchange + in-place update (SoA)
# --------------------------------------------------------------------- #
def kin_prop_interchange(  # dclint: disable=DCL006 -- timed by kinetic_step
    soa: np.ndarray, coeff: PairSplitCoefficients, axis: int
) -> None:
    """Loop-interchanged kernel on SoA data ``psi[ix, iy, iz, n]`` (Algorithm 3).

    The orbital index is innermost (unit stride); the update is performed
    in place pencil by pencil, with the old pair value held in a small
    temporary (the ``psi_old`` trick).  No O(M^D) work array is allocated.
    """
    if soa.ndim != 4:
        raise ValueError("SoA data must have shape (nx, ny, nz, norb)")
    p = np.moveaxis(soa, axis, 0)  # (n, a, b, norb) view
    n, na, nb, _ = p.shape
    if coeff.n != n:
        raise ValueError("coefficient length does not match grid axis")
    left, right = _pair_indices(n, coeff.parity)
    al = coeff.al
    # The ``psi_old`` pair buffer is preallocated once per sweep and
    # refilled in place (Alg. 2 memory reuse); it plays the role of the
    # register-held old value of the paper's in-place update.
    psi_old = np.empty(p.shape[-1], dtype=p.dtype)
    for j in range(na):
        for k in range(nb):
            pencil = p[:, j, k, :]  # (n, norb) view
            for l, r in zip(left, right):
                psi_old[:] = pencil[l]
                pencil[l] = al * psi_old + coeff.bu[l] * pencil[r]
                pencil[r] = al * pencil[r] + coeff.bl[r] * psi_old


# --------------------------------------------------------------------- #
# Algorithm 4: orbital blocking
# --------------------------------------------------------------------- #
def kin_prop_blocked(  # dclint: disable=DCL006 -- timed by kinetic_step
    soa: np.ndarray,
    coeff: PairSplitCoefficients,
    axis: int,
    block_size: Optional[int] = None,
) -> None:
    """Blocked kernel (Algorithm 4): per (j, orbital-block) tile updates.

    Each Python-level iteration updates a full (pairs, k, block) tile,
    mirroring the cache/register blocking of the paper while still keeping
    the outer plane loop explicit.  ``block_size=None`` resolves the tile
    width from the active :class:`~repro.tuning.profile.TuningProfile`
    (the ``lfd.kin_prop`` tunable), so default callers get the persisted
    per-machine winner instead of a hard-coded shape.
    """
    if soa.ndim != 4:
        raise ValueError("SoA data must have shape (nx, ny, nz, norb)")
    if block_size is None:
        from repro.tuning.profile import get_active_profile

        block_size = int(
            get_active_profile().params_for("lfd.kin_prop")["block_size"]
        )
    if block_size < 1:
        raise ValueError("block_size must be positive")
    p = np.moveaxis(soa, axis, 0)  # (n, a, b, norb) view
    n, na, _, norb = p.shape
    if coeff.n != n:
        raise ValueError("coefficient length does not match grid axis")
    left, right = _pair_indices(n, coeff.parity)
    nblocks = (norb + block_size - 1) // block_size
    for j in range(na):
        plane = p[:, j]  # (n, b, norb) view
        for ib in range(nblocks):
            b0 = ib * block_size
            b1 = min(b0 + block_size, norb)
            _apply_pass_block(plane[..., b0:b1], coeff, left, right)


# --------------------------------------------------------------------- #
# Algorithm 5: fully collapsed (the GPU kernel)
# --------------------------------------------------------------------- #
def kin_prop_collapsed(  # dclint: disable=DCL006 -- timed by kinetic_step
    soa: np.ndarray, coeff: PairSplitCoefficients, axis: int
) -> None:
    """Collapsed kernel (Algorithm 5): whole-array pair update.

    All plane/orbital parallelism is exposed at once -- the analogue of
    ``collapse(3)`` over teams with ``parallel for simd`` inside.  This is
    the payload executed by the virtual GPU.
    """
    if soa.ndim != 4:
        raise ValueError("SoA data must have shape (nx, ny, nz, norb)")
    p = np.moveaxis(soa, axis, 0)
    n = p.shape[0]
    if coeff.n != n:
        raise ValueError("coefficient length does not match grid axis")
    left, right = _pair_indices(n, coeff.parity)
    _apply_pass_block(p, coeff, left, right)


#: Registry of kernel variants (name -> callable(soa_or_aos, coeff, axis)).
#: ``blocked`` additionally accepts ``block_size=``; the common calling
#: convention is positional ``(data, coeff, axis)`` with ``None`` return.
KIN_PROP_VARIANTS: Dict[str, Callable[..., None]] = {
    "baseline": kin_prop_baseline,
    "interchange": kin_prop_interchange,
    "blocked": kin_prop_blocked,
    "collapsed": kin_prop_collapsed,
}


# --------------------------------------------------------------------- #
# portable array-API pass (any namespace)
# --------------------------------------------------------------------- #
def kin_prop_pass_xp(xp: Any, psi: Any, coeff: PairSplitCoefficients, axis: int) -> Any:  # dclint: disable=DCL006 -- timed by kinetic_step
    """One splitting pass in an arbitrary array-API namespace ``xp``.

    Computes the generic tridiagonal-shaped update of Algorithm 1,

        psi'[i] = al * psi[i] + bl[i] * psi[i-1] + bu[i] * psi[i+1],

    with periodic neighbours expressed as ``roll`` (no fancy indexing --
    the array API has none) so the identical source runs under NumPy,
    array-api-strict and, later, CuPy/JAX/PyTorch namespaces.  Exactly
    one of ``bl[i]``/``bu[i]`` is non-zero per point, so this is the same
    floating-point program as the pair-update variants up to the addition
    of an exact zero.  Returns the updated array (out of place).
    """
    n = psi.shape[axis]
    if coeff.n != n:
        raise ValueError("coefficient length does not match grid axis")
    bshape = [1] * len(psi.shape)
    bshape[axis] = n
    bl = xp.reshape(xp.asarray(coeff.bl), tuple(bshape))
    bu = xp.reshape(xp.asarray(coeff.bu), tuple(bshape))
    down = xp.roll(psi, 1, axis=axis)   # psi[i-1] (periodic)
    up = xp.roll(psi, -1, axis=axis)    # psi[i+1] (periodic)
    return coeff.al * psi + bl * down + bu * up


def kinetic_step(
    wf: WaveFunctionSet,
    dt: float,
    theta: Sequence[float] = (0.0, 0.0, 0.0),
    variant: str = "collapsed",
    block_size: Optional[int] = None,
    mass: float = M_ELECTRON,
    backend: Union[str, ArrayBackend, None] = None,
) -> None:
    """Propagate ``wf`` by ``exp(-i dt T / hbar)`` using a chosen kernel variant.

    The three Cartesian kinetic operators commute exactly (tensor-product
    structure), so the full step is the product of per-direction Strang
    sweeps even(dt/2) odd(dt) even(dt/2).  ``theta`` gives the Peierls
    phase per bond, h_d * A_d / c, along each axis (velocity-gauge vector
    potential; cf. Eq. (2)).

    The ``baseline`` variant converts to AoS and back around the sweep --
    benchmark code that wants to time the kernel alone should call
    :func:`kin_prop_baseline` directly on pre-converted data.

    ``block_size`` only affects the ``blocked`` variant; ``None`` defers
    to :func:`kin_prop_blocked`, which resolves the tile width from the
    active TuningProfile.

    ``backend`` selects the array-API substrate.  ``None``/``"numpy"``
    runs the pre-refactor native kernels bit-identically; any other
    namespace routes every variant through :func:`kin_prop_pass_xp`
    (variants are an execution-schedule dimension, meaningful only on the
    native substrate) with ``asarray``/``to_numpy`` conversion at the
    kernel boundary -- the same shape a device-transfer boundary takes.
    """
    if variant not in KIN_PROP_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; options: {sorted(KIN_PROP_VARIANTS)}")
    b = get_backend(backend)
    with trace_span("kin_prop", "kinetic", variant=variant, backend=b.name):
        # 9 pair-split passes, 14 real flops and 3 complex-word streams
        # per point-orbital per pass (see repro.lfd.costs.kin_prop_pass).
        pts = wf.grid.npoints * wf.norb
        trace_charge(9.0 * 14.0 * pts, 9.0 * 3.0 * wf.psi.itemsize * pts)
        if not b.native:
            xp = b.xp
            single = wf.dtype == np.complex64
            psi = xp.asarray(wf.psi)
            for axis in range(3):
                n = wf.grid.shape[axis]
                h = wf.grid.spacing[axis]
                for coeff in strang_passes(n, h, dt, theta=theta[axis], mass=mass):
                    psi = kin_prop_pass_xp(xp, psi, coeff, axis)
                    if single:
                        # mirror the native kernels' per-pass rounding
                        psi = xp.astype(psi, xp.complex64, copy=False)
            wf.psi[...] = to_numpy(psi).astype(wf.dtype, copy=False)
            return
        if variant == "baseline":
            data = wf.to_aos()
            for axis in range(3):
                n = wf.grid.shape[axis]
                h = wf.grid.spacing[axis]
                for coeff in strang_passes(n, h, dt, theta=theta[axis], mass=mass):
                    kin_prop_baseline(data, coeff, axis)
            wf.from_aos(data)
            return
        kernel = KIN_PROP_VARIANTS[variant]
        for axis in range(3):
            n = wf.grid.shape[axis]
            h = wf.grid.spacing[axis]
            for coeff in strang_passes(n, h, dt, theta=theta[axis], mass=mass):
                if variant == "blocked":
                    kernel(wf.psi, coeff, axis, block_size=block_size)
                else:
                    kernel(wf.psi, coeff, axis)
