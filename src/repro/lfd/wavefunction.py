"""Kohn-Sham wave-function containers with AoS and SoA layouts.

The paper's key data-layout optimization (Section III-A) converts the
wave-function storage from array-of-structures (AoS: orbital index first,
``psi[n][i][j][k]``) to structure-of-arrays (SoA: orbital index last and
unit-stride, ``psi[i][j][k][n]``).  :class:`WaveFunctionSet` keeps the SoA
layout canonical -- it is what the optimized kernels and the BLASified
nonlocal correction consume -- and provides explicit conversions for the
baseline kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.grids.grid import Grid3D


class WaveFunctionSet:
    """A set of complex Kohn-Sham orbitals on a 3-D grid.

    Parameters
    ----------
    grid:
        The real-space grid of one DC domain.
    norb:
        Number of Kohn-Sham orbitals.
    dtype:
        ``numpy.complex64`` (SP) or ``numpy.complex128`` (DP); Table II of
        the paper compares both.
    data:
        Optional initial SoA data of shape ``grid.shape + (norb,)``.
    copy:
        When False and ``data`` already has the requested dtype, alias
        ``data`` instead of copying -- executor task functions use this
        to mutate the caller's live array in place under the serial and
        thread backends (bit-identical to the historical inline loops).
    """

    def __init__(
        self,
        grid: Grid3D,
        norb: int,
        dtype=np.complex128,
        data: Optional[np.ndarray] = None,
        copy: bool = True,
    ) -> None:
        if norb < 1:
            raise ValueError("need at least one orbital")
        if dtype not in (np.complex64, np.complex128):
            raise ValueError("dtype must be complex64 or complex128")
        self.grid = grid
        self.norb = int(norb)
        self.dtype = np.dtype(dtype)
        shape = grid.shape + (self.norb,)
        if data is None:
            self.psi = np.zeros(shape, dtype=self.dtype)
        else:
            data = np.asarray(data)
            if data.shape != shape:
                raise ValueError(f"data shape {data.shape} != expected {shape}")
            if not copy and data.dtype == self.dtype:
                self.psi = data
            else:
                self.psi = data.astype(self.dtype, copy=True)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        grid: Grid3D,
        norb: int,
        rng: np.random.Generator,
        dtype=np.complex128,
        orthonormal: bool = True,
    ) -> "WaveFunctionSet":
        """Random (optionally orthonormalized) orbitals; reproducible via rng."""
        shape = grid.shape + (norb,)
        data = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        wf = cls(grid, norb, dtype=dtype, data=data.astype(dtype))
        if orthonormal:
            wf.orthonormalize()
        else:
            wf.normalize()
        return wf

    def copy(self) -> "WaveFunctionSet":
        """Deep copy."""
        return WaveFunctionSet(self.grid, self.norb, dtype=self.dtype, data=self.psi)

    def astype(self, dtype) -> "WaveFunctionSet":
        """Precision-converted copy (SP <-> DP, cf. Table II)."""
        return WaveFunctionSet(
            self.grid, self.norb, dtype=dtype, data=self.psi.astype(dtype)
        )

    # ------------------------------------------------------------------ #
    # layout conversions
    # ------------------------------------------------------------------ #
    def to_aos(self) -> np.ndarray:
        """AoS copy of shape (norb, nx, ny, nz) -- the baseline layout."""
        return np.ascontiguousarray(np.moveaxis(self.psi, -1, 0))

    def from_aos(self, aos: np.ndarray) -> None:
        """Overwrite the orbitals from an AoS array."""
        expected = (self.norb,) + self.grid.shape
        if aos.shape != expected:
            raise ValueError(f"AoS shape {aos.shape} != expected {expected}")
        self.psi[...] = np.moveaxis(aos, 0, -1)

    def as_matrix(self) -> np.ndarray:
        """(Ngrid x Norb) matrix view Psi used by the BLASified kernels (Eq. 9).

        The returned array shares memory with the SoA storage whenever the
        storage is contiguous.
        """
        return self.psi.reshape(self.grid.npoints, self.norb)

    # ------------------------------------------------------------------ #
    # inner products and norms
    # ------------------------------------------------------------------ #
    def overlap_matrix(self, other: Optional["WaveFunctionSet"] = None) -> np.ndarray:
        """Overlap matrix S_su = <psi_s | phi_u> (BLAS-3: one GEMM)."""
        other = self if other is None else other
        if other.grid.shape != self.grid.shape:
            raise ValueError("wave-function sets live on different grids")
        a = self.as_matrix()
        b = other.as_matrix()
        return (a.conj().T @ b) * self.grid.dvol

    def norms(self) -> np.ndarray:
        """Per-orbital L2 norms."""
        m = self.as_matrix()
        return np.sqrt(np.real(np.einsum("gs,gs->s", m.conj(), m)) * self.grid.dvol)

    def normalize(self) -> None:
        """Scale each orbital to unit norm."""
        n = self.norms()
        if np.any(n == 0.0):
            raise ZeroDivisionError("cannot normalize a zero orbital")
        self.psi /= n.astype(self.dtype)

    def orthonormalize(self) -> None:
        """Lowdin-stable orthonormalization via thin QR on the Psi matrix."""
        m = self.as_matrix()
        q, r = np.linalg.qr(m.astype(np.complex128, copy=False))
        # Fix the gauge so the diagonal of R is positive (deterministic).
        phases = np.sign(np.real(np.diag(r)))
        phases[phases == 0.0] = 1.0
        q = q * phases
        self.psi[...] = (q / np.sqrt(self.grid.dvol)).reshape(self.psi.shape).astype(
            self.dtype
        )

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Memory footprint of the orbital storage in bytes."""
        return self.psi.nbytes

    def orbital(self, s: int) -> np.ndarray:
        """3-D view of orbital ``s``."""
        return self.psi[..., s]

    def set_orbital(self, s: int, field: np.ndarray) -> None:
        """Overwrite orbital ``s`` with a 3-D field."""
        if field.shape != self.grid.shape:
            raise ValueError("field shape does not match grid")
        self.psi[..., s] = field

    def max_abs_diff(self, other: "WaveFunctionSet") -> float:
        """Max |psi - psi'| across all orbitals and points."""
        return float(np.abs(self.psi - other.psi).max())
