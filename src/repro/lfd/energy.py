"""Energy evaluation kernels (the ``calc_energy()`` function of the paper).

Band energies are expectation values of the split Hamiltonian (Eq. 5):
finite-difference kinetic + local potential, plus the scissor-projected
nonlocal term.  Like the nonlocal propagation, the nonlocal part is a
pair of GEMMs when BLASified (Section III-D); a per-orbital reference
loop is kept for the Table II / Fig. 5 contrast and for testing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import HBAR, M_ELECTRON
from repro.lfd.nonlocal_corr import NonlocalCorrector
from repro.lfd.wavefunction import WaveFunctionSet


def apply_kinetic(wf: WaveFunctionSet, mass: float = M_ELECTRON) -> np.ndarray:
    """Apply the 3-point finite-difference kinetic operator to all orbitals.

    Returns T|psi> as an SoA array of the same shape as ``wf.psi``.
    """
    psi = wf.psi
    out = np.zeros_like(psi, dtype=np.complex128)
    for axis in range(3):
        h = wf.grid.spacing[axis]
        d = HBAR * HBAR / (mass * h * h)
        o = -0.5 * d
        out += d * psi + o * (np.roll(psi, 1, axis=axis) + np.roll(psi, -1, axis=axis))
    return out


def band_energies(
    wf: WaveFunctionSet,
    vloc: np.ndarray,
    corrector: Optional[NonlocalCorrector] = None,
    mass: float = M_ELECTRON,
) -> np.ndarray:
    """Per-orbital energies e_s = <psi_s| T + v_loc (+ v_nl^sci) |psi_s> (BLASified).

    The kinetic and local terms are evaluated with one fused pass over the
    SoA data; the nonlocal scissor term adds
    Dsci * sum_u |<psi_u(0)|psi_s>|^2 via a single GEMM.
    """
    if vloc.shape != wf.grid.shape:
        raise ValueError("potential shape does not match grid")
    dvol = wf.grid.dvol
    hpsi = apply_kinetic(wf, mass=mass)
    hpsi += vloc[..., None] * wf.psi
    # copy=False: a view when the set already stores complex128 (the
    # kernel dtype contract), so no per-call O(Ngrid*Norb) copy.
    m = wf.as_matrix().astype(np.complex128, copy=False)
    hm = hpsi.reshape(m.shape)
    e = np.real(np.einsum("gs,gs->s", m.conj(), hm)) * dvol
    if corrector is not None:
        phi = corrector.ref_unocc.as_matrix()
        ovl = (phi.conj().T @ m) * dvol               # GEMM
        e = e + corrector.scissor_shift * np.sum(np.abs(ovl) ** 2, axis=0)
    return e


def band_energies_naive(
    wf: WaveFunctionSet,
    vloc: np.ndarray,
    corrector: Optional[NonlocalCorrector] = None,
    mass: float = M_ELECTRON,
) -> np.ndarray:
    """Reference per-orbital-loop implementation of :func:`band_energies`."""
    dvol = wf.grid.dvol
    e = np.zeros(wf.norb)
    tpsi = np.empty(wf.grid.shape, dtype=np.complex128)
    for s in range(wf.norb):
        # Read-only view when already complex128; tpsi is the reused
        # accumulator workspace (cleared per orbital, allocated once).
        psi = wf.orbital(s).astype(np.complex128, copy=False)
        tpsi[...] = 0.0
        for axis in range(3):
            h = wf.grid.spacing[axis]
            d = HBAR * HBAR / (mass * h * h)
            o = -0.5 * d
            tpsi += d * psi + o * (
                np.roll(psi, 1, axis=axis) + np.roll(psi, -1, axis=axis)
            )
        e[s] = np.real(np.vdot(psi, tpsi + vloc * psi)) * dvol
        if corrector is not None:
            for u in range(corrector.ref_unocc.norb):
                ovl = np.vdot(corrector.ref_unocc.orbital(u), psi) * dvol
                e[s] += corrector.scissor_shift * np.abs(ovl) ** 2
    return e


def calc_energy(
    wf: WaveFunctionSet,
    vloc: np.ndarray,
    occupations: np.ndarray,
    corrector: Optional[NonlocalCorrector] = None,
    mass: float = M_ELECTRON,
) -> float:
    """Total band-structure energy sum_s f_s e_s of one domain."""
    occupations = np.asarray(occupations, dtype=float)
    if occupations.shape != (wf.norb,):
        raise ValueError("need one occupation per orbital")
    e = band_energies(wf, vloc, corrector=corrector, mass=mass)
    return float(np.dot(occupations, e))
