"""Nonlocal correction of the time propagator (Eqs. 7-9) and its BLASification.

The nonlocal operator (nonlocal pseudopotential + nonlocal XC) is too
expensive to apply on the mesh every QD step, so the paper projects it
onto the span of the t = 0 unoccupied orbitals with a scissor-shift
strength (Eq. 7):

    (1 - i dt/2 v_nl) |psi_s(t)>  ~=  |psi_s(t)>
        - i (Dsci * dt / 2) * sum_{u >= LUMO} |psi_u(0)> <psi_u(0)|psi_s(t)>,

followed by the normalization of Eq. (6).  Section III-D observes that
with the (Ngrid x Norb) wave-function matrix Psi this is exactly

    Psi(t) <- Psi(t) + c * Psi_u(0) (Psi_u(0)^dagger Psi(t)),     (Eq. 9)

i.e. two BLAS level-3 GEMMs -- the 'BLASification' that Table II and
Figs. 5-6 quantify.  Both the naive per-orbital loop and the GEMM form
are implemented here and are tested to agree to round-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy
from repro.constants import HBAR
from repro.lfd.wavefunction import WaveFunctionSet
from repro.obs import trace_charge, trace_span


def nonlocal_correction_naive(  # dclint: disable=DCL006 -- timed by NonlocalCorrector.apply
    wf: WaveFunctionSet,
    ref_unocc: WaveFunctionSet,
    scissor_shift: float,
    dt: float,
    normalize: bool = True,
) -> None:
    """Apply Eq. (7) with explicit per-orbital loops (pre-BLAS code path).

    For every propagated orbital ``s`` and every reference unoccupied
    orbital ``u``, the overlap <psi_u(0)|psi_s(t)> is computed as an
    individual reduction -- O(Norb_u * Norb_s) level-1 operations.
    """
    if ref_unocc.grid.shape != wf.grid.shape:
        raise ValueError("reference orbitals live on a different grid")
    dvol = wf.grid.dvol
    c0 = -1j * scissor_shift * dt / (2.0 * HBAR)
    acc = np.empty(wf.grid.shape, dtype=np.complex128)  # reused accumulator
    for s in range(wf.norb):
        psi_s = wf.orbital(s)
        acc[...] = 0.0
        for u in range(ref_unocc.norb):
            psi_u = ref_unocc.orbital(u)
            ovl = np.vdot(psi_u, psi_s) * dvol
            acc += ovl * psi_u
        new = psi_s + c0 * acc
        if normalize:
            nrm = np.sqrt(np.real(np.vdot(new, new)) * dvol)
            if nrm > 0.0:
                new = new / nrm
        wf.set_orbital(s, new.astype(wf.dtype, copy=False))


def nonlocal_correction_blas(  # dclint: disable=DCL006 -- timed by NonlocalCorrector.apply
    wf: WaveFunctionSet,
    ref_unocc: WaveFunctionSet,
    scissor_shift: float,
    dt: float,
    normalize: bool = True,
) -> None:
    """Apply Eq. (7) as two GEMMs (Eq. 9), plus a vectorized normalization."""
    if ref_unocc.grid.shape != wf.grid.shape:
        raise ValueError("reference orbitals live on a different grid")
    dvol = wf.grid.dvol
    c0 = -1j * scissor_shift * dt / (2.0 * HBAR)
    psi = wf.as_matrix()                  # (Ngrid, Norb)
    phi = ref_unocc.as_matrix()           # (Ngrid, Nunocc)
    overlaps = (phi.conj().T @ psi) * dvol            # GEMM 1
    psi_new = psi + c0 * (phi @ overlaps)             # GEMM 2
    if normalize:
        nrm = np.sqrt(np.real(np.einsum("gs,gs->s", psi_new.conj(), psi_new)) * dvol)
        nrm[nrm == 0.0] = 1.0
        psi_new = psi_new / nrm
    wf.psi[...] = psi_new.reshape(wf.psi.shape).astype(wf.dtype, copy=False)


def nonlocal_correction_blas_blocked(  # dclint: disable=DCL006 -- timed by NonlocalCorrector.apply
    wf: WaveFunctionSet,
    ref_unocc: WaveFunctionSet,
    scissor_shift: float,
    dt: float,
    normalize: bool = True,
    orb_block: Optional[int] = None,
) -> None:
    """Apply Eq. (9) as panel GEMMs over the unoccupied reference block.

    The (Ngrid x Nunocc) reference matrix is split into orbital panels of
    width ``orb_block``; each panel contributes one GEMM pair whose
    partial correction is accumulated.  Same arithmetic as
    :func:`nonlocal_correction_blas` (panel sums only reassociate the
    unoccupied-orbital reduction), but the panel width controls the
    BLAS-3 block shape -- the knob the tuning subsystem searches.
    ``orb_block=None`` resolves that width from the active TuningProfile
    (the ``lfd.nonlocal`` tunable) instead of a hard-coded panel shape.
    """
    if ref_unocc.grid.shape != wf.grid.shape:
        raise ValueError("reference orbitals live on a different grid")
    if orb_block is None:
        from repro.tuning.profile import get_active_profile

        orb_block = int(
            get_active_profile().params_for("lfd.nonlocal")["orb_block"]
        )
    if orb_block < 1:
        raise ValueError("orb_block must be positive")
    dvol = wf.grid.dvol
    c0 = -1j * scissor_shift * dt / (2.0 * HBAR)
    psi = wf.as_matrix()                  # (Ngrid, Norb)
    phi = ref_unocc.as_matrix()           # (Ngrid, Nunocc)
    nun = ref_unocc.norb
    corr = np.zeros_like(psi)
    for b0 in range(0, nun, orb_block):
        panel = phi[:, b0:b0 + orb_block]
        overlaps = (panel.conj().T @ psi) * dvol      # GEMM 1 (panel)
        corr += panel @ overlaps                      # GEMM 2 (panel)
    psi_new = psi + c0 * corr
    if normalize:
        nrm = np.sqrt(np.real(np.einsum("gs,gs->s", psi_new.conj(), psi_new)) * dvol)
        nrm[nrm == 0.0] = 1.0
        psi_new = psi_new / nrm
    wf.psi[...] = psi_new.reshape(wf.psi.shape).astype(wf.dtype, copy=False)


def nonlocal_correction_xp(  # dclint: disable=DCL006 -- timed by NonlocalCorrector.apply
    xp: Any,
    wf: WaveFunctionSet,
    ref_unocc: WaveFunctionSet,
    scissor_shift: float,
    dt: float,
    normalize: bool = True,
    orb_block: Optional[int] = None,
) -> None:
    """Apply Eq. (9) in an arbitrary array-API namespace ``xp``.

    The panel-GEMM arithmetic of :func:`nonlocal_correction_blas_blocked`
    re-spelled onto the array-API subset: ``matrix_transpose``/``conj``/
    ``@`` for the two GEMMs and the standard's conjugating ``vecdot`` for
    the normalization (in place of ``einsum``, which the standard lacks).
    ``orb_block=None`` uses a single full-width panel (the plain Eq. 9
    form).  Host data crosses the namespace boundary exactly twice.
    """
    if ref_unocc.grid.shape != wf.grid.shape:
        raise ValueError("reference orbitals live on a different grid")
    dvol = wf.grid.dvol
    c0 = -1j * scissor_shift * dt / (2.0 * HBAR)
    psi = xp.asarray(wf.as_matrix())      # (Ngrid, Norb)
    phi = xp.asarray(ref_unocc.as_matrix())   # (Ngrid, Nunocc)
    nun = ref_unocc.norb
    blk = nun if orb_block is None else int(orb_block)
    if blk < 1:
        raise ValueError("orb_block must be positive")
    corr = xp.zeros_like(psi)
    for b0 in range(0, nun, blk):
        panel = phi[:, b0:b0 + blk]
        overlaps = (xp.matrix_transpose(xp.conj(panel)) @ psi) * dvol
        corr = corr + panel @ overlaps
    psi_new = psi + c0 * corr
    if normalize:
        nrm = xp.sqrt(xp.real(xp.vecdot(psi_new, psi_new, axis=0)) * dvol)
        nrm = xp.where(nrm == 0.0, 1.0, nrm)
        psi_new = psi_new / nrm
    wf.psi[...] = (
        to_numpy(psi_new).reshape(wf.psi.shape).astype(wf.dtype, copy=False)
    )


#: Selectable nonlocal-correction variants (cf. KIN_PROP_VARIANTS).
NONLOCAL_VARIANTS = ("naive", "blas", "blas_blocked")


@dataclass
class NonlocalCorrector:
    """Holds the frozen t = 0 unoccupied reference block and scissor shift.

    The reference orbitals and the scissor shift (Eq. 8) are recomputed by
    QXMD once per MD step and amortized over the N_QD = 10^2..10^3 QD
    sub-steps (shadow dynamics); this object is the GPU-resident state.

    Attributes
    ----------
    ref_unocc:
        Unoccupied (u >= LUMO) orbitals at the start of the MD step.
    scissor_shift:
        Dsci of Eq. (8), in hartree.
    variant:
        ``"blas"`` (Eq. 9), ``"blas_blocked"`` (panel GEMMs) or
        ``"naive"`` (per-orbital loops); None resolves from the active
        :class:`~repro.tuning.profile.TuningProfile`.
    orb_block:
        Panel width of the ``blas_blocked`` variant; None resolves from
        the active tuning profile.
    backend:
        Array-API substrate (name or :class:`~repro.backend.ArrayBackend`
        handle); None resolves from the active tuning profile, falling
        back to ``"numpy"`` for profiles persisted before the backend
        dimension existed.  The native substrate runs the pre-refactor
        variant kernels bit-identically; any other namespace routes
        through :func:`nonlocal_correction_xp`.
    """

    ref_unocc: WaveFunctionSet
    scissor_shift: float
    variant: Optional[str] = None
    orb_block: Optional[int] = None
    backend: Union[str, ArrayBackend, None] = None

    def __post_init__(self) -> None:
        from repro.tuning.profile import get_active_profile

        params = get_active_profile().params_for("lfd.nonlocal")
        if self.variant is None:
            self.variant = str(params["variant"])
        if self.orb_block is None:
            self.orb_block = int(params["orb_block"])  # type: ignore[arg-type]
        if self.backend is None:
            self.backend = str(params.get("backend", "numpy"))
        self.backend = get_backend(self.backend)
        if self.variant not in NONLOCAL_VARIANTS:
            raise ValueError(
                f"variant must be one of {', '.join(NONLOCAL_VARIANTS)}"
            )
        if self.orb_block < 1:
            raise ValueError("orb_block must be positive")

    def apply(self, wf: WaveFunctionSet, dt: float, normalize: bool = True) -> None:
        """One nonlocal half-factor of Eq. (6) applied in place."""
        b = get_backend(self.backend)
        with trace_span("nonlocal_corr", "nonlocal", variant=self.variant,
                        backend=b.name):
            ngrid = wf.grid.npoints
            trace_charge(
                self.flop_count(wf.norb, ngrid),
                self.byte_count(wf.norb, ngrid, wf.psi.itemsize),
            )
            if not b.native:
                nonlocal_correction_xp(
                    b.xp, wf, self.ref_unocc, self.scissor_shift, dt,
                    normalize=normalize,
                    orb_block=(int(self.orb_block)
                               if self.variant == "blas_blocked" else None),
                )
            elif self.variant == "blas":
                nonlocal_correction_blas(
                    wf, self.ref_unocc, self.scissor_shift, dt, normalize=normalize
                )
            elif self.variant == "blas_blocked":
                nonlocal_correction_blas_blocked(
                    wf, self.ref_unocc, self.scissor_shift, dt,
                    normalize=normalize, orb_block=int(self.orb_block),
                )
            else:
                nonlocal_correction_naive(
                    wf, self.ref_unocc, self.scissor_shift, dt, normalize=normalize
                )

    def flop_count(self, norb: int, ngrid: int) -> float:
        """Complex flops of one BLASified application (two GEMMs)."""
        nun = self.ref_unocc.norb
        gemm1 = 8.0 * ngrid * nun * norb      # 8 real flops per complex MAC
        gemm2 = 8.0 * ngrid * nun * norb
        return gemm1 + gemm2

    def byte_count(self, norb: int, ngrid: int, itemsize: int) -> float:
        """Bytes moved by one BLASified application (streaming estimate)."""
        return itemsize * ngrid * (2.0 * norb + self.ref_unocc.norb)
