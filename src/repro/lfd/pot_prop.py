"""Local-potential phase propagator.

The local part of the split Hamiltonian (Eq. 5) -- local pseudopotential,
Hartree and local exchange-correlation -- is diagonal in real space, so
``exp(-i dt v_loc(r) / hbar)`` is a pointwise phase multiplication.  This
is the memory-bandwidth-bound partner of the kinetic stencil in the
electron-propagation kernel of Table II.
"""

from __future__ import annotations

import numpy as np

from repro.constants import HBAR
from repro.lfd.wavefunction import WaveFunctionSet
from repro.obs import trace_charge, trace_span


def potential_phase(vloc: np.ndarray, dt: float) -> np.ndarray:
    """The diagonal phase field exp(-i dt v_loc / hbar)."""
    return np.exp(-1j * (dt / HBAR) * np.asarray(vloc, dtype=float))


def potential_phase_step(
    wf: WaveFunctionSet,
    vloc: np.ndarray,
    dt: float,
    phase: np.ndarray | None = None,
) -> np.ndarray:
    """Apply exp(-i dt v_loc / hbar) to every orbital in place.

    Parameters
    ----------
    wf:
        The wave-function set to propagate.
    vloc:
        Real local potential on the grid (ignored if ``phase`` is given).
    dt:
        Time step (use dt/2 for the outer Strang halves of Eq. 6).
    phase:
        Optional precomputed phase field (re-used across orbital sets and
        QD sub-steps while the potential is frozen -- the shadow-dynamics
        amortization).

    Returns
    -------
    The phase field actually used, so callers can cache it.
    """
    if phase is None:
        if vloc.shape != wf.grid.shape:
            raise ValueError(
                f"potential shape {vloc.shape} != grid shape {wf.grid.shape}"
            )
        phase = potential_phase(vloc, dt)
    with trace_span("pot_prop", "potential"):
        # One complex multiply per point-orbital (see costs.pot_prop_half).
        pts = wf.grid.npoints * wf.norb
        trace_charge(6.0 * pts, 2.0 * wf.psi.itemsize * pts)
        if wf.dtype == np.complex64:
            phase_cast = phase.astype(np.complex64)
        else:
            phase_cast = phase
        wf.psi *= phase_cast[..., None]
    return phase
