"""Local-potential phase propagator.

The local part of the split Hamiltonian (Eq. 5) -- local pseudopotential,
Hartree and local exchange-correlation -- is diagonal in real space, so
``exp(-i dt v_loc(r) / hbar)`` is a pointwise phase multiplication.  This
is the memory-bandwidth-bound partner of the kinetic stencil in the
electron-propagation kernel of Table II.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy
from repro.constants import HBAR
from repro.lfd.wavefunction import WaveFunctionSet
from repro.obs import trace_charge, trace_span


def potential_phase(  # dclint: disable=DCL006 -- timed by potential_phase_step
    vloc: np.ndarray,
    dt: float,
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """The diagonal phase field exp(-i dt v_loc / hbar)."""
    b = get_backend(backend)
    if b.native:
        return np.exp(-1j * (dt / HBAR) * np.asarray(vloc, dtype=float))
    xp = b.xp
    v = xp.asarray(np.asarray(vloc, dtype=float))
    return to_numpy(xp.exp((-1j * (dt / HBAR)) * v))


def potential_phase_step(
    wf: WaveFunctionSet,
    vloc: np.ndarray,
    dt: float,
    phase: np.ndarray | None = None,
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """Apply exp(-i dt v_loc / hbar) to every orbital in place.

    Parameters
    ----------
    wf:
        The wave-function set to propagate.
    vloc:
        Real local potential on the grid (ignored if ``phase`` is given).
    dt:
        Time step (use dt/2 for the outer Strang halves of Eq. 6).
    phase:
        Optional precomputed phase field (re-used across orbital sets and
        QD sub-steps while the potential is frozen -- the shadow-dynamics
        amortization).
    backend:
        Array-API substrate; ``None``/``"numpy"`` is the pre-refactor
        native path, anything else applies the phase in that namespace
        with boundary conversion.

    Returns
    -------
    The phase field actually used (always host NumPy), so callers can
    cache it across sub-steps regardless of the substrate.
    """
    b = get_backend(backend)
    if phase is None:
        if vloc.shape != wf.grid.shape:
            raise ValueError(
                f"potential shape {vloc.shape} != grid shape {wf.grid.shape}"
            )
        phase = potential_phase(vloc, dt, backend=b)
    with trace_span("pot_prop", "potential", backend=b.name):
        # One complex multiply per point-orbital (see costs.pot_prop_half).
        pts = wf.grid.npoints * wf.norb
        trace_charge(6.0 * pts, 2.0 * wf.psi.itemsize * pts)
        if wf.dtype == np.complex64:
            phase_cast = phase.astype(np.complex64)
        else:
            phase_cast = phase
        if b.native:
            wf.psi *= phase_cast[..., None]
        else:
            xp = b.xp
            psi = xp.asarray(wf.psi) * xp.expand_dims(
                xp.asarray(phase_cast), axis=-1
            )
            wf.psi[...] = to_numpy(psi).astype(wf.dtype, copy=False)
    return phase
