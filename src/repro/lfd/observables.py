"""Observables of the propagated electronic state.

Density, dipole moment, orbital norms and paramagnetic current -- the
quantities used by the physics sanity tests (linear-response absorption
spectra) and by the application study (polarization response to the
laser, Fig. 7).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import C_LIGHT, E_CHARGE, HBAR, M_ELECTRON
from repro.lfd.wavefunction import WaveFunctionSet


def norms(wf: WaveFunctionSet) -> np.ndarray:
    """Per-orbital L2 norms (unitarity diagnostic)."""
    return wf.norms()


def density(wf: WaveFunctionSet, occupations: np.ndarray) -> np.ndarray:
    """Electron number density rho(r) = sum_s f_s |psi_s(r)|^2."""
    occupations = np.asarray(occupations, dtype=float)
    if occupations.shape != (wf.norb,):
        raise ValueError("need one occupation per orbital")
    return np.einsum("xyzs,s->xyz", np.abs(wf.psi.astype(np.complex128, copy=False)) ** 2, occupations)


def dipole_moment(wf: WaveFunctionSet, occupations: np.ndarray) -> np.ndarray:
    """Electronic dipole moment -e * integral r rho(r) dV (a.u.)."""
    rho = density(wf, occupations)
    xs, ys, zs = wf.grid.meshgrid()
    dvol = wf.grid.dvol
    return -np.array(
        [
            float((rho * xs).sum()) * dvol,
            float((rho * ys).sum()) * dvol,
            float((rho * zs).sum()) * dvol,
        ]
    )


def current_expectation(
    wf: WaveFunctionSet,
    occupations: np.ndarray,
    a_field: Sequence[float] = (0.0, 0.0, 0.0),
    mass: float = M_ELECTRON,
) -> np.ndarray:
    """Total kinetic-momentum current <p + eA/c>/m summed over orbitals.

    The paramagnetic part is evaluated with the central-difference
    gradient; the diamagnetic part adds (A/c) * N_electrons / m.  This is
    the current density source fed back to the Maxwell solver.
    """
    occupations = np.asarray(occupations, dtype=float)
    a_field = np.asarray(a_field, dtype=float)
    psi = wf.psi.astype(np.complex128, copy=False)
    dvol = wf.grid.dvol
    current = np.zeros(3)
    for axis in range(3):
        h = wf.grid.spacing[axis]
        grad = (np.roll(psi, -1, axis=axis) - np.roll(psi, 1, axis=axis)) / (2.0 * h)
        # <p_d> = -i hbar  integral psi* d psi
        p_per_orb = np.real(
            -1j * HBAR * np.einsum("xyzs,xyzs->s", psi.conj(), grad)
        ) * dvol
        current[axis] = float(np.dot(occupations, p_per_orb))
    nelec = float(occupations.sum())
    current += a_field * nelec / C_LIGHT
    return current / mass


def kinetic_gauge_gradient(
    wf: WaveFunctionSet,
    occupations: np.ndarray,
    a_field: Sequence[float] = (0.0, 0.0, 0.0),
    mass: float = M_ELECTRON,
) -> np.ndarray:
    """d<H>/dA for the Peierls-discretized kinetic operator (3-vector).

    The discrete-consistent current measure: with hopping phases
    theta_d = h_d A_d / (hbar c), the kinetic expectation is
    sum 2 o Re[e^{-i theta} psi*_i psi_{i+1}] and its exact A-derivative
    is (2 h o / hbar c) sum Im[e^{-i theta} psi*_i psi_{i+1}].  Energy
    bookkeeping under the laser follows d<H>/dt = (d<H>/dA) . dA/dt,
    which :func:`absorbed_power` evaluates; the identity is verified in
    the physics integration tests.
    """
    occupations = np.asarray(occupations, dtype=float)
    a_field = np.asarray(a_field, dtype=float)
    psi = wf.psi.astype(np.complex128, copy=False)
    dvol = wf.grid.dvol
    out = np.zeros(3)
    for axis in range(3):
        h = wf.grid.spacing[axis]
        o = -HBAR * HBAR / (2.0 * mass * h * h)
        theta = E_CHARGE * h * a_field[axis] / (HBAR * C_LIGHT)
        pair = psi.conj() * np.roll(psi, -1, axis=axis)
        s = float(
            np.einsum("xyzs,s->", np.imag(np.exp(-1j * theta) * pair),
                      occupations)
        ) * dvol
        out[axis] = (2.0 * h * o / (HBAR * C_LIGHT)) * s
    return out


def absorbed_power(
    wf: WaveFunctionSet,
    occupations: np.ndarray,
    a_field: Sequence[float],
    a_dot: Sequence[float],
    mass: float = M_ELECTRON,
) -> float:
    """Instantaneous absorption rate d<H>/dt = (d<H>/dA) . dA/dt.

    Integrate over a pulse (midpoint sampling) to get the total energy
    absorbed from the field; for a pulse that starts and ends at A = 0
    this equals the band-energy change.
    """
    grad = kinetic_gauge_gradient(wf, occupations, a_field, mass=mass)
    return float(np.dot(grad, np.asarray(a_dot, dtype=float)))
