"""Occupation remapping (the ``remap_occ()`` function of the paper).

At the end of the N_QD quantum sub-steps of one MD step, the propagated
orbitals are projected back onto the adiabatic Kohn-Sham basis of the
domain to extract updated occupation numbers

    f_u(t + D_MD) = sum_s f_s(t) |<phi_u | psi_s(t + D_MD)>|^2 .

These occupations are the *only* data the shadow-dynamics handshake sends
back from the GPU-resident LFD to the CPU-resident QXMD (Fig. 1b), where
they reshape the excited-state energy landscape for surface hopping.
BLASified, the projection is a single GEMM followed by an elementwise
square and a matrix-vector product.
"""

from __future__ import annotations

import numpy as np

from repro.lfd.wavefunction import WaveFunctionSet


def remap_occ(
    wf_t: WaveFunctionSet,
    basis: WaveFunctionSet,
    occupations: np.ndarray,
) -> np.ndarray:
    """Project propagated orbitals onto an adiabatic basis (BLASified).

    Parameters
    ----------
    wf_t:
        Propagated orbitals psi_s(t).
    basis:
        Adiabatic reference orbitals phi_u (typically the full occupied +
        unoccupied set at the start of the MD step).
    occupations:
        Occupations f_s carried by the propagated orbitals.

    Returns
    -------
    New occupations f_u, one per basis orbital.  If the propagated
    orbitals remain inside the span of the basis, total occupation is
    conserved exactly.
    """
    occupations = np.asarray(occupations, dtype=float)
    if occupations.shape != (wf_t.norb,):
        raise ValueError("need one occupation per propagated orbital")
    if basis.grid.shape != wf_t.grid.shape:
        raise ValueError("basis lives on a different grid")
    phi = basis.as_matrix()
    psi = wf_t.as_matrix()
    ovl = (phi.conj().T @ psi) * wf_t.grid.dvol      # GEMM: (Nbasis, Norb)
    weights = np.abs(ovl) ** 2
    return weights @ occupations


def remap_occ_naive(
    wf_t: WaveFunctionSet,
    basis: WaveFunctionSet,
    occupations: np.ndarray,
) -> np.ndarray:
    """Per-orbital-loop reference implementation of :func:`remap_occ`."""
    occupations = np.asarray(occupations, dtype=float)
    dvol = wf_t.grid.dvol
    f_new = np.zeros(basis.norb)
    for u in range(basis.norb):
        phi_u = basis.orbital(u)
        for s in range(wf_t.norb):
            ovl = np.vdot(phi_u, wf_t.orbital(s)) * dvol
            f_new[u] += occupations[s] * np.abs(ovl) ** 2
    return f_new
