"""Flop/byte inventory of the LFD kernels.

The modeled (paper-scale) entries of Tables I-II and Figs. 4-6, and the
per-rank compute times of the scaling studies, are derived from this
inventory plus the device roofline.  Counts follow the pair-split kernel
actually implemented (14 real flops per point-orbital per pass: two
complex multiplies and one add) and streaming memory-traffic estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.device.blas import gemm_bytes, gemm_flops


@dataclass(frozen=True)
class KernelCost:
    """Aggregate flops and bytes of one kernel invocation."""

    name: str
    flops: float
    bytes_moved: float

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(self.name, self.flops + other.flops,
                          self.bytes_moved + other.bytes_moved)


@dataclass(frozen=True)
class LFDWorkload:
    """One domain's LFD workload for a single MD step.

    Parameters
    ----------
    ngrid:
        Mesh points per domain (paper: 70*70*72 = 352,800).
    norb:
        Propagated KS orbitals (paper kernel benchmark: 64).
    nunocc:
        Unoccupied reference orbitals in the nonlocal projector.
    itemsize:
        Bytes per complex scalar: 8 (SP) or 16 (DP).
    nqd:
        QD sub-steps per MD step (paper: 1,000).
    """

    ngrid: int
    norb: int
    nunocc: int
    itemsize: int = 16
    nqd: int = 1000

    def __post_init__(self) -> None:
        if self.itemsize not in (8, 16):
            raise ValueError("itemsize must be 8 (complex64) or 16 (complex128)")
        if min(self.ngrid, self.norb, self.nqd) < 1 or self.nunocc < 0:
            raise ValueError("workload sizes must be positive")

    @property
    def real_itemsize(self) -> int:
        """Bytes of the underlying real scalar (selects SP/DP peak)."""
        return self.itemsize // 2

    @property
    def psi_bytes(self) -> int:
        """Device-resident footprint of Psi(t) (one wave-function matrix)."""
        return self.ngrid * self.norb * self.itemsize

    # ----------------------------------------------------------------- #
    # per-QD-step kernels
    # ----------------------------------------------------------------- #
    def kin_prop_pass(self) -> KernelCost:
        """One even/odd splitting pass over all orbitals."""
        pts = self.ngrid * self.norb
        return KernelCost("kin_prop_pass", flops=14.0 * pts,
                          bytes_moved=3.0 * self.itemsize * pts)

    def kin_prop_step(self) -> KernelCost:
        """Full kinetic step: 3 Strang passes per direction, 3 directions."""
        p = self.kin_prop_pass()
        return KernelCost("kin_prop", 9.0 * p.flops, 9.0 * p.bytes_moved)

    def pot_prop_half(self) -> KernelCost:
        """One local-potential phase half-step (one complex multiply/point)."""
        pts = self.ngrid * self.norb
        return KernelCost("pot_prop_half", flops=6.0 * pts,
                          bytes_moved=2.0 * self.itemsize * pts)

    def nonlocal_half(self) -> KernelCost:
        """One scissor-projected nonlocal half-factor: 2 GEMMs + normalize."""
        f = gemm_flops(self.nunocc, self.norb, self.ngrid) + gemm_flops(
            self.ngrid, self.norb, self.nunocc
        )
        b = gemm_bytes(self.nunocc, self.norb, self.ngrid, self.itemsize) + gemm_bytes(
            self.ngrid, self.norb, self.nunocc, self.itemsize
        )
        f += 8.0 * self.ngrid * self.norb  # norms + scale
        b += 2.0 * self.itemsize * self.ngrid * self.norb
        return KernelCost("nonlocal_half", f, b)

    def nonlocal_half_naive(self) -> KernelCost:
        """Same math as per-orbital loops (identical flops, worse traffic)."""
        blas = self.nonlocal_half()
        # Every (u, s) pair re-reads both full orbitals: no blocking reuse.
        b = 2.0 * self.itemsize * self.ngrid * self.nunocc * self.norb
        return KernelCost("nonlocal_half_naive", blas.flops, b)

    def qd_step(self, nonlocal_variant: str = "blas") -> List[KernelCost]:
        """All kernels of one QD sub-step (Eq. 6): NL V/2 T V/2 NL."""
        nl = (self.nonlocal_half() if nonlocal_variant == "blas"
              else self.nonlocal_half_naive())
        return [nl, self.pot_prop_half(), self.kin_prop_step(),
                self.pot_prop_half(), nl]

    # ----------------------------------------------------------------- #
    # per-MD-step kernels
    # ----------------------------------------------------------------- #
    def calc_energy(self) -> KernelCost:
        """Band-energy kernel: fused T+V expectation + one nonlocal GEMM."""
        pts = self.ngrid * self.norb
        f = (3 * 14.0 + 6.0 + 8.0) * pts + gemm_flops(self.nunocc, self.norb, self.ngrid)
        b = 4.0 * self.itemsize * pts + gemm_bytes(
            self.nunocc, self.norb, self.ngrid, self.itemsize
        )
        return KernelCost("calc_energy", f, b)

    def remap_occ(self) -> KernelCost:
        """Occupation remap: one (Norb+Nunocc) x Norb projection GEMM."""
        nbasis = self.norb + self.nunocc
        f = gemm_flops(nbasis, self.norb, self.ngrid) + 3.0 * nbasis * self.norb
        b = gemm_bytes(nbasis, self.norb, self.ngrid, self.itemsize)
        return KernelCost("remap_occ", f, b)

    def md_step_totals(self, nonlocal_variant: str = "blas") -> Dict[str, KernelCost]:
        """Aggregated cost groups of one MD step's worth of LFD work.

        Groups match Table II's rows: ``electron_propagation`` (potential +
        kinetic + nonlinear propagation), ``nonlocal_correction`` (the
        Eq. 7 factors), plus the once-per-MD-step ``calc_energy`` and
        ``remap_occ``.
        """
        kin = self.kin_prop_step()
        pot = self.pot_prop_half()
        nl = (self.nonlocal_half() if nonlocal_variant == "blas"
              else self.nonlocal_half_naive())
        n = float(self.nqd)
        return {
            "electron_propagation": KernelCost(
                "electron_propagation",
                n * (kin.flops + 2.0 * pot.flops),
                n * (kin.bytes_moved + 2.0 * pot.bytes_moved),
            ),
            "nonlocal_correction": KernelCost(
                "nonlocal_correction", 2.0 * n * nl.flops, 2.0 * n * nl.bytes_moved
            ),
            "calc_energy": self.calc_energy(),
            "remap_occ": self.remap_occ(),
        }

    def shadow_handshake_bytes(self) -> int:
        """Per-MD-step CPU<->GPU traffic under shadow dynamics.

        Down: the refreshed local potential and nonlocal reference data
        (scissor shift + occupations); up: occupation numbers.  Crucially
        independent of N_QD and *tiny* next to the resident Psi matrices.
        """
        down = self.ngrid * self.real_itemsize          # v_loc field
        down += (self.norb + self.nunocc) * 8 + 8       # occupations + shift
        up = (self.norb + self.nunocc) * 8              # remapped occupations
        return int(down + up)
