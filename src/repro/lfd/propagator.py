"""The full Suzuki-Trotter quantum-dynamics step (Eq. 6).

One QD sub-step of length dt_QD applies

    psi <- NL(dt/2) . V(dt/2) . T(dt) . V(dt/2) . NL(dt/2) . psi

where NL is the normalized scissor-projected nonlocal half-factor
(Eq. 7), V the local-potential phase and T the pair-split kinetic sweep.
Under shadow dynamics the local potential and the nonlocal reference are
frozen for the whole MD step, so the V phase field is computed once and
re-used for all N_QD sub-steps while only the Peierls phases (the laser)
change; this is the amortization that lets the propagation live entirely
on the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy
from repro.lfd.kin_prop import kinetic_step
from repro.lfd.nonlocal_corr import NonlocalCorrector
from repro.lfd.pot_prop import potential_phase, potential_phase_step
from repro.lfd.vector_gauge import peierls_phases
from repro.lfd.wavefunction import WaveFunctionSet
from repro.obs import trace_span
from repro.resilience.faults import fault_point

if TYPE_CHECKING:  # guards are read-only observers; avoid a runtime cycle
    from repro.resilience.guards import HealthGuard


@dataclass
class PropagatorConfig:
    """Numerical knobs of the QD propagator.

    Attributes
    ----------
    dt:
        QD time step Delta_QD (a.u.; ~1e-3 fs scale, i.e. attoseconds).
    kin_variant:
        Which ``kin_prop`` kernel to use (Algorithms 1-5); None resolves
        from the active :class:`~repro.tuning.profile.TuningProfile`
        (the ``lfd.kin_prop`` tunable).
    block_size:
        Orbital block size for the ``blocked`` variant; None resolves
        from the active tuning profile.
    nl_normalize:
        Apply the Eq. (6) normalization of the nonlocal factor.
    renormalize_every:
        Re-normalize orbital norms every k steps (0 = never).  The
        propagator is unitary to round-off, so this is a guard, not a
        physics knob.
    backend:
        Array-API substrate for the propagation kernels (name or
        :class:`~repro.backend.ArrayBackend` handle); None resolves from
        the active tuning profile, falling back to ``"numpy"`` for
        profiles persisted before the backend dimension existed.  The
        resolved handle pickles by name, so configs cross the
        process-spawn executor boundary intact.
    """

    dt: float = 0.05
    kin_variant: Optional[str] = None
    block_size: Optional[int] = None
    nl_normalize: bool = True
    renormalize_every: int = 0
    order: int = 2
    backend: Union[str, ArrayBackend, None] = None

    def __post_init__(self) -> None:
        from repro.tuning.profile import get_active_profile

        params = get_active_profile().params_for("lfd.kin_prop")
        if self.kin_variant is None:
            self.kin_variant = str(params["variant"])
        if self.block_size is None:
            self.block_size = int(params["block_size"])  # type: ignore[arg-type]
        if self.backend is None:
            self.backend = str(params.get("backend", "numpy"))
        self.backend = get_backend(self.backend)
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")
        if self.block_size < 1:
            raise ValueError("block_size must be positive")
        if self.order not in (2, 4):
            raise ValueError("order must be 2 (Strang) or 4 (Suzuki)")


class QDPropagator:
    """Propagates a domain's orbitals through N_QD quantum sub-steps.

    Parameters
    ----------
    wf:
        The wave-function set to evolve (modified in place).
    vloc:
        Frozen local potential for this MD step.
    config:
        Numerical configuration.
    corrector:
        Optional scissor-projected nonlocal corrector; ``None`` disables
        the nonlocal factors (local-only ablation).
    a_of_t:
        Callable t -> 3-vector A(t) at the domain centre; ``None`` means
        no field.
    guard:
        Optional :class:`~repro.resilience.guards.HealthGuard`; when set,
        the orbitals are health-checked every ``guard.config.check_every``
        sub-steps of :meth:`run` (guards only read state).
    """

    def __init__(
        self,
        wf: WaveFunctionSet,
        vloc: np.ndarray,
        config: PropagatorConfig,
        corrector: Optional[NonlocalCorrector] = None,
        a_of_t: Optional[Callable[[float], Sequence[float]]] = None,
        cap: Optional[np.ndarray] = None,
        guard: Optional["HealthGuard"] = None,
    ) -> None:
        if vloc.shape != wf.grid.shape:
            raise ValueError("potential shape does not match grid")
        self.wf = wf
        self.vloc = np.asarray(vloc, dtype=float)
        self.config = config
        self.corrector = corrector
        self.a_of_t = a_of_t
        self.guard = guard
        self.time = 0.0
        self.steps_taken = 0
        # Shadow-dynamics amortization: the half-step phase is frozen.
        self._half_phase = potential_phase(
            self.vloc, config.dt / 2.0, backend=config.backend
        )
        # Optional complex absorbing potential (see repro.lfd.cap): the
        # damping factor exp(-dt W) is exact for the CAP split term.
        self._cap_factor: Optional[np.ndarray] = None
        if cap is not None:
            cap = np.asarray(cap, dtype=float)
            if cap.shape != wf.grid.shape:
                raise ValueError("CAP shape does not match grid")
            if np.any(cap < 0):
                raise ValueError("CAP must be non-negative (absorbing)")
            self._cap_factor = np.exp(-config.dt * cap)

    @property
    def kinetic_rotation_angle(self) -> float:
        """Largest per-pass pair-rotation angle dt |o| (radians).

        The Suzuki-Trotter splitting is accurate only while this is small;
        as a rule of thumb keep it below ~0.5 (the paper's Delta_QD of a
        few attoseconds on its mesh sits well below that).  Above ~1 the
        propagated state rapidly leaves the adiabatic span and the
        occupation remap loses population.
        """
        angles = []
        for axis in range(3):
            h = self.wf.grid.spacing[axis]
            angles.append(self.config.dt * 0.5 / (h * h))
        return max(angles)

    def set_potential(self, vloc: np.ndarray) -> None:
        """Replace the frozen local potential (start of a new MD step)."""
        if vloc.shape != self.wf.grid.shape:
            raise ValueError("potential shape does not match grid")
        self.vloc = np.asarray(vloc, dtype=float)
        self._half_phase = potential_phase(
            self.vloc, self.config.dt / 2.0, backend=self.config.backend
        )

    def _theta(self, t: float) -> Sequence[float]:
        if self.a_of_t is None:
            return (0.0, 0.0, 0.0)
        return peierls_phases(self.wf.grid, self.a_of_t(t))

    def _strang_substep(self, dt: float, t_start: float) -> None:
        """One second-order (Strang) sub-step of arbitrary signed length."""
        cfg = self.config
        t_mid = t_start + dt / 2.0
        if self.corrector is not None:
            self.corrector.apply(self.wf, dt, normalize=cfg.nl_normalize)
        phase = (
            self._half_phase
            if dt == cfg.dt
            else potential_phase(self.vloc, dt / 2.0, backend=cfg.backend)
        )
        potential_phase_step(
            self.wf, self.vloc, dt / 2.0, phase=phase, backend=cfg.backend
        )
        kinetic_step(
            self.wf,
            dt,
            theta=self._theta(t_mid),
            variant=cfg.kin_variant,
            block_size=cfg.block_size,
            backend=cfg.backend,
        )
        potential_phase_step(
            self.wf, self.vloc, dt / 2.0, phase=phase, backend=cfg.backend
        )
        if self.corrector is not None:
            self.corrector.apply(self.wf, dt, normalize=cfg.nl_normalize)

    #: Suzuki fractal coefficient for the 4th-order composition.
    _SUZUKI_P = 1.0 / (4.0 - 4.0 ** (1.0 / 3.0))

    def step(self) -> None:
        """Advance the orbitals by one QD sub-step (Eq. 6).

        ``order=2`` is the paper's Strang splitting; ``order=4`` composes
        five Strang sub-steps with Suzuki's fractal coefficients
        (p, p, 1-4p, p, p), raising the local error to O(dt^5) at 5x the
        kernel cost -- the classic accuracy/cost ablation for
        split-operator TDDFT.
        """
        cfg = self.config
        dt = cfg.dt
        with trace_span("qd.step", "lfd", order=cfg.order):
            if cfg.order == 2:
                self._strang_substep(dt, self.time)
            else:
                p = self._SUZUKI_P
                t = self.time
                for frac in (p, p, 1.0 - 4.0 * p, p, p):
                    self._strang_substep(frac * dt, t)
                    t += frac * dt
            if self._cap_factor is not None:
                b = get_backend(cfg.backend)
                if b.native:
                    self.wf.psi *= self._cap_factor[..., None].astype(self.wf.dtype)
                else:
                    xp = b.xp
                    damp = xp.asarray(
                        self._cap_factor.astype(self.wf.dtype, copy=False)
                    )
                    psi = xp.asarray(self.wf.psi) * xp.expand_dims(damp, axis=-1)
                    self.wf.psi[...] = to_numpy(psi).astype(
                        self.wf.dtype, copy=False
                    )
        spec = fault_point("lfd.nan")
        if spec is not None:
            orb = int(spec.payload.get("orbital", 0)) % self.wf.norb
            self.wf.psi[..., orb] = np.nan
        self.time += dt
        self.steps_taken += 1
        if cfg.renormalize_every and self.steps_taken % cfg.renormalize_every == 0:
            self.wf.normalize()

    def run(
        self,
        nsteps: int,
        observer: Optional[Callable[["QDPropagator"], None]] = None,
        observe_every: int = 1,
    ) -> None:
        """Run ``nsteps`` QD sub-steps, optionally calling an observer."""
        if nsteps < 0:
            raise ValueError("nsteps must be non-negative")
        with trace_span("qd.run", "lfd", nsteps=nsteps, norb=self.wf.norb):
            for i in range(nsteps):
                self.step()
                if self.guard is not None and (
                    (i + 1) % self.guard.config.check_every == 0 or i + 1 == nsteps
                ):
                    self.guard.check_wavefunction(
                        self.wf, where=f"QD sub-step {self.steps_taken}"
                    )
                if observer is not None and (i + 1) % max(observe_every, 1) == 0:
                    observer(self)
