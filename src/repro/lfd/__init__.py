"""LFD (Local Field Dynamics): the GPU-resident TDDFT subprogram.

This package mirrors the C++/OpenMP LFD subprogram of DC-MESH: real-time
propagation of the Kohn-Sham wave functions of one DC domain under the
Suzuki-Trotter split propagator of Eq. (6), with the stencil kinetic
kernel of Algorithms 1-5, the BLASified nonlocal correction of
Eqs. (7)-(9), energy evaluation and occupation remapping.
"""

from repro.lfd.wavefunction import WaveFunctionSet
from repro.lfd.kin_prop import (
    KIN_PROP_VARIANTS,
    kin_prop_baseline,
    kin_prop_interchange,
    kin_prop_blocked,
    kin_prop_collapsed,
    kinetic_step,
)
from repro.lfd.pot_prop import potential_phase_step
from repro.lfd.nonlocal_corr import (
    nonlocal_correction_naive,
    nonlocal_correction_blas,
    NonlocalCorrector,
)
from repro.lfd.propagator import QDPropagator, PropagatorConfig
from repro.lfd.energy import calc_energy, band_energies
from repro.lfd.occupations import remap_occ
from repro.lfd.observables import (
    density,
    dipole_moment,
    norms,
    current_expectation,
    kinetic_gauge_gradient,
    absorbed_power,
)
from repro.lfd.cap import cos2_absorber, ionization_yield

__all__ = [
    "WaveFunctionSet",
    "KIN_PROP_VARIANTS",
    "kin_prop_baseline",
    "kin_prop_interchange",
    "kin_prop_blocked",
    "kin_prop_collapsed",
    "kinetic_step",
    "potential_phase_step",
    "nonlocal_correction_naive",
    "nonlocal_correction_blas",
    "NonlocalCorrector",
    "QDPropagator",
    "PropagatorConfig",
    "calc_energy",
    "band_energies",
    "remap_occ",
    "density",
    "dipole_moment",
    "norms",
    "current_expectation",
    "kinetic_gauge_gradient",
    "absorbed_power",
    "cos2_absorber",
    "ionization_yield",
]
