"""Velocity-gauge coupling of the electromagnetic vector potential.

Within a DC domain the dipole approximation holds and the vector potential
``A_{X(alpha)}(t)`` of Eq. (2) is spatially uniform.  Minimal coupling
``(p + e A / c)^2 / 2m`` is realized on the finite-difference mesh through
Peierls phases on the stencil hoppings: a bond of length ``h_d`` along
direction ``d`` acquires the phase

    theta_d = e * h_d * A_d / (hbar c).

This reproduces the kinetic-momentum operator to the same order as the
stencil itself and keeps the propagator exactly unitary.  The uniform
``A^2/2mc^2`` term contributes only a global, orbital-independent phase
and is dropped (it cancels in every observable).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.constants import C_LIGHT, E_CHARGE, HBAR
from repro.grids.grid import Grid3D


def peierls_phases(grid: Grid3D, a_field: Sequence[float]) -> Tuple[float, float, float]:
    """Per-axis Peierls phases theta_d = e h_d A_d / (hbar c)."""
    a_field = np.asarray(a_field, dtype=float)
    if a_field.shape != (3,):
        raise ValueError("vector potential must be a 3-vector")
    return tuple(
        float(E_CHARGE * grid.spacing[d] * a_field[d] / (HBAR * C_LIGHT))
        for d in range(3)
    )


def field_from_vector_potential(a_prev: np.ndarray, a_next: np.ndarray, dt: float) -> np.ndarray:
    """Electric field E = -(1/c) dA/dt by central difference (diagnostics)."""
    if dt <= 0.0:
        raise ValueError("dt must be positive")
    return -(np.asarray(a_next, dtype=float) - np.asarray(a_prev, dtype=float)) / (
        C_LIGHT * dt
    )
