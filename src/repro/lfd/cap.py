"""Complex absorbing potentials (CAP) for strong-field ionization.

Attosecond-physics runs (the paper's motivating application) drive
electrons hard enough to ionize; on a periodic mesh the outgoing flux
would wrap around and re-collide unphysically.  A CAP -- a negative
imaginary potential ramped up near selected cell faces -- absorbs the
outgoing amplitude instead, and the norm loss *is* the ionization yield.

The propagator applies the CAP as a pointwise damping factor
exp(-dt W(r)) once per QD step (exact for the CAP term of the split).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy
from repro.grids.grid import Grid3D


def cos2_absorber(
    grid: Grid3D,
    width_points: int,
    strength: float,
    axes: Sequence[int] = (0, 1, 2),
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """A cos^2-ramped absorbing profile W(r) >= 0 near both faces.

    Parameters
    ----------
    grid:
        The domain grid.
    width_points:
        Ramp thickness in mesh points on each face (must leave an
        untouched interior).
    strength:
        Peak absorption rate W_max (1/a.u. time).
    axes:
        Which Cartesian axes carry absorbers.
    backend:
        Array-API substrate; ``None``/``"numpy"`` keeps the pre-refactor
        native path bit-identically.
    """
    if width_points < 1:
        raise ValueError("width_points must be at least 1")
    if strength < 0:
        raise ValueError("strength must be non-negative")
    b = get_backend(backend)
    if b.native:
        w = np.zeros(grid.shape)
        for axis in axes:
            if axis not in (0, 1, 2):
                raise ValueError("axes must be within 0..2")
            n = grid.shape[axis]
            if 2 * width_points >= n:
                raise ValueError(
                    f"absorber width {width_points} leaves no interior on axis "
                    f"{axis} (n = {n})"
                )
            profile = np.zeros(n)
            ramp = np.sin(
                0.5 * np.pi * (np.arange(width_points) + 1) / width_points
            ) ** 2
            profile[:width_points] = ramp[::-1]
            profile[n - width_points:] = ramp
            shape = [1, 1, 1]
            shape[axis] = n
            w = np.maximum(w, strength * profile.reshape(shape))
        return w
    xp = b.xp
    w = xp.zeros(grid.shape)
    for axis in axes:
        if axis not in (0, 1, 2):
            raise ValueError("axes must be within 0..2")
        n = grid.shape[axis]
        if 2 * width_points >= n:
            raise ValueError(
                f"absorber width {width_points} leaves no interior on axis "
                f"{axis} (n = {n})"
            )
        profile = xp.zeros((n,))
        ramp = xp.sin(
            0.5 * xp.pi * (xp.arange(width_points) + 1) / width_points
        ) ** 2
        profile[:width_points] = xp.flip(ramp)
        profile[n - width_points:] = ramp
        shape = [1, 1, 1]
        shape[axis] = n
        w = xp.maximum(w, strength * xp.reshape(profile, tuple(shape)))
    return to_numpy(w)


def ionization_yield(initial_norms: np.ndarray, wf, occupations) -> float:
    """Total absorbed (ionized) electron number.

    yield = sum_s f_s (n_s(0)^2 - n_s(t)^2) with n_s the orbital norms.
    """
    occupations = np.asarray(occupations, dtype=float)
    initial_norms = np.asarray(initial_norms, dtype=float)
    now = wf.norms()
    if initial_norms.shape != now.shape or occupations.shape != now.shape:
        raise ValueError("norms/occupations must align with the orbital set")
    return float(np.dot(occupations, initial_norms ** 2 - now ** 2))
