"""Kleinman-Bylander separable nonlocal projectors.

The nonlocal pseudopotential is the separable sum

    v_nl = sum_{I, c} |chi_{I c}> E_{I c} <chi_{I c}|

with Gaussian radial projectors: an s channel chi ~ exp(-r^2/2w^2) and,
for species with a second KB energy, the three p channels
chi ~ (x, y, z) exp(-r^2/2w^2).  Projectors are grid-normalized.  The
application is intrinsically BLAS-shaped -- a (Ngrid x Nproj) projector
matrix contracted against the orbitals -- which is exactly why the
paper's nonlocal bottleneck BLASifies so well (Section III-D).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.grids.grid import Grid3D
from repro.lfd.wavefunction import WaveFunctionSet
from repro.pseudo.elements import PseudoSpecies


class KBProjectorSet:
    """All KB projectors of an atomic configuration on one grid.

    Attributes
    ----------
    projectors:
        Real (Ngrid x Nproj) matrix P of normalized projector fields.
    energies:
        Channel strengths E_c (length Nproj).
    """

    def __init__(
        self,
        grid: Grid3D,
        positions: np.ndarray,
        species: Sequence[PseudoSpecies],
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must have shape (natoms, 3)")
        if len(species) != positions.shape[0]:
            raise ValueError("need one species per atom")
        self.grid = grid
        fields: List[np.ndarray] = []
        energies: List[float] = []
        owners: List[int] = []
        xs, ys, zs = grid.meshgrid()
        lx, ly, lz = grid.lengths
        for idx, (r0, sp) in enumerate(zip(positions, species)):
            if not sp.kb_energies:
                continue
            dx = xs - r0[0]
            dy = ys - r0[1]
            dz = zs - r0[2]
            dx -= lx * np.round(dx / lx)
            dy -= ly * np.round(dy / ly)
            dz -= lz * np.round(dz / lz)
            r2 = dx * dx + dy * dy + dz * dz
            gauss = np.exp(-r2 / (2.0 * sp.kb_width ** 2))
            # s channel
            fields.append(gauss)
            energies.append(sp.kb_energies[0])
            owners.append(idx)
            # p channels
            if len(sp.kb_energies) > 1:
                for comp in (dx, dy, dz):
                    fields.append(comp * gauss)
                    energies.append(sp.kb_energies[1])
                    owners.append(idx)
        if fields:
            mat = np.stack([f.ravel() for f in fields], axis=1)
            norms = np.sqrt(np.einsum("gp,gp->p", mat, mat) * grid.dvol)
            norms[norms == 0.0] = 1.0
            self.projectors = mat / norms
        else:
            self.projectors = np.zeros((grid.npoints, 0))
        self.energies = np.asarray(energies, dtype=float)
        self.owners = np.asarray(owners, dtype=int)

    @property
    def nproj(self) -> int:
        return self.projectors.shape[1]

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """v_nl |psi> for an SoA orbital array (returns a new array)."""
        shape = psi.shape
        flat = psi.reshape(self.grid.npoints, -1)
        coeff = (self.projectors.T @ flat) * self.grid.dvol      # (Nproj, Norb)
        out = self.projectors @ (self.energies[:, None] * coeff)
        return out.reshape(shape)

    def apply_wf(self, wf: WaveFunctionSet) -> np.ndarray:
        """v_nl applied to a WaveFunctionSet (SoA result)."""
        return self.apply(wf.psi.astype(np.complex128, copy=False))

    def expectation(self, wf: WaveFunctionSet) -> np.ndarray:
        """Per-orbital <psi_s| v_nl |psi_s> (real)."""
        flat = wf.as_matrix().astype(np.complex128, copy=False)
        coeff = (self.projectors.T @ flat) * self.grid.dvol
        return np.real(np.einsum("ps,p,ps->s", coeff.conj(), self.energies, coeff))

    def energy(self, wf: WaveFunctionSet, occupations: np.ndarray) -> float:
        """Total nonlocal energy sum_s f_s <psi_s|v_nl|psi_s>."""
        occupations = np.asarray(occupations, dtype=float)
        return float(np.dot(occupations, self.expectation(wf)))
