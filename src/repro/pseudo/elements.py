"""Pseudo-atom parameter sets for the species used in this reproduction.

The paper's production runs use norm-conserving pseudopotentials for
PbTiO3.  This reproduction uses a soft, analytically differentiable model
of the same structure: a Gaussian-smeared ionic point charge (the local
long-range part), a repulsive Gaussian core (the local short-range part)
and Gaussian Kleinman-Bylander projectors (the separable nonlocal part).
Parameters are physically plausible (valences, relative core sizes) but
*not* quantitatively transferable -- DESIGN.md records this substitution.
All quantities are in Hartree atomic units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.constants import ATOMIC_MASS, VALENCE_CHARGE


@dataclass(frozen=True)
class PseudoSpecies:
    """One pseudo-atom species.

    Attributes
    ----------
    symbol:
        Chemical symbol.
    zval:
        Valence charge (the smeared ionic charge).
    mass:
        Atomic mass in electron masses.
    gauss_width:
        Width (bohr) of the Gaussian ionic charge distribution.
    core_strength:
        Height (Ha) of the repulsive Gaussian core potential.
    core_width:
        Width (bohr) of the repulsive core.
    kb_energies:
        Kleinman-Bylander channel strengths (Ha), one per projector
        channel (s, then the three p components if present).
    kb_width:
        Radial width (bohr) of the Gaussian KB projectors.
    """

    symbol: str
    zval: float
    mass: float
    gauss_width: float
    core_strength: float
    core_width: float
    kb_energies: Tuple[float, ...] = ()
    kb_width: float = 1.0

    def __post_init__(self) -> None:
        if self.zval <= 0 or self.mass <= 0:
            raise ValueError("zval and mass must be positive")
        if self.gauss_width <= 0 or self.core_width <= 0 or self.kb_width <= 0:
            raise ValueError("widths must be positive")


SPECIES: Dict[str, PseudoSpecies] = {
    "Pb": PseudoSpecies(
        symbol="Pb",
        zval=VALENCE_CHARGE["Pb"],
        mass=ATOMIC_MASS["Pb"],
        gauss_width=1.10,
        core_strength=6.0,
        core_width=1.35,
        kb_energies=(0.9, 0.35),
        kb_width=1.2,
    ),
    "Ti": PseudoSpecies(
        symbol="Ti",
        zval=VALENCE_CHARGE["Ti"],
        mass=ATOMIC_MASS["Ti"],
        gauss_width=0.90,
        core_strength=8.0,
        core_width=1.05,
        kb_energies=(1.1, 0.45),
        kb_width=1.0,
    ),
    "O": PseudoSpecies(
        symbol="O",
        zval=VALENCE_CHARGE["O"],
        mass=ATOMIC_MASS["O"],
        gauss_width=0.55,
        core_strength=12.0,
        core_width=0.55,
        kb_energies=(1.4,),
        kb_width=0.7,
    ),
    "H": PseudoSpecies(
        symbol="H",
        zval=VALENCE_CHARGE["H"],
        mass=ATOMIC_MASS["H"],
        gauss_width=0.45,
        core_strength=0.0,
        core_width=0.5,
        kb_energies=(),
        kb_width=0.6,
    ),
}


def get_species(symbol: str) -> PseudoSpecies:
    """Look up a species; raises KeyError with the known set on miss."""
    try:
        return SPECIES[symbol]
    except KeyError:
        raise KeyError(
            f"unknown species {symbol!r}; available: {sorted(SPECIES)}"
        ) from None
