"""Local pseudopotential pieces: smeared ionic charges and core repulsion.

The long-range local pseudopotential is represented through a Gaussian
ionic charge density; the total electrostatic potential is then obtained
from one periodic Poisson solve of (rho_ion - rho_electron), which keeps
neutral periodic systems divergence-free and reuses the O(N) multigrid.
The short-range part is a repulsive Gaussian core potential per atom.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.grids.grid import Grid3D
from repro.pseudo.elements import PseudoSpecies


def _min_image_r2(grid: Grid3D, center: Sequence[float]) -> np.ndarray:
    """Squared minimum-image distance field from a point (periodic)."""
    xs, ys, zs = grid.meshgrid()
    lx, ly, lz = grid.lengths
    dx = xs - center[0]
    dy = ys - center[1]
    dz = zs - center[2]
    dx -= lx * np.round(dx / lx)
    dy -= ly * np.round(dy / ly)
    dz -= lz * np.round(dz / lz)
    return dx * dx + dy * dy + dz * dz


def gaussian_ion_density(
    grid: Grid3D, center: Sequence[float], zval: float, width: float
) -> np.ndarray:
    """Normalized Gaussian charge density of one ion (integrates to zval).

    Normalization is enforced *numerically* on the grid so that total
    charge neutrality holds to machine precision regardless of how well
    the Gaussian is resolved.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    r2 = _min_image_r2(grid, center)
    rho = np.exp(-r2 / (2.0 * width * width))
    total = rho.sum() * grid.dvol
    if total <= 0:
        raise RuntimeError("Gaussian charge integrates to zero on this grid")
    return rho * (zval / total)


def ionic_density(
    grid: Grid3D,
    positions: np.ndarray,
    species: Sequence[PseudoSpecies],
) -> np.ndarray:
    """Total ionic (positive) charge density of all atoms."""
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (natoms, 3)")
    if len(species) != positions.shape[0]:
        raise ValueError("need one species per atom")
    rho = grid.zeros()
    for r, sp in zip(positions, species):
        rho += gaussian_ion_density(grid, r, sp.zval, sp.gauss_width)
    return rho


def core_repulsion_potential(
    grid: Grid3D,
    positions: np.ndarray,
    species: Sequence[PseudoSpecies],
) -> np.ndarray:
    """Short-range repulsive core potential felt by the electrons."""
    positions = np.asarray(positions, dtype=float)
    v = grid.zeros()
    for r, sp in zip(positions, species):
        if sp.core_strength == 0.0:
            continue
        r2 = _min_image_r2(grid, r)
        v += sp.core_strength * np.exp(-r2 / (2.0 * sp.core_width ** 2))
    return v


def core_repulsion_pair_energy(
    grid: Grid3D,
    positions: np.ndarray,
    species: Sequence[PseudoSpecies],
    strength: float = 25.0,
) -> float:
    """Ion-ion short-range repulsion (Gaussian pair potential, min. image).

    Prevents unphysical core overlap in MD; the pair width is the sum of
    the two core widths.
    """
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    e = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            dr = grid.minimum_image(positions[i] - positions[j])
            r2 = float(np.dot(dr, dr))
            w = species[i].core_width + species[j].core_width
            e += strength * np.exp(-r2 / (2.0 * w * w))
    return e


def core_repulsion_pair_forces(
    grid: Grid3D,
    positions: np.ndarray,
    species: Sequence[PseudoSpecies],
    strength: float = 25.0,
) -> np.ndarray:
    """Analytic forces of :func:`core_repulsion_pair_energy`."""
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    f = np.zeros((n, 3))
    for i in range(n):
        for j in range(i + 1, n):
            dr = grid.minimum_image(positions[i] - positions[j])
            r2 = float(np.dot(dr, dr))
            w = species[i].core_width + species[j].core_width
            pref = strength * np.exp(-r2 / (2.0 * w * w)) / (w * w)
            f[i] += pref * dr
            f[j] -= pref * dr
    return f


def gaussian_ion_density_fourier(
    grid: Grid3D, center: Sequence[float], zval: float, width: float
) -> np.ndarray:
    """Periodic Gaussian ionic density built in Fourier space.

    rho(G) = Z exp(-|G|^2 w^2 / 2) exp(-i G . R): translation by R is
    exact (all periodic images included), so grid forces derived from
    this density are analytically consistent with the grid energy --
    unlike the minimum-image real-space build, whose numerical
    normalization varies with sub-grid position.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    rho_k = ion_structure_fourier(grid, np.asarray([center], dtype=float),
                                  [zval], [width])
    rho = np.real(np.fft.ifftn(rho_k)) / grid.dvol
    return rho


def ion_structure_fourier(
    grid: Grid3D,
    positions: np.ndarray,
    zvals: Sequence[float],
    widths: Sequence[float],
) -> np.ndarray:
    """Fourier coefficients (numpy fftn convention) of the total ionic density.

    Returns ``rho_k`` such that ``ifftn(rho_k).real / dvol`` is the
    real-space density; i.e. rho_k = fftn(rho) * dvol.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (natoms, 3)")
    if len(zvals) != positions.shape[0] or len(widths) != positions.shape[0]:
        raise ValueError("need one zval and width per atom")
    kvecs = []
    nyquist_mask = np.zeros(grid.shape, dtype=bool)
    for axis, (n, h) in enumerate(zip(grid.shape, grid.spacing)):
        kvecs.append(2.0 * np.pi * np.fft.fftfreq(n, d=h))
        if n % 2 == 0:
            # The Nyquist plane is its own conjugate partner; odd spectral
            # derivatives are ill-defined there, so the ion build is kept
            # band-limited below it (forces stay exactly energy-consistent).
            sl = [slice(None)] * 3
            sl[axis] = n // 2
            nyquist_mask[tuple(sl)] = True
    kx, ky, kz = np.meshgrid(*kvecs, indexing="ij")
    k2 = kx * kx + ky * ky + kz * kz
    rho_k = np.zeros(grid.shape, dtype=np.complex128)
    origin = np.asarray(grid.origin)
    for r, z, w in zip(positions, zvals, widths):
        dr = np.asarray(r, dtype=float) - origin
        phase = np.exp(-1j * (kx * dr[0] + ky * dr[1] + kz * dr[2]))
        rho_k += z * np.exp(-0.5 * k2 * w * w) * phase
    rho_k[nyquist_mask] = 0.0
    return rho_k


def ionic_density_fourier(
    grid: Grid3D,
    positions: np.ndarray,
    species: Sequence["PseudoSpecies"],
) -> np.ndarray:
    """Total ionic density via the Fourier build (translation-exact)."""
    positions = np.asarray(positions, dtype=float)
    if len(species) != positions.shape[0]:
        raise ValueError("need one species per atom")
    rho_k = ion_structure_fourier(
        grid, positions,
        [sp.zval for sp in species], [sp.gauss_width for sp in species],
    )
    return np.real(np.fft.ifftn(rho_k)) / grid.dvol
