"""Pseudopotentials: Gaussian local parts and Kleinman-Bylander projectors."""

from repro.pseudo.elements import PseudoSpecies, SPECIES, get_species
from repro.pseudo.local import (
    gaussian_ion_density,
    ionic_density,
    core_repulsion_potential,
    core_repulsion_pair_energy,
)
from repro.pseudo.kb import KBProjectorSet

__all__ = [
    "PseudoSpecies",
    "SPECIES",
    "get_species",
    "gaussian_ion_density",
    "ionic_density",
    "core_repulsion_potential",
    "core_repulsion_pair_energy",
    "KBProjectorSet",
]
