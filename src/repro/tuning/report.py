"""Human- and machine-readable reports of a tuning session.

``repro tune`` prints :func:`format_report` and optionally writes
:func:`write_report_json` (schema ``repro-tuning-report/1``) -- the
artifact the CI ``tune-smoke`` job uploads.  The text report states, per
tunable, whether the winner came from cache or search, whether it is
non-default, its probe speedup over the defaults and how many candidates
the correctness gate rejected -- so "defaults are already optimal" is a
visible, positive result, never silence.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.tuning.session import SessionResult


def format_report(result: SessionResult) -> str:
    """Multi-line text summary of one tuning session."""
    lines: List[str] = []
    lines.append("tuning report")
    lines.append(f"  machine fingerprint : {result.machine}")
    lines.append(f"  cache               : {result.cache_path}")
    lines.append(f"  cache hits          : {result.cache_hits}")
    lines.append(f"  tuned fresh         : {result.tuned}")
    lines.append(f"  trials executed     : {result.total_trials}")
    for rec in result.records:
        lines.append(f"  {rec.tunable_id}:")
        lines.append(f"    action     : {rec.action}")
        params = ", ".join(f"{k}={v}" for k, v in sorted(rec.params.items()))
        lines.append(f"    winner     : {params}")
        if rec.non_default:
            lines.append(f"    speedup    : {rec.speedup:.3f}x over defaults")
        else:
            lines.append("    speedup    : defaults already optimal "
                         f"(best {rec.speedup:.3f}x)")
        if rec.outcome is not None:
            lines.append(f"    strategy   : {rec.outcome.strategy}")
            lines.append(f"    trials     : {rec.outcome.measured_trials} "
                         f"measured, {rec.outcome.gate_rejected} "
                         f"gate-rejected (tol {rec.outcome.gate_tol:g})")
    return "\n".join(lines)


def write_report_json(result: SessionResult, path: Path) -> Path:
    """Write the machine-readable report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
