"""The Tunable registry: named parameter spaces over real hot paths.

A :class:`Tunable` packages everything the search engine needs to tune
one hot path *without knowing anything about it*: the declared
:class:`~repro.tuning.spaces.ParamSpace`, the default (seed-state)
parameters, a seeded probe-problem factory, a trial runner that applies
one candidate configuration to a fresh probe and returns its output
array, and the list of source modules whose content fingerprints the
code path (so a kernel edit invalidates cached winners).

The registry is a plain ordered mapping; :func:`default_registry`
returns the process-wide instance populated with the builtin tunables of
:mod:`repro.tuning.builtin` on first use.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tuning.spaces import Params, ParamSpace


@dataclass(frozen=True)
class Tunable:
    """One autotunable hot path.

    Attributes
    ----------
    tunable_id:
        Stable dotted identifier (``"lfd.kin_prop"``); the cache key and
        the :class:`~repro.tuning.profile.TuningProfile` lookup name.
    space:
        The declared parameter space.
    defaults:
        The untuned parameter point (must lie inside ``space``); always
        included among the search candidates so a winner can never be
        slower than the seed-state configuration on the probe.
    description:
        One line for reports.
    paper_ref:
        The paper counterpart (Algorithms 1-5 / Table I rows) this
        parameter space reproduces, for the EXPERIMENTS.md mapping.
    source_modules:
        Dotted module names whose source content forms the code part of
        the cache fingerprint.
    make_probe:
        Zero-argument factory building the fixed, seeded probe problem.
        Called once per tuning run; the same probe object is passed to
        every trial.
    run_trial:
        ``(probe, params) -> np.ndarray`` -- apply one candidate to a
        fresh copy of the probe state and return the output array the
        correctness gate compares.  Must not mutate ``probe``.
    prefilter:
        Optional ``params -> Optional[str]``: a non-None reason skips
        the candidate without measuring it (used to collapse degenerate
        points, e.g. ``block_size`` when the variant is not blocked).
    """

    tunable_id: str
    space: ParamSpace
    defaults: Params
    description: str
    paper_ref: str
    source_modules: Tuple[str, ...]
    make_probe: Callable[[], Any]
    run_trial: Callable[[Any, Params], np.ndarray]
    prefilter: Optional[Callable[[Params], Optional[str]]] = None

    def __post_init__(self) -> None:
        if not self.tunable_id:
            raise ValueError("tunable_id must be non-empty")
        # Validates eagerly: a registry with out-of-space defaults is a
        # configuration bug, not something to discover mid-search.
        self.space.validate(self.defaults)

    def canonical_defaults(self) -> Params:
        """The default point, validated and copied."""
        return self.space.validate(self.defaults)

    def skip_reason(self, params: Params) -> Optional[str]:
        """Why this candidate need not be measured (None = measure it)."""
        if self.prefilter is None:
            return None
        return self.prefilter(params)

    def source_texts(self) -> List[Tuple[str, str]]:
        """(module name, source text) of every fingerprinted module."""
        out: List[Tuple[str, str]] = []
        for name in self.source_modules:
            mod = importlib.import_module(name)
            path = getattr(mod, "__file__", None)
            if path is None:  # pragma: no cover - builtin/namespace module
                out.append((name, ""))
                continue
            with open(path, "r", encoding="utf-8") as fh:
                out.append((name, fh.read()))
        return out


@dataclass
class TunableRegistry:
    """Ordered collection of tunables, keyed by id."""

    _tunables: Dict[str, Tunable] = field(default_factory=dict)

    def register(self, tunable: Tunable) -> Tunable:
        """Add one tunable (duplicate ids are an error)."""
        if tunable.tunable_id in self._tunables:
            raise ValueError(f"tunable {tunable.tunable_id!r} already registered")
        self._tunables[tunable.tunable_id] = tunable
        return tunable

    def get(self, tunable_id: str) -> Tunable:
        """Look one tunable up by id (KeyError with the known ids)."""
        try:
            return self._tunables[tunable_id]
        except KeyError:
            raise KeyError(
                f"unknown tunable {tunable_id!r}; known: "
                f"{', '.join(self.ids()) or '(none)'}"
            ) from None

    def ids(self) -> Tuple[str, ...]:
        """All registered ids, in registration order."""
        return tuple(self._tunables)

    def __iter__(self) -> Iterator[Tunable]:
        return iter(self._tunables.values())

    def __len__(self) -> int:
        return len(self._tunables)

    def __contains__(self, tunable_id: object) -> bool:
        return tunable_id in self._tunables


_DEFAULT: Optional[TunableRegistry] = None


def default_registry() -> TunableRegistry:
    """The process-wide registry, populated with the builtin tunables."""
    global _DEFAULT
    if _DEFAULT is None:
        from repro.tuning.builtin import build_registry

        _DEFAULT = build_registry()
    return _DEFAULT
