"""Robust trial measurement: warmup, repeats, median/MAD aggregation.

Autotuning decisions are only as good as the timings behind them, so
every candidate is measured the same way: ``warmup`` unmeasured calls
(cache/JIT/page-fault settling -- the first call also produces the
output the correctness gate inspects), then ``repeats`` timed calls
aggregated by **median** and **median absolute deviation** rather than
mean/stddev, so one preempted repeat cannot crown the wrong winner.
Every timed call opens a ``tuning.trial`` span on the process tracer and
charges a call counter, so a traced ``repro-mesh tune`` run shows the
full trial timeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.obs import trace_span


@dataclass(frozen=True)
class TrialMeasurement:
    """Aggregated timing of one candidate's measured repeats."""

    median_s: float
    mad_s: float
    repeats: int
    times_s: Tuple[float, ...]

    @property
    def noise_ratio(self) -> float:
        """MAD relative to the median (0 for a perfectly quiet trial)."""
        if self.median_s <= 0.0:
            return float("inf")
        return self.mad_s / self.median_s

    def to_dict(self) -> dict:
        """JSON-serializable form (times kept for report drill-down)."""
        return {
            "median_s": self.median_s,
            "mad_s": self.mad_s,
            "repeats": self.repeats,
            "times_s": list(self.times_s),
        }


def aggregate(times_s: Tuple[float, ...]) -> TrialMeasurement:
    """Median/MAD aggregation of raw repeat wall times."""
    if not times_s:
        raise ValueError("cannot aggregate zero repeats")
    arr = np.asarray(times_s, dtype=float)
    median = float(np.median(arr))
    mad = float(np.median(np.abs(arr - median)))
    return TrialMeasurement(
        median_s=median, mad_s=mad, repeats=len(times_s),
        times_s=tuple(float(t) for t in arr),
    )


def measure_callable(
    fn: Callable[[], Any],
    warmup: int = 1,
    repeats: int = 3,
    label: str = "trial",
    clock: Callable[[], float] = time.perf_counter,
) -> Tuple[TrialMeasurement, Any]:
    """Measure ``fn`` robustly; returns (measurement, first output).

    The *first* call (warmup when ``warmup >= 1``, else the first timed
    repeat) supplies the returned output -- the correctness gate uses it,
    so gating never costs an extra kernel invocation.  ``clock`` is
    injectable for deterministic tests.
    """
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    first_out: Optional[Any] = None
    have_out = False
    for i in range(warmup):
        out = fn()
        if not have_out:
            first_out, have_out = out, True
    times = []
    for i in range(repeats):
        with trace_span("tuning.trial", "tuning", label=label, repeat=i):
            t0 = clock()
            out = fn()
            times.append(clock() - t0)
        if not have_out:
            first_out, have_out = out, True
    return aggregate(tuple(times)), first_out
