"""repro.tuning -- correctness-gated autotuning with a persisted cache.

The subsystem in one sentence: a :class:`~repro.tuning.registry.Tunable`
declares a parameter space over a real hot path, a seeded search times
every gated candidate on a fixed probe, the winner is persisted in a
machine/code-fingerprinted cache, and kernels consume the result through
the single :class:`~repro.tuning.profile.TuningProfile` choke point --
with a 1e-12 correctness gate guaranteeing tuned physics equals untuned
physics.

Import discipline: kernels import only :mod:`repro.tuning.profile`
(which reaches no further than :mod:`repro.tuning.defaults`); the heavy
machinery here imports the kernels lazily.  This module re-exports the
public surface.
"""

from repro.tuning.cache import (
    CacheEntry,
    TuningCache,
    code_fingerprint,
    machine_fingerprint,
)
from repro.tuning.defaults import DEFAULT_PARAMS, TUNABLE_IDS, default_params
from repro.tuning.gate import GATE_TOL, GateVerdict, check, correctness_error
from repro.tuning.measure import TrialMeasurement, aggregate, measure_callable
from repro.tuning.profile import (
    TuningProfile,
    active_profile,
    get_active_profile,
    resolve,
    set_active_profile,
)
from repro.tuning.registry import Tunable, TunableRegistry, default_registry
from repro.tuning.report import format_report, write_report_json
from repro.tuning.search import TrialRecord, TuningOutcome, tune
from repro.tuning.session import SessionRecord, SessionResult, TuningSession
from repro.tuning.spaces import Choice, IntRange, ParamSpace

__all__ = [
    "CacheEntry",
    "Choice",
    "DEFAULT_PARAMS",
    "GATE_TOL",
    "GateVerdict",
    "IntRange",
    "ParamSpace",
    "SessionRecord",
    "SessionResult",
    "TrialMeasurement",
    "TrialRecord",
    "Tunable",
    "TunableRegistry",
    "TuningCache",
    "TuningOutcome",
    "TuningProfile",
    "TuningSession",
    "TUNABLE_IDS",
    "active_profile",
    "aggregate",
    "check",
    "code_fingerprint",
    "correctness_error",
    "default_params",
    "default_registry",
    "format_report",
    "get_active_profile",
    "machine_fingerprint",
    "measure_callable",
    "resolve",
    "set_active_profile",
    "tune",
    "write_report_json",
]
