"""TuningProfile: the single consumption point for tuned parameters.

Kernels never read the cache, the registry or the search engine -- they
ask the *active profile* for their parameters.  A profile is a plain
``tunable_id -> params`` mapping that always falls back to the built-in
defaults of :mod:`repro.tuning.defaults`, so an untuned process behaves
bit-for-bit like the seed state.

The active profile is process-global (default: the defaults profile)
and swappable either permanently (:func:`set_active_profile`, what the
CLI does after ``--tuning-profile``) or scoped
(:func:`active_profile` context manager, what tests use).  Because this
module only imports :mod:`repro.tuning.defaults`, kernels can import it
without dragging in the search machinery -- and without import cycles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional
from contextlib import contextmanager

from repro.tuning.defaults import DEFAULT_PARAMS, default_params

Params = Dict[str, object]


class TuningProfile:
    """Resolved parameters for every tunable, defaults-backed."""

    def __init__(self, overrides: Optional[Mapping[str, Mapping[str, object]]] = None,
                 source: str = "defaults") -> None:
        self.source = source
        self._overrides: Dict[str, Params] = {}
        for tid, params in (overrides or {}).items():
            if tid not in DEFAULT_PARAMS:
                raise KeyError(
                    f"unknown tunable {tid!r} in profile; known: "
                    f"{', '.join(DEFAULT_PARAMS)}"
                )
            merged = dict(default_params(tid))
            unknown = set(params) - set(merged)
            if unknown:
                raise ValueError(
                    f"profile for {tid!r} has unknown parameter(s) "
                    f"{sorted(unknown)}; expected a subset of "
                    f"{sorted(merged)}"
                )
            merged.update(params)
            self._overrides[tid] = merged

    @classmethod
    def default(cls) -> "TuningProfile":
        """The untuned profile (pure defaults, matches the seed state)."""
        return cls(source="defaults")

    @classmethod
    def from_cache(cls, cache: "object", registry: "object",
                   source: Optional[str] = None) -> "TuningProfile":
        """Build a profile from every valid cache entry.

        Tunables without a (still-valid) cache entry resolve to their
        defaults; nothing is re-tuned here.  ``cache`` is a
        :class:`~repro.tuning.cache.TuningCache`, ``registry`` a
        :class:`~repro.tuning.registry.TunableRegistry` (typed loosely
        to keep this module import-light).
        """
        overrides: Dict[str, Params] = {}
        for tunable in registry:  # type: ignore[attr-defined]
            entry = cache.get(tunable)  # type: ignore[attr-defined]
            if entry is not None:
                overrides[tunable.tunable_id] = dict(entry.params)
        src = source or f"cache:{getattr(cache, 'path', '?')}"
        return cls(overrides, source=src)

    def params_for(self, tunable_id: str) -> Params:
        """Full parameter dict for one tunable (defaults merged in)."""
        if tunable_id in self._overrides:
            return dict(self._overrides[tunable_id])
        return default_params(tunable_id)

    def resolve(self, tunable_id: str, name: str) -> object:
        """One parameter value for one tunable."""
        params = self.params_for(tunable_id)
        if name not in params:
            raise KeyError(
                f"tunable {tunable_id!r} has no parameter {name!r}; "
                f"has: {', '.join(sorted(params))}"
            )
        return params[name]

    @property
    def tuned_ids(self) -> tuple:
        """Ids carrying non-default overrides (sorted)."""
        tuned = []
        for tid, params in self._overrides.items():
            if params != default_params(tid):
                tuned.append(tid)
        return tuple(sorted(tuned))

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoints embed this)."""
        return {
            "source": self.source,
            "overrides": {tid: dict(p) for tid, p in
                          sorted(self._overrides.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuningProfile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            overrides=data.get("overrides") or {},  # type: ignore[arg-type]
            source=str(data.get("source", "restored")),
        )

    def save(self, path: Path) -> None:
        """Write the profile as JSON (for --tuning-profile files)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: Path) -> "TuningProfile":
        """Read a profile written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        profile = cls.from_dict(data)
        if profile.source in ("defaults", "restored"):
            profile.source = f"file:{path}"
        return profile

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TuningProfile):
            return NotImplemented
        return self.to_dict()["overrides"] == other.to_dict()["overrides"]

    def __repr__(self) -> str:
        tuned = self.tuned_ids
        return (f"TuningProfile(source={self.source!r}, "
                f"tuned={list(tuned) or 'none'})")


_ACTIVE: TuningProfile = TuningProfile.default()


def get_active_profile() -> TuningProfile:
    """The process-global profile kernels resolve parameters from."""
    return _ACTIVE


def set_active_profile(profile: TuningProfile) -> TuningProfile:
    """Install a new global profile; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profile
    return previous


@contextmanager
def active_profile(profile: TuningProfile) -> Iterator[TuningProfile]:
    """Scoped profile swap (tests, nested tuned sections)."""
    previous = set_active_profile(profile)
    try:
        yield profile
    finally:
        set_active_profile(previous)


def resolve(tunable_id: str, name: str) -> object:
    """Shorthand: one parameter from the active profile."""
    return get_active_profile().resolve(tunable_id, name)
