"""The built-in tunables: four real hot paths of the reproduction.

Each tunable wraps one paper-mapped kernel family with a fixed, seeded
probe problem sized so a full exhaustive search stays in CI-smoke
territory while the candidates still do meaningfully different work:

===================  ==================================================
``lfd.kin_prop``     Kinetic-propagator variant (Algorithms 1/3/4/5)
                     plus the Algorithm-4 orbital ``block_size``.
``lfd.nonlocal``     Nonlocal-correction BLAS-3 shape: naive loops vs
                     one GEMM pair (Eq. 9) vs orbital-panel GEMMs with
                     a tunable panel width.
``parallel.executor``DC-domain executor backend, worker count and chunk
                     size (the Fig. 2-3 scaling substrate).
``multigrid.poisson``Hartree V-cycle smoother and pre/post sweep counts.
===================  ==================================================

Kernel modules are imported lazily inside the probe/trial closures so
importing :mod:`repro.tuning` never drags the physics stack in (and the
physics stack can import :mod:`repro.tuning.profile` without a cycle).
Every ``run_trial`` works on a fresh copy of the probe state and returns
a plain output array for the correctness gate; probes are never mutated.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tuning.defaults import default_params
from repro.tuning.registry import Tunable, TunableRegistry
from repro.tuning.spaces import Choice, IntRange, Params, ParamSpace

PROBE_SEED = 2026


# --------------------------------------------------------------------- #
# lfd.kin_prop
# --------------------------------------------------------------------- #
def _kin_prop_probe() -> dict:
    from repro.grids.grid import Grid3D
    from repro.lfd.wavefunction import WaveFunctionSet

    grid = Grid3D.cubic(12, 0.5)
    rng = np.random.default_rng(PROBE_SEED)
    wf = WaveFunctionSet.random(grid, 12, rng)
    return {"wf": wf, "dt": 0.05, "steps": 2}


def _kin_prop_trial(probe: dict, params: Params) -> np.ndarray:
    from repro.lfd.kin_prop import kinetic_step

    wf = probe["wf"].copy()
    for _ in range(probe["steps"]):
        kinetic_step(wf, probe["dt"], variant=str(params["variant"]),
                     block_size=int(params["block_size"]),
                     backend=str(params.get("backend", "numpy")))
    return wf.psi.copy()


def _kin_prop_prefilter(params: Params) -> Optional[str]:
    defaults = default_params("lfd.kin_prop")
    if params["variant"] != "blocked" and params["block_size"] != defaults["block_size"]:
        return "block_size only affects the blocked variant"
    if params.get("backend", "numpy") != "numpy" and (
        params["variant"] != defaults["variant"]
        or params["block_size"] != defaults["block_size"]
    ):
        return ("non-native substrates route every variant through the "
                "portable kernel; variant/block only matter on numpy")
    return None


def _kin_prop_tunable() -> Tunable:
    return Tunable(
        tunable_id="lfd.kin_prop",
        space=ParamSpace((
            Choice("variant", ("baseline", "interchange", "blocked",
                               "collapsed")),
            Choice("block_size", (4, 8, 16, 32, 64)),
            Choice("backend", ("numpy", "array_api_strict")),
        )),
        defaults=default_params("lfd.kin_prop"),
        description="kinetic stencil propagation variant and orbital block",
        paper_ref="Algorithms 1-5; Table I rows 1-4",
        source_modules=("repro.lfd.kin_prop", "repro.grids.stencil"),
        make_probe=_kin_prop_probe,
        run_trial=_kin_prop_trial,
        prefilter=_kin_prop_prefilter,
    )


# --------------------------------------------------------------------- #
# lfd.nonlocal
# --------------------------------------------------------------------- #
def _nonlocal_probe() -> dict:
    from repro.grids.grid import Grid3D
    from repro.lfd.wavefunction import WaveFunctionSet

    grid = Grid3D.cubic(10, 0.5)
    rng = np.random.default_rng(PROBE_SEED + 1)
    wf = WaveFunctionSet.random(grid, 10, rng)
    ref = WaveFunctionSet.random(grid, 24, rng)
    return {"wf": wf, "ref": ref, "dt": 0.05, "scissor": 0.037}


def _nonlocal_trial(probe: dict, params: Params) -> np.ndarray:
    from repro.lfd.nonlocal_corr import NonlocalCorrector

    wf = probe["wf"].copy()
    corr = NonlocalCorrector(
        ref_unocc=probe["ref"], scissor_shift=probe["scissor"],
        variant=str(params["variant"]), orb_block=int(params["orb_block"]),
        backend=str(params.get("backend", "numpy")),
    )
    corr.apply(wf, probe["dt"])
    return wf.psi.copy()


def _nonlocal_prefilter(params: Params) -> Optional[str]:
    defaults = default_params("lfd.nonlocal")
    if params["variant"] != "blas_blocked" and params["orb_block"] != defaults["orb_block"]:
        return "orb_block only affects the blas_blocked variant"
    if params.get("backend", "numpy") != "numpy" and (
        params["variant"] != defaults["variant"]
        or params["orb_block"] != defaults["orb_block"]
    ):
        return ("non-native substrates use the portable GEMM kernel; "
                "variant/panel only matter on numpy")
    return None


def _nonlocal_tunable() -> Tunable:
    return Tunable(
        tunable_id="lfd.nonlocal",
        space=ParamSpace((
            Choice("variant", ("naive", "blas", "blas_blocked")),
            Choice("orb_block", (4, 8, 16, 32)),
            Choice("backend", ("numpy", "array_api_strict")),
        )),
        defaults=default_params("lfd.nonlocal"),
        description="nonlocal correction BLAS-3 variant and panel width",
        paper_ref="Eqs. 7-9, Section III-D, Table II, Figs. 5-6",
        source_modules=("repro.lfd.nonlocal_corr",),
        make_probe=_nonlocal_probe,
        run_trial=_nonlocal_trial,
        prefilter=_nonlocal_prefilter,
    )


# --------------------------------------------------------------------- #
# parallel.executor
# --------------------------------------------------------------------- #
def _executor_task(item: tuple) -> np.ndarray:
    """Module-level (picklable) NumPy-heavy task: seeded dense solve."""
    seed, size = item
    rng = np.random.default_rng(np.random.SeedSequence((PROBE_SEED, seed)))
    a = rng.standard_normal((size, size)) + size * np.eye(size)
    b = rng.standard_normal(size)
    return np.linalg.solve(a, b)


def _executor_probe() -> dict:
    return {"items": [(i, 48) for i in range(12)]}


def _executor_trial(probe: dict, params: Params) -> np.ndarray:
    from repro.parallel.executor import make_executor

    backend = str(params["backend"])
    extras = {}
    if backend == "process":
        extras["chunk_size"] = int(params["chunk_size"])
    with make_executor(backend, workers=int(params["workers"]),
                       seed=0, **extras) as ex:
        results = ex.map(_executor_task, probe["items"], label="tuning-probe")
    return np.stack(results)


def _executor_prefilter(params: Params) -> Optional[str]:
    if params["backend"] == "process":
        return "process spawn overhead swamps any probe-scale signal"
    if params["backend"] == "serial" and params["workers"] != 1:
        return "serial backend ignores workers"
    if params["chunk_size"] != 1:
        return "chunk_size only affects the process backend"
    return None


def _executor_tunable() -> Tunable:
    return Tunable(
        tunable_id="parallel.executor",
        space=ParamSpace((
            Choice("backend", ("serial", "thread", "process")),
            Choice("workers", (1, 2, 4)),
            Choice("chunk_size", (1, 2, 4)),
        )),
        defaults=default_params("parallel.executor"),
        description="DC-domain executor backend, workers and chunk size",
        paper_ref="Figs. 2-3 (DC weak scaling), Section III-E",
        source_modules=(
            "repro.parallel.executor",
            "repro.parallel.backends.serial",
            "repro.parallel.backends.thread",
            "repro.parallel.backends.process",
        ),
        make_probe=_executor_probe,
        run_trial=_executor_trial,
        prefilter=_executor_prefilter,
    )


# --------------------------------------------------------------------- #
# multigrid.poisson
# --------------------------------------------------------------------- #
def _poisson_probe() -> dict:
    from repro.grids.grid import Grid3D

    grid = Grid3D.cubic(16, 0.4)
    rng = np.random.default_rng(PROBE_SEED + 2)
    # Smooth, mean-free density: a few random low-frequency Fourier modes.
    x, y, z = np.meshgrid(*(np.arange(n) / n for n in grid.shape),
                          indexing="ij")
    rho = np.zeros(grid.shape)
    for _ in range(4):
        kx, ky, kz = rng.integers(1, 4, size=3)
        amp, ph = rng.standard_normal(), rng.uniform(0, 2 * np.pi)
        rho += amp * np.cos(2 * np.pi * (kx * x + ky * y + kz * z) + ph)
    return {"grid": grid, "rho": rho - rho.mean()}


def _poisson_trial(probe: dict, params: Params) -> np.ndarray:
    from repro.multigrid.poisson import PoissonMultigrid

    solver = PoissonMultigrid(
        probe["grid"],
        pre_sweeps=int(params["pre_sweeps"]),
        post_sweeps=int(params["post_sweeps"]),
        smoother=str(params["smoother"]),
        backend=str(params.get("backend", "numpy")),
    )
    # Converged far past the gate tolerance: every smoother config must
    # land on the same discrete solution, so only speed can differ.
    u, stats = solver.solve(probe["rho"], tol=1e-14, max_cycles=200)
    if not stats.converged:
        return np.full_like(u, np.nan)  # unconverged config can never win
    return u


def _poisson_prefilter(params: Params) -> Optional[str]:
    defaults = default_params("multigrid.poisson")
    if params.get("backend", "numpy") != "numpy" and any(
        params[k] != defaults[k]
        for k in ("smoother", "pre_sweeps", "post_sweeps")
    ):
        return ("substrate choice is orthogonal to the cycle shape; "
                "search smoother/sweeps on numpy only")
    return None


def _poisson_tunable() -> Tunable:
    return Tunable(
        tunable_id="multigrid.poisson",
        space=ParamSpace((
            Choice("smoother", ("rbgs", "jacobi")),
            IntRange("pre_sweeps", 1, 3),
            IntRange("post_sweeps", 1, 3),
            Choice("backend", ("numpy", "array_api_strict")),
        )),
        defaults=default_params("multigrid.poisson"),
        description="Hartree V-cycle smoother and sweep counts",
        paper_ref="Hartree solve of the LFD step (Eq. 4 context)",
        source_modules=(
            "repro.multigrid.poisson",
            "repro.multigrid.smoothers",
            "repro.multigrid.transfer",
        ),
        make_probe=_poisson_probe,
        run_trial=_poisson_trial,
        prefilter=_poisson_prefilter,
    )


# --------------------------------------------------------------------- #
# ensemble.swarm
# --------------------------------------------------------------------- #
def _ensemble_probe() -> dict:
    from repro.ensemble.engine import EnsembleConfig
    from repro.ensemble.path import model_path

    return {
        "path": model_path(nsteps=24, nstates=4, dt=1.0,
                           seed=PROBE_SEED + 3),
        "config": EnsembleConfig(ntraj=64, seed=PROBE_SEED + 4),
    }


def _ensemble_trial(probe: dict, params: Params) -> np.ndarray:
    from dataclasses import replace

    from repro.ensemble.engine import run_ensemble

    config = replace(probe["config"], batch_size=int(params["batch_size"]))
    result = run_ensemble(probe["path"], config, backend="serial")
    # Per-trajectory RNG streams + in-order reassembly make the stacked
    # traces bitwise invariant to batch_size, so the gate is exact: only
    # speed can distinguish candidates.
    return np.concatenate([
        result.stats.pop_mean.ravel(),
        result.hops.astype(np.float64),
        result.ke_factor,
    ])


def _ensemble_tunable() -> Tunable:
    return Tunable(
        tunable_id="ensemble.swarm",
        space=ParamSpace((
            Choice("batch_size", (8, 16, 32, 64)),
        )),
        defaults=default_params("ensemble.swarm"),
        description="FSSH trajectory-swarm batch size",
        paper_ref="QXMD surface-hopping ensembles (Sec. II-B context)",
        source_modules=(
            "repro.ensemble.swarm",
            "repro.ensemble.engine",
            "repro.qxmd.sh_kernels",
        ),
        make_probe=_ensemble_probe,
        run_trial=_ensemble_trial,
    )


def build_registry() -> TunableRegistry:
    """A fresh registry holding the five built-in tunables."""
    registry = TunableRegistry()
    registry.register(_kin_prop_tunable())
    registry.register(_nonlocal_tunable())
    registry.register(_executor_tunable())
    registry.register(_poisson_tunable())
    registry.register(_ensemble_tunable())
    return registry
