"""Canonical default parameters of every tuning-managed hot path.

This module is deliberately import-light (no numpy, no kernel imports):
it is the one table both the :class:`~repro.tuning.profile.TuningProfile`
fallback chain and the :mod:`~repro.tuning.builtin` tunable definitions
read, so the untuned behaviour of the code base is defined in exactly
one place.  The values reproduce the hard-coded choices the autotuner
replaces (``kin_variant="collapsed"``, ``block_size=32``, serial
executor, 2+2 red-black multigrid sweeps).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple, Union

ParamValue = Union[str, int]
Params = Dict[str, ParamValue]

#: Tunable ids, in registry/report order.
TUNABLE_IDS: Tuple[str, ...] = (
    "lfd.kin_prop",
    "lfd.nonlocal",
    "parallel.executor",
    "multigrid.poisson",
    "ensemble.swarm",
)

#: The untuned (seed-state) parameter choice of every tunable.
#: ``backend`` on the kernel tunables is the array-API substrate
#: (:mod:`repro.backend`); ``"numpy"`` reproduces the pre-substrate
#: native kernels bit for bit.  (The ``parallel.executor`` ``backend``
#: is the unrelated executor kind -- serial/thread/process.)
DEFAULT_PARAMS: Mapping[str, Params] = {
    "lfd.kin_prop": {"variant": "collapsed", "block_size": 32,
                     "backend": "numpy"},
    "lfd.nonlocal": {"variant": "blas", "orb_block": 16, "backend": "numpy"},
    "parallel.executor": {"backend": "serial", "workers": 1, "chunk_size": 1},
    "multigrid.poisson": {"smoother": "rbgs", "pre_sweeps": 2,
                          "post_sweeps": 2, "backend": "numpy"},
    "ensemble.swarm": {"batch_size": 32},
}


def default_params(tunable_id: str) -> Params:
    """A fresh copy of one tunable's default parameters."""
    try:
        return dict(DEFAULT_PARAMS[tunable_id])
    except KeyError:
        raise KeyError(
            f"unknown tunable {tunable_id!r}; known: {', '.join(TUNABLE_IDS)}"
        ) from None
