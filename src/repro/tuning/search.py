"""Seeded search engines: exhaustive and successive-halving.

Small spaces are enumerated exhaustively; product spaces beyond
``exhaustive_threshold`` points run successive halving -- every gated
candidate gets a cheap one-repeat measurement, the slower half is pruned
each rung while the repeat count doubles, and the finalists are timed at
the full repeat budget.  Two invariants hold for both engines:

* **gate first** -- a candidate's probe output is checked against the
  reference configuration *before* any timed repeat; a rejected
  candidate is never measured and can never win;
* **defaults survive** -- the default configuration is exempt from
  pruning, so the winner is always compared against it at equal repeat
  count and the reported speedup is >= 1 by construction.

Everything is deterministic given the seed: candidate order is the
canonical space order, sub-sampling of oversized spaces uses a seeded
Generator, and ties break toward the earlier canonical candidate.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.obs import trace_span
from repro.tuning.gate import GATE_TOL, check
from repro.tuning.measure import TrialMeasurement, measure_callable
from repro.tuning.registry import Tunable
from repro.tuning.spaces import Params

#: Spaces at or below this many (post-prefilter) candidates are searched
#: exhaustively; larger ones run successive halving.
EXHAUSTIVE_THRESHOLD = 24

#: Hard cap on candidates entering a successive-halving run; larger
#: spaces are sub-sampled (seeded, defaults always included).
MAX_HALVING_CANDIDATES = 64

#: Search strategy names accepted by :func:`tune`.
STRATEGIES = ("auto", "exhaustive", "halving")


@dataclass
class TrialRecord:
    """One candidate's journey through the search."""

    params: Params
    encoded: str
    status: str = "pending"  # ok | gate_rejected | pruned | skipped
    measurement: Optional[TrialMeasurement] = None
    gate_error: Optional[float] = None
    note: str = ""

    @property
    def median_s(self) -> float:
        return self.measurement.median_s if self.measurement else float("inf")

    def to_dict(self) -> dict:
        """JSON-serializable form for reports."""
        return {
            "params": dict(self.params),
            "status": self.status,
            "gate_error": self.gate_error,
            "note": self.note,
            "measurement": (
                self.measurement.to_dict() if self.measurement else None
            ),
        }


@dataclass
class TuningOutcome:
    """The full result of tuning one tunable."""

    tunable_id: str
    strategy: str
    best_params: Params
    default_params: Params
    best_median_s: float
    default_median_s: float
    gate_tol: float
    trials: List[TrialRecord] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Default-over-best median ratio (>= 1 by construction)."""
        if self.best_median_s <= 0.0:
            return float("inf")
        return self.default_median_s / self.best_median_s

    @property
    def non_default(self) -> bool:
        """Whether the winner differs from the default configuration."""
        return self.best_params != self.default_params

    @property
    def measured_trials(self) -> int:
        """Candidates that received at least one timed repeat."""
        return sum(1 for t in self.trials if t.measurement is not None)

    @property
    def gate_rejected(self) -> int:
        """Candidates rejected by the correctness gate."""
        return sum(1 for t in self.trials if t.status == "gate_rejected")

    def to_dict(self) -> dict:
        """JSON-serializable form for reports."""
        return {
            "tunable_id": self.tunable_id,
            "strategy": self.strategy,
            "best_params": dict(self.best_params),
            "default_params": dict(self.default_params),
            "best_median_s": self.best_median_s,
            "default_median_s": self.default_median_s,
            "speedup": self.speedup,
            "non_default": self.non_default,
            "measured_trials": self.measured_trials,
            "gate_rejected": self.gate_rejected,
            "gate_tol": self.gate_tol,
            "trials": [t.to_dict() for t in self.trials],
        }


def _candidates(tunable: Tunable, seed: int,
                max_candidates: int) -> Tuple[List[TrialRecord], List[TrialRecord]]:
    """(live, skipped) trial records in canonical order, defaults included."""
    live: List[TrialRecord] = []
    skipped: List[TrialRecord] = []
    defaults_enc = tunable.space.encode(tunable.canonical_defaults())
    for params in tunable.space.iterate():
        enc = tunable.space.encode(params)
        reason = tunable.skip_reason(params)
        if reason is not None and enc != defaults_enc:
            skipped.append(TrialRecord(params, enc, status="skipped",
                                       note=reason))
        else:
            live.append(TrialRecord(params, enc))
    if len(live) > max_candidates:
        rng = np.random.default_rng(np.random.SeedSequence((seed, 0xA17)))
        keep = set(rng.choice(len(live), size=max_candidates,
                              replace=False).tolist())
        keep.add(next(i for i, t in enumerate(live)
                      if t.encoded == defaults_enc))
        sampled = [t for i, t in enumerate(live) if i in keep]
        for i, t in enumerate(live):
            if i not in keep:
                t.status = "skipped"
                t.note = f"sub-sampled out (cap {max_candidates})"
                skipped.append(t)
        live = sampled
    return live, skipped


def _gate_and_first_measure(
    tunable: Tunable,
    probe: object,
    trial: TrialRecord,
    ref_out: np.ndarray,
    gate_tol: float,
    warmup: int,
    repeats: int,
    clock: Callable[[], float],
) -> None:
    """Run the gate call, then the first timed measurement on pass."""
    fn = lambda: tunable.run_trial(probe, trial.params)  # noqa: E731
    with trace_span("tuning.gate", "tuning", tunable=tunable.tunable_id):
        out = fn()
    verdict = check(out, ref_out, tol=gate_tol)
    trial.gate_error = verdict.error
    if not verdict.passed:
        trial.status = "gate_rejected"
        trial.note = (f"output diverged {verdict.error:.3e} > {gate_tol:g} "
                      f"from the reference configuration")
        return
    # The gate call doubles as the first warmup invocation.
    measurement, _ = measure_callable(
        fn, warmup=max(0, warmup - 1), repeats=repeats,
        label=f"{tunable.tunable_id}:{trial.encoded}", clock=clock,
    )
    trial.measurement = measurement
    trial.status = "ok"


def _remeasure(
    tunable: Tunable,
    probe: object,
    trial: TrialRecord,
    repeats: int,
    clock: Callable[[], float],
) -> None:
    """Re-time a surviving candidate at a higher repeat count."""
    fn = lambda: tunable.run_trial(probe, trial.params)  # noqa: E731
    measurement, _ = measure_callable(
        fn, warmup=0, repeats=repeats,
        label=f"{tunable.tunable_id}:{trial.encoded}", clock=clock,
    )
    trial.measurement = measurement


def tune(
    tunable: Tunable,
    strategy: str = "auto",
    warmup: int = 1,
    repeats: int = 3,
    seed: int = 0,
    gate_tol: float = GATE_TOL,
    exhaustive_threshold: int = EXHAUSTIVE_THRESHOLD,
    clock: Callable[[], float] = time.perf_counter,
) -> TuningOutcome:
    """Search one tunable's space; returns the gated, measured outcome."""
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; options: {', '.join(STRATEGIES)}"
        )
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    live, skipped = _candidates(tunable, seed, MAX_HALVING_CANDIDATES)
    if strategy == "auto":
        strategy = ("exhaustive" if len(live) <= exhaustive_threshold
                    else "halving")

    defaults = tunable.canonical_defaults()
    defaults_enc = tunable.space.encode(defaults)
    with trace_span("tuning.search", "tuning", tunable=tunable.tunable_id,
                    strategy=strategy, candidates=len(live)):
        probe = tunable.make_probe()
        with trace_span("tuning.reference", "tuning",
                        tunable=tunable.tunable_id):
            ref_out = np.asarray(tunable.run_trial(probe, defaults))

        if strategy == "exhaustive":
            for trial in live:
                _gate_and_first_measure(tunable, probe, trial, ref_out,
                                        gate_tol, warmup, repeats, clock)
        else:
            # Rung 0: everyone gets the gate plus one timed repeat.
            for trial in live:
                _gate_and_first_measure(tunable, probe, trial, ref_out,
                                        gate_tol, warmup, 1, clock)
            survivors = [t for t in live if t.status == "ok"]
            rung_repeats = 1
            while len(survivors) > 2 and rung_repeats < repeats:
                survivors.sort(key=lambda t: t.median_s)
                half = max(2, math.ceil(len(survivors) / 2))
                for loser in survivors[half:]:
                    if loser.encoded != defaults_enc:
                        loser.status = "pruned"
                        loser.note = f"pruned at {rung_repeats} repeat(s)"
                # Defaults keep "ok" status even when slow, so they ride
                # every rung and the final comparison is apples-to-apples.
                survivors = [t for t in live if t.status == "ok"]
                rung_repeats = min(rung_repeats * 2, repeats)
                for trial in survivors:
                    _remeasure(tunable, probe, trial, rung_repeats, clock)

    trials = live + skipped
    ok = [t for t in live if t.status == "ok"]
    if not ok:
        raise RuntimeError(
            f"tuning {tunable.tunable_id!r}: no candidate passed the "
            f"correctness gate (tol {gate_tol:g}); the reference "
            f"configuration itself should always pass -- probe is broken"
        )
    default_trial = next(t for t in ok if t.encoded == defaults_enc)
    best = min(ok, key=lambda t: t.median_s)
    return TuningOutcome(
        tunable_id=tunable.tunable_id,
        strategy=strategy,
        best_params=dict(best.params),
        default_params=dict(defaults),
        best_median_s=best.median_s,
        default_median_s=default_trial.median_s,
        gate_tol=gate_tol,
        trials=trials,
    )
