"""The correctness gate: no candidate wins on wrong numbers.

Autotuning must never trade physics for speed.  Before any candidate
configuration can be timed into a winner, its output on the fixed probe
problem is compared element-wise against the output of the *reference*
(default) configuration; divergence beyond :data:`GATE_TOL` rejects the
candidate outright.  The tolerance is the repo-wide ``1e-12`` equivalence
bar the backend differential harness and the propagator invariants
already enforce, so "tuned" and "untuned" runs stay interchangeable to
the same standard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Maximum allowed normalized divergence of a candidate from the
#: reference configuration on the probe problem.
GATE_TOL = 1e-12


@dataclass(frozen=True)
class GateVerdict:
    """Outcome of one candidate's correctness check."""

    error: float
    tol: float

    @property
    def passed(self) -> bool:
        return self.error <= self.tol


def correctness_error(candidate: np.ndarray, reference: np.ndarray) -> float:
    """Normalized max-abs divergence of ``candidate`` from ``reference``.

    The denominator is ``max(1, max|reference|)`` so the metric is
    absolute for O(1)-normalized outputs (orbitals, occupations) and
    relative for large-magnitude ones (potentials), and never divides by
    zero.  Shape mismatches and non-finite candidate values are infinite
    error (a candidate that NaNs must never win, whatever the reference
    looks like).
    """
    cand = np.asarray(candidate)
    ref = np.asarray(reference)
    if cand.shape != ref.shape:
        return float("inf")
    if cand.size == 0:
        return 0.0
    if not np.all(np.isfinite(np.abs(cand))):
        return float("inf")
    scale = max(float(np.max(np.abs(ref))), 1.0)
    return float(np.max(np.abs(cand - ref))) / scale


def check(candidate: np.ndarray, reference: np.ndarray,
          tol: float = GATE_TOL) -> GateVerdict:
    """Gate one candidate output against the reference output."""
    return GateVerdict(error=correctness_error(candidate, reference), tol=tol)
