"""Declarative parameter spaces with deterministic encoding.

A :class:`ParamSpace` is an ordered set of named dimensions -- each a
:class:`Choice` over explicit options or an :class:`IntRange` -- whose
full product can be enumerated in one canonical order.  Determinism is
the load-bearing property: the search engine, the persisted cache and
the correctness gate all identify a candidate by its canonical encoding,
and the cache key includes a hash of the space itself so adding or
removing an option invalidates stale winners automatically.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple, Union

import numpy as np

ParamValue = Union[str, int]
Params = Dict[str, ParamValue]


@dataclass(frozen=True)
class Choice:
    """A categorical dimension over an explicit, ordered option tuple."""

    name: str
    options: Tuple[ParamValue, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension name must be non-empty")
        if len(self.options) == 0:
            raise ValueError(f"dimension {self.name!r} has no options")
        if len(set(self.options)) != len(self.options):
            raise ValueError(f"dimension {self.name!r} has duplicate options")

    def values(self) -> Tuple[ParamValue, ...]:
        """The option tuple, in declaration order."""
        return self.options

    def contains(self, value: ParamValue) -> bool:
        """Whether ``value`` is one of the declared options."""
        return value in self.options

    def spec(self) -> Dict[str, object]:
        """JSON-stable declaration of this dimension (feeds the hash)."""
        return {"kind": "choice", "name": self.name,
                "options": list(self.options)}


@dataclass(frozen=True)
class IntRange:
    """An inclusive integer range ``lo..hi`` walked with a fixed step."""

    name: str
    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension name must be non-empty")
        if self.step < 1:
            raise ValueError(f"dimension {self.name!r}: step must be >= 1")
        if self.hi < self.lo:
            raise ValueError(f"dimension {self.name!r}: hi < lo")

    def values(self) -> Tuple[int, ...]:
        """Every value of the range, ascending."""
        return tuple(range(self.lo, self.hi + 1, self.step))

    def contains(self, value: ParamValue) -> bool:
        """Whether ``value`` lies on the range lattice."""
        return (
            isinstance(value, (int, np.integer))
            and self.lo <= int(value) <= self.hi
            and (int(value) - self.lo) % self.step == 0
        )

    def spec(self) -> Dict[str, object]:
        """JSON-stable declaration of this dimension (feeds the hash)."""
        return {"kind": "int_range", "name": self.name,
                "lo": self.lo, "hi": self.hi, "step": self.step}


Dimension = Union[Choice, IntRange]


class ParamSpace:
    """An ordered product of named dimensions.

    Iteration order is the lexicographic product of the per-dimension
    value orders, with the *first declared dimension varying slowest* --
    the same order every process, platform and run sees, which is what
    makes trial indices and cache encodings stable.
    """

    def __init__(self, dims: Tuple[Dimension, ...]) -> None:
        if not dims:
            raise ValueError("a ParamSpace needs at least one dimension")
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        self.dims: Tuple[Dimension, ...] = tuple(dims)

    @property
    def names(self) -> Tuple[str, ...]:
        """Dimension names in declaration order."""
        return tuple(d.name for d in self.dims)

    @property
    def size(self) -> int:
        """Number of points in the full product space."""
        n = 1
        for d in self.dims:
            n *= len(d.values())
        return n

    def iterate(self) -> Iterator[Params]:
        """Every point of the space, in canonical order."""
        for combo in itertools.product(*(d.values() for d in self.dims)):
            yield dict(zip(self.names, combo))

    def validate(self, params: Mapping[str, ParamValue]) -> Params:
        """Check a parameter dict against the space; returns a clean copy."""
        extra = set(params) - set(self.names)
        if extra:
            raise ValueError(f"unknown parameter(s): {sorted(extra)}")
        clean: Params = {}
        for d in self.dims:
            if d.name not in params:
                raise ValueError(f"missing parameter {d.name!r}")
            value = params[d.name]
            if isinstance(value, np.integer):
                value = int(value)
            if not d.contains(value):
                raise ValueError(
                    f"parameter {d.name!r}={value!r} outside the declared "
                    f"space {d.spec()}"
                )
            clean[d.name] = value
        return clean

    def encode(self, params: Mapping[str, ParamValue]) -> str:
        """Canonical string encoding of one (validated) point."""
        clean = self.validate(params)
        return json.dumps(clean, sort_keys=True, separators=(",", ":"))

    def decode(self, encoded: str) -> Params:
        """Inverse of :meth:`encode` (validates on the way in)."""
        return self.validate(json.loads(encoded))

    def spec(self) -> List[Dict[str, object]]:
        """JSON-stable declaration of the whole space."""
        return [d.spec() for d in self.dims]

    def space_hash(self) -> str:
        """Stable digest of the space declaration (part of the cache key)."""
        payload = json.dumps(self.spec(), sort_keys=True,
                             separators=(",", ":")).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def sample(self, rng: np.random.Generator) -> Params:
        """One uniformly random point (seeded caller-side; deterministic)."""
        out: Params = {}
        for d in self.dims:
            values = d.values()
            out[d.name] = values[int(rng.integers(len(values)))]
        return out
