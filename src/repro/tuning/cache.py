"""Persisted tuning cache, keyed by machine + code fingerprint.

A tuned winner is only valid on the machine and code that produced it,
so every cache entry stores (and every lookup re-checks) three keys:

* the **space hash** -- adding/removing an option re-tunes;
* the **machine fingerprint** -- platform, CPU count, NumPy version and
  BLAS vendor; moving the cache file to another host re-tunes;
* the **code fingerprint** -- a sha256 over the *source text* of every
  module the tunable declares in ``source_modules``; editing a kernel
  re-tunes.

The cache file is one :class:`~repro.artifacts.jsondoc.JsonDocumentStore`
document (schema ``repro-tuning/1``): written with the fsync'd
same-directory atomic writer of :mod:`repro.resilience.atomicio`
(honouring the ``cache.enospc`` and ``cache.torn_write`` fault sites),
so a killed tuning run -- or a full disk -- can never leave a
half-written cache behind.  A cache that is nevertheless found truncated
or corrupt on load (torn by an unclean writer, bit rot) is treated as
*missing*: every lookup misses, the affected tunables re-tune, and the
next ``save`` atomically replaces the corrupt file with a good one.  The
corruption is surfaced on ``load_error`` so callers can log it rather
than silently re-tuning.

The fingerprint helpers historically defined here now live in
:mod:`repro.artifacts.fingerprint` (they key every artifact family, not
just tuning); ``machine_fingerprint`` and ``code_fingerprint`` are
re-exported unchanged for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.artifacts.fingerprint import (  # noqa: F401  (re-exports)
    _blas_signature,
    code_fingerprint,
    machine_fingerprint,
)
from repro.artifacts.jsondoc import JsonDocumentStore
from repro.tuning.registry import Tunable
from repro.tuning.spaces import Params

SCHEMA = "repro-tuning/1"

#: Default cache location (repo-local, gitignored).
DEFAULT_CACHE_PATH = Path(".repro-tuning") / "cache.json"


@dataclass(frozen=True)
class CacheEntry:
    """One persisted winner plus everything needed to trust it."""

    tunable_id: str
    params: Params
    space_hash: str
    machine: str
    code: str
    speedup: float
    strategy: str
    gate_error: float

    def to_dict(self) -> dict:
        """JSON-serializable cache-entry record."""
        return {
            "params": dict(self.params),
            "space_hash": self.space_hash,
            "machine": self.machine,
            "code": self.code,
            "speedup": self.speedup,
            "strategy": self.strategy,
            "gate_error": self.gate_error,
        }

    @classmethod
    def from_dict(cls, tunable_id: str, data: dict) -> "CacheEntry":
        return cls(
            tunable_id=tunable_id,
            params=dict(data["params"]),
            space_hash=str(data["space_hash"]),
            machine=str(data["machine"]),
            code=str(data["code"]),
            speedup=float(data.get("speedup", 1.0)),
            strategy=str(data.get("strategy", "unknown")),
            gate_error=float(data.get("gate_error", 0.0)),
        )


class TuningCache:
    """Atomic-write JSON store of tuned winners, self-invalidating.

    ``get`` returns None unless the stored entry's space hash, machine
    fingerprint and code fingerprint all match the current process --
    a stale entry is treated exactly like a missing one.
    """

    def __init__(self, path: Path = DEFAULT_CACHE_PATH) -> None:
        self.path = Path(path)
        self._doc = JsonDocumentStore(self.path, SCHEMA, fault_prefix="cache")
        self._entries: Dict[str, CacheEntry] = {}
        #: Why the on-disk cache was unusable (None = loaded cleanly or
        #: absent).  A truncated/corrupt file degrades to an empty cache
        #: -- affected tunables re-tune and the next save heals the file.
        self.load_error: Optional[str] = None
        self._load()

    def _load(self) -> None:
        data, self.load_error = self._doc.load()
        if data is None:
            return
        for tid, raw in data.get("entries", {}).items():
            try:
                self._entries[tid] = CacheEntry.from_dict(tid, raw)
            except (KeyError, TypeError, ValueError):
                continue

    def save(self) -> None:
        """Write the cache atomically (fsync'd same-dir temp + rename).

        Honours the ``cache.enospc`` / ``cache.torn_write`` fault sites;
        a failed write (disk full) raises ``OSError`` and leaves any
        previous cache file byte-for-byte intact.
        """
        self._doc.save({
            "entries": {tid: e.to_dict() for tid, e in
                        sorted(self._entries.items())},
        })

    def get(self, tunable: Tunable,
            machine: Optional[str] = None) -> Optional[CacheEntry]:
        """The stored winner for ``tunable``, or None if any key is stale."""
        entry = self._entries.get(tunable.tunable_id)
        if entry is None:
            return None
        if entry.space_hash != tunable.space.space_hash():
            return None
        if entry.machine != (machine or machine_fingerprint()):
            return None
        if entry.code != code_fingerprint(tunable):
            return None
        try:
            tunable.space.validate(entry.params)
        except ValueError:
            return None
        return entry

    def put(self, tunable: Tunable, params: Params, speedup: float,
            strategy: str, gate_error: float,
            machine: Optional[str] = None) -> CacheEntry:
        """Store a winner (validated against the space) and return it."""
        entry = CacheEntry(
            tunable_id=tunable.tunable_id,
            params=tunable.space.validate(params),
            space_hash=tunable.space.space_hash(),
            machine=machine or machine_fingerprint(),
            code=code_fingerprint(tunable),
            speedup=float(speedup),
            strategy=strategy,
            gate_error=float(gate_error),
        )
        self._entries[tunable.tunable_id] = entry
        return entry

    def drop(self, tunable_id: str) -> bool:
        """Remove one entry (force re-tune); True if it existed."""
        return self._entries.pop(tunable_id, None) is not None

    def entries(self) -> Dict[str, CacheEntry]:
        """All stored entries (copies irrelevant; treat as read-only)."""
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
