"""Tuning session orchestration: cache -> search -> cache -> profile.

A :class:`TuningSession` is what ``repro tune`` drives: for every
selected tunable it first consults the persisted cache (a valid entry is
a *pure cache hit* -- zero trials run), otherwise runs the seeded search,
stores the gated winner and saves the cache atomically.  The session's
final product is a :class:`~repro.tuning.profile.TuningProfile` plus a
machine-readable report of what happened per tunable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.obs import trace_span
from repro.tuning.cache import TuningCache, machine_fingerprint
from repro.tuning.gate import GATE_TOL
from repro.tuning.profile import TuningProfile
from repro.tuning.registry import TunableRegistry, default_registry
from repro.tuning.search import TuningOutcome, tune


@dataclass
class SessionRecord:
    """What the session did for one tunable."""

    tunable_id: str
    action: str  # "cache_hit" | "tuned"
    params: dict
    speedup: float
    non_default: bool
    outcome: Optional[TuningOutcome] = None

    @property
    def trials_run(self) -> int:
        """Measured trials this session actually executed (0 on a hit)."""
        if self.outcome is None:
            return 0
        return self.outcome.measured_trials

    def to_dict(self) -> dict:
        """JSON-serializable per-tunable session record."""
        return {
            "tunable_id": self.tunable_id,
            "action": self.action,
            "params": dict(self.params),
            "speedup": self.speedup,
            "non_default": self.non_default,
            "trials_run": self.trials_run,
            "outcome": self.outcome.to_dict() if self.outcome else None,
        }


@dataclass
class SessionResult:
    """Everything one ``repro tune`` invocation produced."""

    records: List[SessionRecord] = field(default_factory=list)
    machine: str = ""
    cache_path: str = ""
    #: Why persisting the cache failed (None = saved or nothing to save).
    #: Tuned winners still apply in-process; only the *next* run re-tunes.
    cache_save_error: Optional[str] = None

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.action == "cache_hit")

    @property
    def tuned(self) -> int:
        return sum(1 for r in self.records if r.action == "tuned")

    @property
    def total_trials(self) -> int:
        return sum(r.trials_run for r in self.records)

    def profile(self) -> TuningProfile:
        """The tuned profile this session resolved."""
        overrides = {r.tunable_id: dict(r.params) for r in self.records}
        return TuningProfile(overrides, source=f"tune:{self.cache_path}")

    def to_dict(self) -> dict:
        """JSON-serializable session report (schema repro-tuning-report/1)."""
        return {
            "schema": "repro-tuning-report/1",
            "machine": self.machine,
            "cache_path": self.cache_path,
            "cache_hits": self.cache_hits,
            "tuned": self.tuned,
            "total_trials": self.total_trials,
            "cache_save_error": self.cache_save_error,
            "records": [r.to_dict() for r in self.records],
        }


class TuningSession:
    """Cache-first tuning over a selection of registered tunables."""

    def __init__(
        self,
        cache: Optional[TuningCache] = None,
        registry: Optional[TunableRegistry] = None,
    ) -> None:
        self.cache = cache if cache is not None else TuningCache()
        self.registry = registry if registry is not None else default_registry()

    def run(
        self,
        select: Optional[Sequence[str]] = None,
        force: bool = False,
        strategy: str = "auto",
        warmup: int = 1,
        repeats: int = 3,
        seed: int = 0,
        gate_tol: float = GATE_TOL,
        clock: Callable[[], float] = time.perf_counter,
    ) -> SessionResult:
        """Tune the selected tunables (all registered ones by default).

        ``force`` drops any cached entry first, guaranteeing a fresh
        search; otherwise a valid cache entry short-circuits the search
        entirely (zero trials).
        """
        ids = tuple(select) if select else self.registry.ids()
        machine = machine_fingerprint()
        result = SessionResult(machine=machine,
                               cache_path=str(self.cache.path))
        dirty = False
        with trace_span("tuning.session", "tuning", tunables=len(ids),
                        force=force):
            for tid in ids:
                tunable = self.registry.get(tid)
                if force:
                    self.cache.drop(tid)
                entry = None if force else self.cache.get(tunable,
                                                          machine=machine)
                if entry is not None:
                    result.records.append(SessionRecord(
                        tunable_id=tid,
                        action="cache_hit",
                        params=dict(entry.params),
                        speedup=entry.speedup,
                        non_default=(dict(entry.params)
                                     != tunable.canonical_defaults()),
                    ))
                    continue
                outcome = tune(tunable, strategy=strategy, warmup=warmup,
                               repeats=repeats, seed=seed, gate_tol=gate_tol,
                               clock=clock)
                best_trial = next(
                    t for t in outcome.trials
                    if t.status == "ok" and dict(t.params) == outcome.best_params
                )
                self.cache.put(
                    tunable, outcome.best_params, speedup=outcome.speedup,
                    strategy=outcome.strategy,
                    gate_error=float(best_trial.gate_error or 0.0),
                    machine=machine,
                )
                dirty = True
                result.records.append(SessionRecord(
                    tunable_id=tid,
                    action="tuned",
                    params=dict(outcome.best_params),
                    speedup=outcome.speedup,
                    non_default=outcome.non_default,
                    outcome=outcome,
                ))
        if dirty:
            try:
                self.cache.save()
            except OSError as exc:
                # A full disk must not void the tuning that already ran:
                # winners stay active in this process, the failure is
                # reported, and the next session simply re-tunes.
                result.cache_save_error = f"{type(exc).__name__}: {exc}"
        return result
