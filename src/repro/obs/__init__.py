"""Observability: hierarchical tracing, phase aggregation, trace export.

The instrumented hot paths (LFD kernels, SCF/multigrid loops, SimComm,
the run supervisor) open spans on the process-global tracer, which is
the zero-overhead :data:`NULL_TRACER` unless a run installs a real
:class:`Tracer` (e.g. via ``repro-mesh run --trace-out trace.json``).
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    trace_charge,
    trace_span,
    tracing,
)
from repro.obs.phases import (
    PHASES,
    PhaseStats,
    aggregate_by_name,
    aggregate_by_phase,
    normalize_phase,
    phase_report,
)
from repro.obs.export import (
    chrome_trace_events,
    load_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_charge",
    "trace_span",
    "tracing",
    "PHASES",
    "PhaseStats",
    "aggregate_by_name",
    "aggregate_by_phase",
    "normalize_phase",
    "phase_report",
    "chrome_trace_events",
    "load_chrome_trace",
    "write_chrome_trace",
]
