"""Hierarchical span tracing for DC-MESH runs.

A *span* is one timed region of the run -- a kernel invocation, an SCF
cycle, a collective, a checkpoint write -- carrying wall time, nesting
depth, a *category* from the paper's kernel taxonomy
(:mod:`repro.obs.phases`) and the flop/byte tallies of the existing
:class:`~repro.perf.counters.CounterSet` machinery.  Spans nest: the
instrumented hot paths open one span per kernel inside the span of the
enclosing QD step, which itself nests inside the MD-step span, giving
the layered timing levels of heterogeneous RT-TDDFT codes.

The module-level *current tracer* defaults to :data:`NULL_TRACER`, whose
``span()`` hands back a shared no-op context manager -- the
instrumentation costs one attribute lookup and an empty ``with`` when
tracing is off, so it can live on the per-QD-step hot path.  Installing
a real :class:`Tracer` (``repro-mesh run --trace-out trace.json`` does
this) records every span for Chrome trace-event export
(:mod:`repro.obs.export`) and per-phase aggregation.

The tracer is thread-safe: each thread keeps its own span stack
(``threading.local``) and finished records are appended under a lock.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Dict, Iterator, List, Optional

from repro.perf.counters import CounterSet


@dataclass
class SpanRecord:
    """One finished span.

    ``start`` is seconds since the tracer's epoch; ``self_time`` is
    ``duration`` minus the time spent in child spans (so per-category
    totals never double-count nested work).  ``flops``/``bytes_moved``
    are whatever the span body charged via :meth:`Tracer.charge`.
    """

    name: str
    category: str
    start: float
    duration: float
    depth: int
    thread: int
    self_time: float = 0.0
    flops: float = 0.0
    bytes_moved: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)


class _OpenSpan:
    """Mutable bookkeeping of a span that is still on the stack."""

    __slots__ = ("name", "category", "t0", "flops", "bytes_moved",
                 "child_time", "args")

    def __init__(self, name: str, category: str, t0: float,
                 args: Dict[str, Any]) -> None:
        self.name = name
        self.category = category
        self.t0 = t0
        self.flops = 0.0
        self.bytes_moved = 0.0
        self.child_time = 0.0
        self.args = args


class _NullSpan:
    """Shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-tracing fast path: every operation is a no-op."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, category: str = "other", **args: object) -> _NullSpan:
        """Return the shared no-op context manager (records nothing)."""
        return _NULL_SPAN

    def charge(self, flops: float, bytes_moved: float) -> None:
        """Discard the counts (tracing is off)."""
        return None


#: The process-wide disabled tracer (singleton; never records anything).
NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans with wall time and flop/byte tallies.

    Parameters
    ----------
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.records: List[SpanRecord] = []
        #: Flop/byte totals keyed by span name (merged at span close).
        self.counters = CounterSet()

    # ------------------------------------------------------------------ #
    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def depth(self) -> int:
        """Current nesting depth of the calling thread."""
        return len(self._stack())

    @contextmanager
    def span(self, name: str, category: str = "other", **args: object) -> Iterator[_OpenSpan]:
        """Open one span; always closed and recorded, even on raise."""
        stack = self._stack()
        open_span = _OpenSpan(name, category, self._clock(), args)
        stack.append(open_span)
        try:
            yield open_span
        finally:
            popped = stack.pop()
            t1 = self._clock()
            duration = t1 - popped.t0
            if stack:
                stack[-1].child_time += duration
            record = SpanRecord(
                name=popped.name,
                category=popped.category,
                start=popped.t0 - self.epoch,
                duration=duration,
                depth=len(stack),
                thread=threading.get_ident(),
                self_time=max(duration - popped.child_time, 0.0),
                flops=popped.flops,
                bytes_moved=popped.bytes_moved,
                args=popped.args,
            )
            with self._lock:
                self.records.append(record)
                if popped.flops or popped.bytes_moved:
                    self.counters.add(popped.name, popped.flops,
                                      popped.bytes_moved)

    def charge(self, flops: float, bytes_moved: float) -> None:
        """Attribute flop/byte counts to the innermost open span.

        Outside any span the counts are tallied under ``untraced`` so
        they are never silently dropped.
        """
        stack = self._stack()
        if stack:
            stack[-1].flops += flops
            stack[-1].bytes_moved += bytes_moved
        else:
            with self._lock:
                self.counters.add("untraced", flops, bytes_moved)

    # ------------------------------------------------------------------ #
    def total(self, name: str) -> float:
        """Summed duration of all finished spans with this name."""
        with self._lock:
            return sum(r.duration for r in self.records if r.name == name)

    def calls(self, name: str) -> int:
        """Number of finished spans with this name."""
        with self._lock:
            return sum(1 for r in self.records if r.name == name)


# --------------------------------------------------------------------- #
# process-global current tracer
# --------------------------------------------------------------------- #
_CURRENT: Any = NULL_TRACER


def get_tracer() -> Any:
    """The currently installed tracer (the null tracer by default)."""
    return _CURRENT


def set_tracer(tracer: Optional[Any]) -> Any:
    """Install ``tracer`` globally (``None`` restores the null tracer)."""
    global _CURRENT
    _CURRENT = tracer if tracer is not None else NULL_TRACER
    return _CURRENT


def trace_span(name: str, category: str = "other", **args: object) -> ContextManager[Any]:
    """Open a span on the current tracer (no-op when tracing is off)."""
    return _CURRENT.span(name, category, **args)


def trace_charge(flops: float, bytes_moved: float) -> None:
    """Charge flop/byte counts to the current tracer's innermost span."""
    _CURRENT.charge(flops, bytes_moved)


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Temporarily install a tracer; restores the previous one on exit."""
    tracer = tracer if tracer is not None else Tracer()
    previous = _CURRENT
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
