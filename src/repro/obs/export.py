"""Chrome trace-event export of a recorded trace.

Writes the JSON Object Format of the Trace Event specification (a
``traceEvents`` list of ``"ph": "X"`` complete events with microsecond
timestamps), which loads directly in ``chrome://tracing`` and in
Perfetto's legacy-trace importer.  Span categories map to the event
``cat`` field so the paper's kernel taxonomy is filterable in the UI,
and the charged flop/byte tallies ride along in ``args``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Union

from repro.obs.tracer import SpanRecord, Tracer

#: Trace-event process id used for all spans (one simulated process).
TRACE_PID = 1


def chrome_trace_events(records: Iterable[SpanRecord]) -> List[Dict]:
    """Convert span records to Chrome trace-event dicts.

    Thread idents are renumbered to small consecutive tids in order of
    first appearance so the UI rows stay readable.
    """
    tids: Dict[int, int] = {}
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro-mesh"},
        }
    ]
    for r in records:
        tid = tids.setdefault(r.thread, len(tids) + 1)
        args: Dict = dict(r.args)
        if r.flops:
            args["flops"] = r.flops
        if r.bytes_moved:
            args["bytes"] = r.bytes_moved
        events.append(
            {
                "name": r.name,
                "cat": r.category,
                "ph": "X",
                "ts": r.start * 1e6,
                "dur": r.duration * 1e6,
                "pid": TRACE_PID,
                "tid": tid,
                "args": args,
            }
        )
    return events


def write_chrome_trace(
    path: Union[str, pathlib.Path],
    source: Union[Tracer, Iterable[SpanRecord]],
) -> pathlib.Path:
    """Write one trace (a tracer or its records) as Chrome trace JSON."""
    records = source.records if isinstance(source, Tracer) else list(source)
    path = pathlib.Path(path)
    if path.parent != pathlib.Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(doc) + "\n")
    return path


def load_chrome_trace(path: Union[str, pathlib.Path]) -> Dict:
    """Load and structurally validate a Chrome trace-event file."""
    doc = json.loads(pathlib.Path(path).read_text())
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace-event object (no traceEvents)")
    for ev in doc["traceEvents"]:
        if "ph" not in ev or "pid" not in ev:
            raise ValueError(f"malformed trace event: {ev!r}")
        if ev["ph"] == "X" and ("ts" not in ev or "dur" not in ev):
            raise ValueError(f"complete event missing ts/dur: {ev!r}")
    return doc
