"""The paper's kernel taxonomy and per-phase span aggregation.

Tables I-II and Fig. 5 of the paper break one MD step into a fixed set
of cost groups; every instrumented span carries one of these *phases* as
its category so traces from any layer (LFD kernels, QXMD solvers,
communication, resilience) aggregate into the same paper-aligned
breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.obs.tracer import SpanRecord
from repro.perf.report import Table

#: Canonical phase names, in report order.  ``kinetic`` .. ``checkpoint``
#: are the paper's kernel taxonomy; ``md``/``lfd``/``forces``/``other``
#: hold the orchestration layers around them.
PHASES = (
    "kinetic",
    "potential",
    "nonlocal",
    "hartree",
    "scf",
    "comm",
    "checkpoint",
    "lfd",
    "md",
    "forces",
    "tuning",
    "serve",
    "other",
)


def normalize_phase(category: str) -> str:
    """Map an arbitrary category string onto the canonical taxonomy."""
    return category if category in PHASES else "other"


@dataclass
class PhaseStats:
    """Aggregated timing/counter totals of one phase."""

    phase: str
    calls: int = 0
    total_s: float = 0.0        # sum of span durations (inclusive)
    self_s: float = 0.0         # sum of span self-times (exclusive)
    flops: float = 0.0
    bytes_moved: float = 0.0
    names: Dict[str, int] = field(default_factory=dict)

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte charged to this phase (inf when traffic-free)."""
        if self.bytes_moved == 0.0:
            return float("inf")
        return self.flops / self.bytes_moved


def aggregate_by_phase(records: Iterable[SpanRecord]) -> Dict[str, PhaseStats]:
    """Fold finished spans into per-phase totals.

    Inclusive time (``total_s``) double-counts nested same-phase spans,
    so cross-phase comparisons should use ``self_s``, which partitions
    the wall time exactly.
    """
    out: Dict[str, PhaseStats] = {}
    for r in records:
        phase = normalize_phase(r.category)
        stats = out.get(phase)
        if stats is None:
            stats = out[phase] = PhaseStats(phase)
        stats.calls += 1
        stats.total_s += r.duration
        stats.self_s += r.self_time
        stats.flops += r.flops
        stats.bytes_moved += r.bytes_moved
        stats.names[r.name] = stats.names.get(r.name, 0) + 1
    return out


def aggregate_by_name(records: Iterable[SpanRecord]) -> Dict[str, PhaseStats]:
    """Fold finished spans into per-span-name totals."""
    out: Dict[str, PhaseStats] = {}
    for r in records:
        stats = out.get(r.name)
        if stats is None:
            stats = out[r.name] = PhaseStats(normalize_phase(r.category))
        stats.calls += 1
        stats.total_s += r.duration
        stats.self_s += r.self_time
        stats.flops += r.flops
        stats.bytes_moved += r.bytes_moved
    return out


def phase_report(records: Iterable[SpanRecord]) -> str:
    """Paper-taxonomy text table of one trace (sorted by self time)."""
    stats = aggregate_by_phase(records)
    if not stats:
        return "(no spans recorded)"
    table = Table(
        ["phase", "self time", "incl. time", "spans", "GFLOP", "GB"],
        title="per-phase trace breakdown (paper kernel taxonomy)",
    )
    ordered = sorted(PHASES, key=lambda p: -stats[p].self_s if p in stats else 0.0)
    for phase in ordered:
        if phase not in stats:
            continue
        s = stats[phase]
        table.add_row(
            phase,
            f"{s.self_s:.4f} s",
            f"{s.total_s:.4f} s",
            str(s.calls),
            f"{s.flops / 1e9:.3f}",
            f"{s.bytes_moved / 1e9:.3f}",
        )
    return table.render()
