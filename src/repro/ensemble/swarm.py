"""SwarmState and the batched swarm step (plus the standalone reference).

A swarm is the stacked state of ``ntraj`` FSSH carriers: amplitudes
``(ntraj, nstates)``, active states ``(ntraj,)``, the cumulative
kinetic-energy factor each trajectory's velocity rescales have
accumulated, and hop counters.  :func:`step_swarm` advances all of them
through one MD step with the batch-size-invariant kernels of
:mod:`repro.qxmd.sh_kernels`; :func:`run_reference_trajectory` is the
standalone single-carrier loop the equivalence harness holds it to, bit
for bit.

RNG discipline: trajectory ``i`` of an ensemble seeded ``s`` always
draws from :func:`trajectory_rng` ``(s, i)`` -- the PR-4 executor's
``SeedSequence((seed, map_index, chunk_index))`` scheme with the map
ordinal pinned to 0 -- so the stream depends on the trajectory's
*identity*, never on its batch, backend or worker placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy
from repro.ensemble.path import ClassicalPath
from repro.parallel.executor import chunk_rng
from repro.qxmd.sh_kernels import (
    HopPolicy,
    apply_edc_batch,
    apply_edc_batch_xp,
    batched_norm,
    hop_probabilities_batch,
    hop_probabilities_batch_xp,
    propagate_amplitudes_batch,
    propagate_amplitudes_batch_xp,
    resolve_hops,
    select_hops,
)
from repro.qxmd.surface_hopping import FSSH, SurfaceHoppingState


def trajectory_rng(seed: int, index: int) -> np.random.Generator:
    """The deterministic RNG stream of ensemble trajectory ``index``.

    Reuses the executor's ``(seed, map_index, chunk_index)`` entropy key
    with ``map_index=0``, so the stream is a pure function of
    ``(seed, index)`` -- extracting trajectory ``index`` from any batch,
    backend or resume replays exactly the same random numbers.
    """
    return chunk_rng(seed, 0, index)


@dataclass
class SwarmState:
    """Stacked FSSH state of ``ntraj`` trajectories.

    Unlike :class:`~repro.qxmd.surface_hopping.SurfaceHoppingState`
    (which rejects stacked input outright), construction normalizes
    **per row** and raises -- naming the offending rows -- if any row
    has zero norm: a global normalize-on-construct would silently bury
    dead trajectories inside an otherwise healthy swarm.
    """

    amplitudes: np.ndarray          # (ntraj, nstates) complex
    active: np.ndarray              # (ntraj,) int
    ke_factor: Optional[np.ndarray] = None    # (ntraj,) float
    hop_counts: Optional[np.ndarray] = None   # (ntraj,) int

    def __post_init__(self) -> None:
        self.amplitudes = np.asarray(self.amplitudes, dtype=np.complex128)
        if self.amplitudes.ndim != 2:
            raise ValueError("amplitudes must have shape (ntraj, nstates)")
        ntraj, nstates = self.amplitudes.shape
        self.active = np.asarray(self.active, dtype=np.int64)
        if self.active.shape != (ntraj,):
            raise ValueError("active must have shape (ntraj,)")
        if np.any((self.active < 0) | (self.active >= nstates)):
            raise ValueError("active state out of range")
        norms = batched_norm(self.amplitudes)
        dead = np.nonzero(norms == 0.0)[0]
        if dead.size:
            raise ValueError(
                f"zero amplitude rows in swarm: {dead.tolist()}"
            )
        self.amplitudes = self.amplitudes / norms[:, None]
        if self.ke_factor is None:
            self.ke_factor = np.ones(ntraj, dtype=np.float64)
        else:
            self.ke_factor = np.asarray(self.ke_factor, dtype=np.float64)
            if self.ke_factor.shape != (ntraj,):
                raise ValueError("ke_factor must have shape (ntraj,)")
        if self.hop_counts is None:
            self.hop_counts = np.zeros(ntraj, dtype=np.int64)
        else:
            self.hop_counts = np.asarray(self.hop_counts, dtype=np.int64)
            if self.hop_counts.shape != (ntraj,):
                raise ValueError("hop_counts must have shape (ntraj,)")

    @property
    def ntraj(self) -> int:
        return self.amplitudes.shape[0]

    @property
    def nstates(self) -> int:
        return self.amplitudes.shape[1]

    @property
    def populations(self) -> np.ndarray:
        """|c|^2 per trajectory and state, shape ``(ntraj, nstates)``."""
        return np.abs(self.amplitudes) ** 2

    @classmethod
    def on_state(cls, ntraj: int, nstates: int, active: int) -> "SwarmState":
        """A swarm with every trajectory pure on one adiabatic state."""
        amps = np.zeros((ntraj, nstates), dtype=np.complex128)
        amps[:, active] = 1.0
        return cls(amplitudes=amps,
                   active=np.full(ntraj, active, dtype=np.int64))

    def extract(self, index: int) -> SurfaceHoppingState:
        """Trajectory ``index`` as a standalone single-carrier state."""
        return SurfaceHoppingState(
            amplitudes=self.amplitudes[index].copy(),
            active=int(self.active[index]),
        )


def step_swarm(
    swarm: SwarmState,
    energies: np.ndarray,
    nac: np.ndarray,
    dt: float,
    kinetic: np.ndarray,
    xi: np.ndarray,
    policy: HopPolicy,
    substeps: int = 20,
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """One full U_SH step for every trajectory; returns accepted-hop mask.

    Mirrors :meth:`repro.qxmd.surface_hopping.FSSH.step` operation for
    operation -- propagate, decohere, select, price -- on the stacked
    arrays.  ``kinetic`` and ``xi`` are per-trajectory: the caller
    supplies ``path.kinetic[s] * swarm.ke_factor`` and one uniform draw
    per trajectory from its :func:`trajectory_rng` stream.

    ``backend`` selects the array-API substrate for the amplitude-heavy
    kernels (propagation, decoherence, hop probabilities); hop selection
    and pricing stay on the host either way.  The swarm's stored state
    is always NumPy -- the substrate is internal to the step.
    """
    assert swarm.ke_factor is not None and swarm.hop_counts is not None
    b = get_backend(backend)
    if b.native:
        c = propagate_amplitudes_batch(
            swarm.amplitudes, energies, nac, dt, substeps
        )
        if policy.dec_correction == "edc":
            c = apply_edc_batch(
                c, swarm.active, energies, dt, kinetic, policy.edc_parameter
            )
        g = hop_probabilities_batch(c, swarm.active, nac, dt)
    else:
        xp = b.xp
        cx = b.asarray(swarm.amplitudes)
        ex = b.asarray(energies)
        nacx = b.asarray(nac)
        actx = b.asarray(swarm.active)
        cx = propagate_amplitudes_batch_xp(xp, cx, ex, nacx, dt, substeps)
        if policy.dec_correction == "edc":
            cx = apply_edc_batch_xp(
                xp, cx, actx, ex, dt, b.asarray(kinetic),
                policy.edc_parameter,
            )
        gx = hop_probabilities_batch_xp(xp, cx, actx, nacx, dt)
        c = to_numpy(cx)
        g = to_numpy(gx)
    target = select_hops(g, xi)
    attempted = target >= 0
    safe_target = np.where(attempted, target, swarm.active)
    de = energies[safe_target] - energies[swarm.active]
    accepted, scale = resolve_hops(de, kinetic, policy)
    accepted = accepted & attempted
    scale = np.where(attempted, scale, 1.0)
    swarm.amplitudes = c
    swarm.active = np.where(accepted, safe_target, swarm.active)
    swarm.hop_counts = swarm.hop_counts + accepted
    # Multiplying by an exact 1.0 where nothing changed keeps the factor
    # bit-identical to the standalone loop's conditional update.
    swarm.ke_factor = swarm.ke_factor * (scale * scale)
    return accepted


@dataclass(frozen=True)
class TrajectoryTrace:
    """Per-step record of one trajectory (batched or standalone)."""

    populations: np.ndarray   # (nsteps, nstates)
    actives: np.ndarray       # (nsteps,)
    amplitudes: np.ndarray    # final (nstates,) complex
    ke_factor: float
    hops: int


def run_reference_trajectory(
    path: ClassicalPath,
    index: int,
    seed: int,
    istate: int,
    substeps: int = 20,
    policy: Optional[HopPolicy] = None,
) -> TrajectoryTrace:
    """The standalone FSSH loop: bit-level ground truth for one trajectory.

    Exactly what the ensemble engine computes for trajectory ``index``,
    expressed through the public single-carrier :class:`FSSH` API on the
    :func:`trajectory_rng` ``(seed, index)`` stream.  The equivalence
    harness diff's this against the batch-extracted trajectory.
    """
    policy = policy if policy is not None else HopPolicy()
    fssh = FSSH(trajectory_rng(seed, index), substeps=substeps, policy=policy)
    state = SurfaceHoppingState.on_state(path.nstates, istate)
    ke_factor = 1.0
    populations = np.empty((path.nsteps, path.nstates), dtype=np.float64)
    actives = np.empty(path.nsteps, dtype=np.int64)
    for s in range(path.nsteps):
        ke = path.kinetic[s] * ke_factor
        _, scale = fssh.step(
            state, path.energies[s], path.nac[s], path.dt, ke
        )
        if scale != 1.0:
            ke_factor *= scale * scale
        populations[s] = state.populations
        actives[s] = state.active
    hops = sum(1 for e in fssh.events if e.accepted)
    return TrajectoryTrace(
        populations=populations,
        actives=actives,
        amplitudes=state.amplitudes.copy(),
        ke_factor=ke_factor,
        hops=hops,
    )
