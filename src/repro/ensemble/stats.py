"""Ensemble statistics and the two-sample tests of the validation harness.

The observables the paper's QXMD section averages over trajectories --
state populations, active-state (surface) fractions, electronic
coherence -- are computed here from the stacked per-step traces the
engine assembles, and compared across implementations with a two-sample
Kolmogorov-Smirnov test plus a stderr-overlap criterion (both
self-contained; no SciPy dependence on this path).

Coherence is reported as the linear entropy ``1 - sum_k p_k^2`` of each
trajectory's population vector: 0 for a fully collapsed (pure-state)
carrier, approaching ``1 - 1/nstates`` for maximal spreading.  The EDC
correction exists precisely to pull this down between hops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EnsembleStats:
    """Per-step ensemble summary statistics.

    All arrays are indexed by MD step; ``pop_*`` and
    ``active_fraction`` additionally by adiabatic state.
    """

    pop_mean: np.ndarray          # (nsteps, nstates)
    pop_stderr: np.ndarray        # (nsteps, nstates)
    active_fraction: np.ndarray   # (nsteps, nstates)
    active_counts: np.ndarray     # (nsteps, nstates) int
    coherence_mean: np.ndarray    # (nsteps,)
    coherence_stderr: np.ndarray  # (nsteps,)
    ntraj: int


def compute_stats(populations: np.ndarray, actives: np.ndarray) -> EnsembleStats:
    """Summarize stacked traces ``(nsteps, ntraj, nstates)`` / ``(nsteps, ntraj)``.

    Deterministic given its inputs; because the engine assembles the
    stacked traces in trajectory order regardless of batch size or
    backend, the statistics are invariant to how the swarm was chunked.
    """
    populations = np.asarray(populations, dtype=np.float64)
    actives = np.asarray(actives)
    if populations.ndim != 3:
        raise ValueError("populations must have shape (nsteps, ntraj, nstates)")
    nsteps, ntraj, nstates = populations.shape
    if actives.shape != (nsteps, ntraj):
        raise ValueError("actives shape does not match populations")
    if ntraj < 1:
        raise ValueError("need at least one trajectory")
    pop_mean = populations.mean(axis=1)
    coherence = 1.0 - np.sum(populations**2, axis=2)   # (nsteps, ntraj)
    coherence_mean = coherence.mean(axis=1)
    if ntraj > 1:
        pop_stderr = populations.std(axis=1, ddof=1) / np.sqrt(ntraj)
        coherence_stderr = coherence.std(axis=1, ddof=1) / np.sqrt(ntraj)
    else:
        pop_stderr = np.zeros_like(pop_mean)
        coherence_stderr = np.zeros_like(coherence_mean)
    counts = np.zeros((nsteps, nstates), dtype=np.int64)
    for k in range(nstates):
        counts[:, k] = np.sum(actives == k, axis=1)
    return EnsembleStats(
        pop_mean=pop_mean,
        pop_stderr=pop_stderr,
        active_fraction=counts / float(ntraj),
        active_counts=counts,
        coherence_mean=coherence_mean,
        coherence_stderr=coherence_stderr,
        ntraj=ntraj,
    )


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic sup |ECDF_a - ECDF_b|."""
    a = np.sort(np.asarray(a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(b, dtype=np.float64).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_pvalue(d: float, n: int, m: int) -> float:
    """Asymptotic two-sample KS p-value (Kolmogorov Q with the
    Stephens small-sample correction)."""
    if n < 1 or m < 1:
        raise ValueError("sample sizes must be positive")
    en = np.sqrt(n * m / float(n + m))
    lam = (en + 0.12 + 0.11 / en) * d
    if lam <= 0:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * np.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_test(a: np.ndarray, b: np.ndarray) -> "tuple[float, float]":
    """Two-sample KS statistic and asymptotic p-value."""
    d = ks_statistic(a, b)
    return d, ks_pvalue(d, np.asarray(a).size, np.asarray(b).size)


def stderr_overlap(
    mean_a: np.ndarray,
    stderr_a: np.ndarray,
    mean_b: np.ndarray,
    stderr_b: np.ndarray,
    nsigma: float = 3.0,
) -> bool:
    """Whether two mean traces agree within combined standard errors.

    Elementwise ``|mean_a - mean_b| <= nsigma * sqrt(se_a^2 + se_b^2)``
    (with a tiny absolute floor so identical zero-variance traces pass),
    reduced over all elements.
    """
    tol = nsigma * np.sqrt(
        np.asarray(stderr_a) ** 2 + np.asarray(stderr_b) ** 2
    ) + 1e-12
    return bool(np.all(np.abs(np.asarray(mean_a) - np.asarray(mean_b)) <= tol))
