"""The trajectory-ensemble engine: batched swarms over a DomainExecutor.

The engine splits an ``ntraj`` ensemble into contiguous batches (the
``ensemble.swarm`` tunable's ``batch_size``), runs each batch as one
picklable executor task -- a full swarm sweep over the classical path --
and reassembles the per-trajectory traces *in trajectory order*, so the
resulting stacked arrays (and every statistic computed from them) are
identical for any batch size, backend or worker count.

:class:`EnsembleRun` is the supervisable face of the engine: one batch
*round* (up to ``round_size`` batches through the executor) is one
"MD step" to the PR-1/PR-6
:class:`~repro.resilience.supervisor.RunSupervisor`, and
``save_state``/``load_state`` persist the partial ensemble through the
hardened checkpoint writer -- a crash mid-ensemble resumes with the
completed batches intact and replays only the missing ones, bit-
identically (each batch is a pure function of ``(path, seed, batch)``).
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

import numpy as np

from repro.ensemble.path import ClassicalPath
from repro.ensemble.stats import EnsembleStats, compute_stats
from repro.ensemble.swarm import SwarmState, step_swarm, trajectory_rng
from repro.obs import trace_span
from repro.parallel.executor import DomainExecutor, chunk_slices, make_executor
from repro.qxmd.sh_kernels import HopPolicy
from repro.resilience.checkpointing import CheckpointCorruptError

#: Version tag of the partial-ensemble checkpoint schema.
ENSEMBLE_CKPT_VERSION = 1


@dataclass
class EnsembleConfig:
    """What to run: swarm size, initial state, RNG seed, hop physics.

    ``istate=None`` starts every trajectory on the highest state of the
    path (the photoexcited carrier relaxing downward).  ``batch_size=
    None`` resolves from the active tuning profile's ``ensemble.swarm``
    tunable.  ``array_backend`` names the array-API substrate for the
    batched FSSH kernels (``None`` = native NumPy); it travels to the
    workers as a plain name, so process-spawn batches use it too.
    """

    ntraj: int = 32
    istate: Optional[int] = None
    seed: int = 2024
    substeps: int = 20
    policy: HopPolicy = field(default_factory=HopPolicy)
    batch_size: Optional[int] = None
    array_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.ntraj < 1:
            raise ValueError("ntraj must be positive")
        if self.substeps < 1:
            raise ValueError("substeps must be positive")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be positive (or None)")
        if self.istate is not None and self.istate < 0:
            raise ValueError("istate must be non-negative (or None)")
        if self.array_backend is not None:
            from repro.backend import get_backend

            # Validate and canonicalize eagerly ("auto" -> "numpy"), so
            # every batch task carries a resolved name.
            self.array_backend = get_backend(self.array_backend).name


def resolve_batch_size(config: EnsembleConfig) -> int:
    """The effective batch size: explicit config or the tuning profile."""
    if config.batch_size is not None:
        return config.batch_size
    from repro.tuning.profile import get_active_profile

    return int(get_active_profile().params_for("ensemble.swarm")["batch_size"])


@dataclass(frozen=True)
class BatchResult:
    """Everything one batch task hands back (fresh arrays, picklable)."""

    lo: int
    hi: int
    populations: np.ndarray       # (nsteps, hi-lo, nstates)
    actives: np.ndarray           # (nsteps, hi-lo)
    hops: np.ndarray              # (hi-lo,)
    final_amplitudes: np.ndarray  # (hi-lo, nstates)
    final_active: np.ndarray      # (hi-lo,)
    ke_factor: np.ndarray         # (hi-lo,)


def _swarm_batch_task(args: Tuple[Any, ...]) -> BatchResult:
    """Executor task: sweep one batch of trajectories over the full path.

    ``args`` is ``(energies, nac, kinetic, dt, lo, hi, seed, istate,
    substeps, policy, array_backend)``.  Self-contained and
    placement-independent: the RNG streams come from ``(seed, trajectory
    index)`` carried in the item, never from worker state, so any
    backend, chunking or resume produces identical results.
    ``array_backend`` is a plain substrate name (or ``None``), resolved
    inside the worker.  Inputs may be read-only shared-memory views;
    they are only read, and every returned array is fresh.
    """
    (energies, nac, kinetic, dt, lo, hi, seed, istate, substeps,
     policy, array_backend) = args
    nsteps, nstates = energies.shape
    nb = hi - lo
    swarm = SwarmState.on_state(nb, nstates, istate)
    rngs = [trajectory_rng(seed, lo + t) for t in range(nb)]
    populations = np.empty((nsteps, nb, nstates), dtype=np.float64)
    actives = np.empty((nsteps, nb), dtype=np.int64)
    for s in range(nsteps):
        xi = np.array([rng.random() for rng in rngs])
        assert swarm.ke_factor is not None
        ke = kinetic[s] * swarm.ke_factor
        step_swarm(swarm, energies[s], nac[s], dt, ke, xi, policy,
                   substeps, backend=array_backend)
        populations[s] = swarm.populations
        actives[s] = swarm.active
    assert swarm.hop_counts is not None and swarm.ke_factor is not None
    return BatchResult(
        lo=lo,
        hi=hi,
        populations=populations,
        actives=actives,
        hops=swarm.hop_counts.copy(),
        final_amplitudes=swarm.amplitudes.copy(),
        final_active=swarm.active.copy(),
        ke_factor=swarm.ke_factor.copy(),
    )


@dataclass(frozen=True)
class EnsembleRoundRecord:
    """History record of one supervisable round (``.step`` contract)."""

    step: int
    batches_run: int
    batches_done: int
    batches_total: int
    hops_so_far: int


@dataclass(frozen=True)
class EnsembleResult:
    """A completed ensemble: stacked traces plus summary statistics."""

    stats: EnsembleStats
    populations: np.ndarray   # (nsteps, ntraj, nstates)
    actives: np.ndarray       # (nsteps, ntraj)
    hops: np.ndarray          # (ntraj,)
    final_amplitudes: np.ndarray
    final_active: np.ndarray
    ke_factor: np.ndarray


class EnsembleRun:
    """Supervisable, checkpointable execution of one trajectory ensemble.

    Satisfies the supervisor's
    :class:`~repro.resilience.supervisor.SupervisableRun` protocol: one
    ``md_step()`` runs up to ``round_size`` pending batches through the
    executor; ``save_state``/``load_state`` persist the partial
    ensemble (completed-batch traces + done mask) so the hardened
    checkpoint writer and ``--restart`` machinery work unchanged.
    """

    def __init__(
        self,
        path: ClassicalPath,
        config: Optional[EnsembleConfig] = None,
        backend: Optional[str] = "serial",
        workers: Optional[int] = 1,
        round_size: Optional[int] = None,
        executor: Optional[DomainExecutor] = None,
        **executor_extras: Any,
    ) -> None:
        self.path = path
        self.config = config if config is not None else EnsembleConfig()
        self.batch_size = resolve_batch_size(self.config)
        self.istate = (self.config.istate if self.config.istate is not None
                       else path.nstates - 1)
        if self.istate >= path.nstates:
            raise ValueError("istate outside the path's state range")
        self.batches = chunk_slices(self.config.ntraj, self.batch_size)
        self.round_size = (round_size if round_size is not None
                           else max(1, workers if workers is not None else 1))
        if self.round_size < 1:
            raise ValueError("round_size must be positive")
        self._executor = executor
        self._backend = backend
        self._workers = workers
        self._executor_extras = executor_extras
        ntraj, nsteps, nstates = (self.config.ntraj, path.nsteps,
                                  path.nstates)
        self.populations = np.zeros((nsteps, ntraj, nstates))
        self.actives = np.zeros((nsteps, ntraj), dtype=np.int64)
        self.hops = np.zeros(ntraj, dtype=np.int64)
        self.final_amplitudes = np.zeros((ntraj, nstates),
                                         dtype=np.complex128)
        self.final_active = np.zeros(ntraj, dtype=np.int64)
        self.ke_factor = np.ones(ntraj, dtype=np.float64)
        self.done = np.zeros(len(self.batches), dtype=bool)
        self.step_count = 0
        self.time = 0.0
        self.history: List[EnsembleRoundRecord] = []
        self.health_guard: Any = None

    # ------------------------------------------------------------------ #
    @property
    def complete(self) -> bool:
        return bool(self.done.all())

    @property
    def rounds_remaining(self) -> int:
        """Supervisable steps needed to finish the pending batches."""
        pending = int(np.count_nonzero(~self.done))
        return math.ceil(pending / self.round_size)

    def _get_executor(self) -> DomainExecutor:
        if self._executor is None:
            self._executor = make_executor(
                self._backend, workers=self._workers,
                seed=self.config.seed, **self._executor_extras,
            )
        return self._executor

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()

    def __enter__(self) -> "EnsembleRun":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _batch_item(self, index: int) -> Tuple[Any, ...]:
        lo, hi = self.batches[index]
        return (self.path.energies, self.path.nac, self.path.kinetic,
                self.path.dt, lo, hi, self.config.seed, self.istate,
                self.config.substeps, self.config.policy,
                self.config.array_backend)

    def _apply(self, index: int, res: BatchResult) -> None:
        lo, hi = res.lo, res.hi
        self.populations[:, lo:hi, :] = res.populations
        self.actives[:, lo:hi] = res.actives
        self.hops[lo:hi] = res.hops
        self.final_amplitudes[lo:hi] = res.final_amplitudes
        self.final_active[lo:hi] = res.final_active
        self.ke_factor[lo:hi] = res.ke_factor
        self.done[index] = True

    def md_step(self) -> EnsembleRoundRecord:
        """Run one round of pending batches (the supervisable unit)."""
        todo = np.nonzero(~self.done)[0][: self.round_size]
        if todo.size:
            items = [self._batch_item(int(i)) for i in todo]
            with trace_span("ensemble.round", "md",
                            round=self.step_count, batches=len(items),
                            ntraj=self.config.ntraj):
                results = self._get_executor().map(
                    _swarm_batch_task, items, label="ensemble.batches"
                )
            for i, res in zip(todo, results):
                self._apply(int(i), res)
        self.step_count += 1
        self.time = float(self.step_count)
        record = EnsembleRoundRecord(
            step=self.step_count,
            batches_run=int(todo.size),
            batches_done=int(np.count_nonzero(self.done)),
            batches_total=len(self.batches),
            hops_so_far=int(self.hops.sum()),
        )
        self.history.append(record)
        return record

    def run(self) -> EnsembleResult:
        """Run every pending round; returns the completed ensemble."""
        while not self.complete:
            self.md_step()
        return self.result()

    def result(self) -> EnsembleResult:
        """Assemble the final :class:`EnsembleResult`; all batches must
        be done (raises ``RuntimeError`` on a partial ensemble)."""
        if not self.complete:
            raise RuntimeError(
                f"ensemble incomplete: {int(np.count_nonzero(self.done))}"
                f"/{len(self.batches)} batches done"
            )
        return EnsembleResult(
            stats=compute_stats(self.populations, self.actives),
            populations=self.populations,
            actives=self.actives,
            hops=self.hops,
            final_amplitudes=self.final_amplitudes,
            final_active=self.final_active,
            ke_factor=self.ke_factor,
        )

    # ------------------------------------------------------------------ #
    def _fingerprint(self) -> str:
        """Config digest a checkpoint must match to be resumable here.

        The payload is hashed through the shared
        :func:`repro.artifacts.fingerprint.config_hash` helper -- the
        same canonical-JSON digest that keys tuning winners and serve
        artifacts -- so "which run wrote this checkpoint" and "which
        config produced this artifact" are answered by one scheme.
        """
        from repro.artifacts.fingerprint import config_hash

        p = self.config.policy
        return config_hash({
            "version": ENSEMBLE_CKPT_VERSION,
            "ntraj": self.config.ntraj,
            "seed": self.config.seed,
            "substeps": self.config.substeps,
            "istate": self.istate,
            "batch_size": self.batch_size,
            "nsteps": self.path.nsteps,
            "nstates": self.path.nstates,
            "dt": self.path.dt,
            "policy": [p.hop_rescale, p.hop_reject,
                       p.dec_correction or "", p.edc_parameter],
            # Cross-substrate trajectories agree only to ~1e-10, so a
            # resume on a different substrate must be rejected outright.
            "array_backend": self.config.array_backend or "numpy",
        })

    def save_state(self, path: Union[str, pathlib.Path]) -> None:
        """Archive the partial ensemble (checkpoint-writer callback)."""
        meta = {"fingerprint": self._fingerprint()}
        meta["step_count"] = self.step_count
        np.savez(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            populations=self.populations,
            actives=self.actives,
            hops=self.hops,
            final_amplitudes=self.final_amplitudes,
            final_active=self.final_active,
            ke_factor=self.ke_factor,
            done=self.done,
        )

    def load_state(self, path: Union[str, pathlib.Path]) -> None:
        """Restore a partial ensemble written by :meth:`save_state`.

        Two-phase: every array is read and validated against this run's
        configuration fingerprint before any state is touched.  A
        fingerprint mismatch raises
        :class:`~repro.resilience.checkpointing.CheckpointCorruptError`
        so the restore machinery falls back a generation rather than
        splicing an incompatible ensemble into this run.
        """
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            loaded = {
                key: archive[key]
                for key in ("populations", "actives", "hops",
                            "final_amplitudes", "final_active",
                            "ke_factor", "done")
            }
        step_count = int(meta.pop("step_count", -1))
        expected = self._fingerprint()
        if meta.get("fingerprint") != expected:
            raise CheckpointCorruptError(
                f"ensemble checkpoint fingerprint mismatch: "
                f"{meta.get('fingerprint')} != {expected}"
            )
        if loaded["populations"].shape != self.populations.shape or \
                loaded["done"].shape != self.done.shape:
            raise CheckpointCorruptError(
                "ensemble checkpoint array shapes do not match the run"
            )
        self.populations = loaded["populations"]
        self.actives = loaded["actives"]
        self.hops = loaded["hops"]
        self.final_amplitudes = loaded["final_amplitudes"]
        self.final_active = loaded["final_active"]
        self.ke_factor = loaded["ke_factor"]
        self.done = loaded["done"].astype(bool)
        self.step_count = step_count
        self.time = float(step_count)


def run_ensemble(
    path: ClassicalPath,
    config: Optional[EnsembleConfig] = None,
    backend: str = "serial",
    workers: int = 1,
    round_size: Optional[int] = None,
    **executor_extras: Any,
) -> EnsembleResult:
    """Convenience wrapper: run a full ensemble and return its result."""
    with EnsembleRun(path, config, backend=backend, workers=workers,
                     round_size=round_size, **executor_extras) as run:
        return run.run()
