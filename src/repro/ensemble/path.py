"""Classical paths: the precomputed nuclear data a swarm rides on.

The classical-path approximation (CPA, ported from unixmd's ``cpa``
driver family) decouples the stochastic electronic dynamics from the
nuclear propagation: one representative nuclear trajectory supplies the
time series of adiabatic energies, nonadiabatic couplings and kinetic
energy, and every swarm member re-runs only the cheap electronic
subsystem (amplitudes + hops) on top of it.  That is what makes
thousand-trajectory ensembles affordable -- and what makes the ensemble
engine testable, because the nuclear data is bitwise identical for
every trajectory, batch size and backend.

Two sources of paths:

* :func:`model_path` -- a seeded synthetic avoided-crossing model, used
  by the test harness, the golden-ensemble fixture and the benchmarks;
* :func:`path_from_simulation` -- harvested from a live
  :class:`~repro.core.mesh.DCMESHSimulation`, coupling the ensemble
  engine to the real DC-MESH electronic structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.mesh import DCMESHSimulation


@dataclass(frozen=True)
class ClassicalPath:
    """Precomputed per-step electronic/nuclear data for a swarm.

    Attributes
    ----------
    energies:
        Adiabatic state energies, shape ``(nsteps, nstates)``.
    nac:
        Nonadiabatic coupling matrices, shape
        ``(nsteps, nstates, nstates)``, anti-Hermitian per step.
    kinetic:
        Nuclear kinetic energy per step, shape ``(nsteps,)``.  Each
        trajectory sees ``kinetic[s] * ke_factor`` where its private
        ``ke_factor`` accumulates the velocity rescales of its hops.
    dt:
        MD time step (atomic units).
    """

    energies: np.ndarray
    nac: np.ndarray
    kinetic: np.ndarray
    dt: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "energies",
                           np.asarray(self.energies, dtype=np.float64))
        object.__setattr__(self, "nac",
                           np.asarray(self.nac, dtype=np.complex128))
        object.__setattr__(self, "kinetic",
                           np.asarray(self.kinetic, dtype=np.float64))
        if self.energies.ndim != 2:
            raise ValueError("energies must have shape (nsteps, nstates)")
        nsteps, nstates = self.energies.shape
        if nsteps < 1 or nstates < 2:
            raise ValueError("a path needs >= 1 step and >= 2 states")
        if self.nac.shape != (nsteps, nstates, nstates):
            raise ValueError("nac shape does not match energies")
        if self.kinetic.shape != (nsteps,):
            raise ValueError("kinetic shape does not match energies")
        if np.any(self.kinetic < 0):
            raise ValueError("kinetic energies must be non-negative")
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    @property
    def nsteps(self) -> int:
        return self.energies.shape[0]

    @property
    def nstates(self) -> int:
        return self.energies.shape[1]


def model_path(
    nsteps: int,
    nstates: int = 4,
    dt: float = 1.0,
    seed: int = 7,
    coupling: float = 0.02,
) -> ClassicalPath:
    """A seeded synthetic path with slowly breathing gaps and couplings.

    State energies oscillate around an evenly spaced ladder (so gaps
    periodically narrow, avoided-crossing style), the NAC is a smooth
    real antisymmetric matrix of magnitude ``coupling``, and the kinetic
    energy undulates around 0.3 Ha -- large enough that downward hops
    dominate but some upward hops are frustrated, exercising every
    branch of the hop policies.  Fully determined by the arguments.
    """
    rng = np.random.default_rng(np.random.SeedSequence((0x9A7, seed)))
    t = np.arange(nsteps) * dt
    ladder = np.linspace(0.0, 0.1 * (nstates - 1), nstates)
    freq = rng.uniform(0.002, 0.01, size=nstates)
    phase = rng.uniform(0.0, 2.0 * np.pi, size=nstates)
    energies = ladder[None, :] + 0.03 * np.sin(
        freq[None, :] * t[:, None] + phase[None, :]
    )
    amp = rng.uniform(0.3, 1.0, size=(nstates, nstates)) * coupling
    wij = rng.uniform(0.005, 0.02, size=(nstates, nstates))
    pij = rng.uniform(0.0, 2.0 * np.pi, size=(nstates, nstates))
    b = amp[None, :, :] * np.sin(
        wij[None, :, :] * t[:, None, None] + pij[None, :, :]
    )
    nac = (b - np.swapaxes(b, 1, 2)).astype(np.complex128)
    kinetic = 0.3 + 0.1 * np.sin(0.01 * t + rng.uniform(0, 2 * np.pi))
    return ClassicalPath(energies=energies, nac=nac, kinetic=kinetic, dt=dt)


def path_from_simulation(
    sim: "DCMESHSimulation",
    nsteps: int,
    nstates: int,
    alpha: int = 0,
) -> ClassicalPath:
    """Harvest a classical path from ``nsteps`` MD steps of a live sim.

    Advances ``sim`` (mutating it) and records, per step, the lowest
    ``nstates`` adiabatic eigenvalues of domain ``alpha``, the matching
    NAC block between consecutive steps, and the nuclear kinetic energy.
    This is the CPA sampling stage: run the expensive DC-MESH dynamics
    once, then relax an arbitrarily large swarm on the recorded data.
    """
    from repro.qxmd.md import kinetic_energy
    from repro.qxmd.nac import nonadiabatic_couplings

    if nsteps < 1:
        raise ValueError("nsteps must be positive")
    dt = sim.config.timescale.dt_md
    energies = np.empty((nsteps, nstates), dtype=np.float64)
    nac = np.empty((nsteps, nstates, nstates), dtype=np.complex128)
    kinetic = np.empty(nsteps, dtype=np.float64)
    prev_wf = sim.dc.states[alpha].wf.copy()
    if prev_wf.norb < nstates:
        raise ValueError(
            f"domain {alpha} has {prev_wf.norb} orbitals < {nstates} states"
        )
    for s in range(nsteps):
        sim.md_step()
        st = sim.dc.states[alpha]
        if st.wf.norb != prev_wf.norb:
            raise RuntimeError(
                "orbital count changed mid-harvest; cannot build NAC"
            )
        energies[s] = st.eigenvalues[:nstates]
        full = nonadiabatic_couplings(prev_wf, st.wf, dt)
        nac[s] = full[:nstates, :nstates]
        kinetic[s] = kinetic_energy(sim.md_state)
        prev_wf = st.wf.copy()
    return ClassicalPath(energies=energies, nac=nac, kinetic=kinetic, dt=dt)
