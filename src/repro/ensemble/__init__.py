"""Trajectory-ensemble engine: batched FSSH swarms over classical paths.

Surface hopping is a statistical method: the paper's QXMD observables
(population relaxation, carrier dynamics) only emerge from averages over
hundreds of stochastic trajectories.  This package vectorizes the
surface-hopping loop across a *swarm* -- stacked ``(ntraj, nstates)``
amplitude/active arrays stepped together through the batch-size-
invariant kernels of :mod:`repro.qxmd.sh_kernels` -- and fans batches
out over the serial/thread/process
:class:`~repro.parallel.executor.DomainExecutor`.

The defining contract: every trajectory in a swarm draws from its own
deterministic RNG stream keyed by ``(seed, trajectory index)`` (the
PR-4 executor scheme), and its batched evolution is **bit-identical** to
a standalone :class:`~repro.qxmd.surface_hopping.FSSH` loop on the same
stream.  ``tests/ensemble/test_ensemble_equivalence.py`` enforces this
at the exact (per-trajectory, bitwise) and statistical (ensemble
population trace, KS/stderr) tiers.
"""

from repro.ensemble.engine import (
    BatchResult,
    EnsembleConfig,
    EnsembleResult,
    EnsembleRoundRecord,
    EnsembleRun,
    resolve_batch_size,
    run_ensemble,
)
from repro.ensemble.path import ClassicalPath, model_path, path_from_simulation
from repro.ensemble.stats import (
    EnsembleStats,
    compute_stats,
    ks_pvalue,
    ks_statistic,
    ks_test,
    stderr_overlap,
)
from repro.ensemble.swarm import (
    SwarmState,
    TrajectoryTrace,
    run_reference_trajectory,
    step_swarm,
    trajectory_rng,
)

__all__ = [
    "BatchResult",
    "ClassicalPath",
    "EnsembleConfig",
    "EnsembleResult",
    "EnsembleRoundRecord",
    "EnsembleRun",
    "EnsembleStats",
    "SwarmState",
    "TrajectoryTrace",
    "compute_stats",
    "ks_pvalue",
    "ks_statistic",
    "ks_test",
    "model_path",
    "path_from_simulation",
    "resolve_batch_size",
    "run_ensemble",
    "run_reference_trajectory",
    "stderr_overlap",
    "step_swarm",
    "trajectory_rng",
]
