"""DCMESHSimulation: the coupled Maxwell-Ehrenfest-surface-hopping driver.

One MD step (Eq. 3) is orchestrated as:

1. **QXMD (CPU)** -- global-local SCF refresh of the adiabatic Kohn-Sham
   states at the new atomic positions (3 SCF x 3 CG in the paper).
2. **Surface hopping** -- nonadiabatic couplings from consecutive
   adiabatic orbital sets drive fewest-switches hops of the excited
   carriers; occupations and nuclear kinetic energy are updated.
3. **Scissor setup** -- Delta_sci (Eq. 8) and the unoccupied reference
   block are computed once and shipped to the (virtual) GPU.
4. **LFD (GPU)** -- N_QD quantum sub-steps of the laser-driven TDDFT
   propagator (Eq. 6) per domain; final orbitals are remapped to
   occupation numbers, the only data returned (shadow dynamics).
5. **Forces + MD** -- excited-state (occupation-weighted) forces move
   the atoms by Delta_MD (velocity Verlet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.scissor import scissor_shift
from repro.core.shadow import ShadowLedger
from repro.core.timescale import TimescaleSplit
from repro.device.gpu import VirtualGPU
from repro.grids.domain import DomainDecomposition
from repro.grids.grid import Grid3D
from repro.lfd.nonlocal_corr import NonlocalCorrector
from repro.lfd.observables import density
from repro.lfd.occupations import remap_occ
from repro.lfd.propagator import PropagatorConfig, QDPropagator
from repro.lfd.wavefunction import WaveFunctionSet
from repro.maxwell.laser import LaserPulse
from repro.obs import trace_span
from repro.pseudo.elements import PseudoSpecies
from repro.qxmd.dftsolver import DCResult, GlobalDCSolver
from repro.qxmd.forces import ForceCalculator
from repro.qxmd.md import MDState, kinetic_energy, temperature
from repro.qxmd.nac import nonadiabatic_couplings
from repro.qxmd.sh_kernels import HopPolicy
from repro.qxmd.surface_hopping import FSSH, SurfaceHoppingState


@dataclass
class DCMESHConfig:
    """Top-level simulation configuration."""

    timescale: TimescaleSplit = field(
        default_factory=lambda: TimescaleSplit(dt_md=20.0, n_qd=20)
    )
    nscf: int = 3
    ncg: int = 3
    norb_extra: int = 2
    mixing: float = 0.4
    kin_variant: str = "collapsed"
    include_nonlocal: bool = True
    use_scissor: bool = True
    use_surface_hopping: bool = True
    include_nonlocal_forces: bool = True
    conserve_charge: bool = True
    decoherence_c: Optional[float] = None
    hop_policy: Optional["HopPolicy"] = None
    seed: int = 1234
    array_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.nscf < 1 or self.ncg < 0 or self.norb_extra < 1:
            raise ValueError("nscf >= 1, ncg >= 0, norb_extra >= 1 required")
        if not (0.0 < self.mixing <= 1.0):
            raise ValueError("mixing must be in (0, 1]")
        from repro.lfd.kin_prop import KIN_PROP_VARIANTS

        if self.kin_variant not in KIN_PROP_VARIANTS:
            raise ValueError(
                f"unknown kin_variant {self.kin_variant!r}; "
                f"options: {sorted(KIN_PROP_VARIANTS)}"
            )
        if self.array_backend is not None:
            from repro.backend import get_backend

            # Validate eagerly and normalize "auto"; the name (a plain
            # string) is what crosses the executor pickling boundary.
            self.array_backend = get_backend(self.array_backend).name


@dataclass(frozen=True)
class DomainFieldSampler:
    """Picklable ``A(t)`` sampler for one domain's LFD window.

    Replaces the old closure over the simulation clock so LFD tasks can
    cross a process boundary: the window start time is captured as data,
    and ``t`` is the offset within the current MD step (the dipole
    approximation samples the pulse identically in every domain).
    """

    laser: LaserPulse
    t0: float

    def __call__(self, t: float) -> np.ndarray:
        return self.laser.vector_potential(self.t0 + t)


def _lfd_domain_task(args: tuple) -> np.ndarray:
    """Executor task: propagate one domain through its N_QD sub-steps.

    ``args`` is ``(local_grid, psi, occupations, vloc, dsci,
    use_corrector, conserve_charge, kin_variant, dt_qd, n_qd, sampler,
    guard, array_backend)``.  The adiabatic orbitals are never modified
    (shadow dynamics); only the remapped occupations come back.
    Read-only shared-memory inputs are copied before use under the
    process backend.  ``array_backend`` travels as a plain name (or
    None); the worker re-resolves the namespace in its own interpreter.
    """
    (local_grid, psi, occupations, vloc, dsci, use_corrector,
     conserve_charge, kin_variant, dt_qd, n_qd, sampler, guard,
     array_backend) = args
    if not psi.flags.writeable:
        psi = psi.copy()
    basis = WaveFunctionSet(local_grid, psi.shape[-1], data=psi, copy=False)
    prop_wf = basis.copy()
    corrector = None
    if use_corrector:
        lumo = int(np.ceil(float(occupations.sum()) / 2.0 - 1e-9))
        if lumo < basis.norb:
            ref = WaveFunctionSet(
                basis.grid,
                basis.norb - lumo,
                dtype=basis.dtype,
                data=basis.psi[..., lumo:],
            )
            corrector = NonlocalCorrector(ref, dsci, backend=array_backend)
    prop = QDPropagator(
        prop_wf,
        vloc,
        PropagatorConfig(dt=dt_qd, kin_variant=kin_variant,
                         backend=array_backend),
        corrector=corrector,
        a_of_t=sampler,
        guard=guard,
    )
    prop.run(n_qd)
    nelec = float(occupations.sum())
    new_occ = remap_occ(prop.wf, basis, occupations)
    if conserve_charge:
        # The finite adiabatic basis cannot capture the whole propagated
        # state; rescale the remapped occupations so the projection
        # leakage does not drain charge.
        total = float(new_occ.sum())
        if total > 0.0:
            new_occ *= nelec / total
    return new_occ


@dataclass
class MDStepRecord:
    """Observables of one completed MD step."""

    step: int
    time: float
    temperature: float
    band_energy: float
    excited_population: float
    scissor_shifts: List[float]
    hops: int
    handshake_bytes: int
    vector_potential: np.ndarray


class DCMESHSimulation:
    """A complete DC-MESH simulation instance.

    Parameters
    ----------
    grid:
        Global periodic grid (shape divisible by the domain counts, local
        grids even-sized for the pair-split kinetic propagator).
    ndomains:
        DC domain lattice.
    positions, species:
        The atomic configuration.
    laser:
        Optional pulse; sampled at each domain centre (dipole
        approximation per domain).
    config:
        Numerical configuration.
    device:
        Optional virtual GPU; when present, LFD transfers and residency
        are charged to its clock and the shadow ledger audits the traffic.
    executor:
        Optional :class:`repro.parallel.executor.DomainExecutor` running
        the per-domain SCF refinements and LFD propagations (None means
        serial).  Every backend produces the same physics.
    """

    def __init__(
        self,
        grid: Grid3D,
        ndomains: tuple,
        positions: np.ndarray,
        species: Sequence[PseudoSpecies],
        laser: Optional[LaserPulse] = None,
        config: Optional[DCMESHConfig] = None,
        device: Optional[VirtualGPU] = None,
        buffer_width: int = 2,
        executor=None,
    ) -> None:
        self.executor = executor
        self.grid = grid
        self.config = config if config is not None else DCMESHConfig()
        self.decomposition = DomainDecomposition(grid, ndomains, buffer_width)
        self.positions = np.asarray(positions, dtype=float)
        self.species = list(species)
        self.laser = laser
        self.device = device
        self.ledger = ShadowLedger(device.transfer if device is not None else None)
        self.rng = np.random.default_rng(self.config.seed)
        if self.config.hop_policy is not None:
            self.fssh = FSSH(self.rng, policy=self.config.hop_policy)
        else:
            self.fssh = FSSH(self.rng, decoherence_c=self.config.decoherence_c)
        self.carriers: Dict[int, List[SurfaceHoppingState]] = {}

        masses = np.array([sp.mass for sp in self.species])
        self.md_state = MDState(
            positions=self.positions.copy(),
            velocities=np.zeros_like(self.positions),
            masses=masses,
        )
        self.time = 0.0
        self.step_count = 0
        self.history: List[MDStepRecord] = []
        self._prev_forces: Optional[np.ndarray] = None
        # Optional numerical health guard (repro.resilience.guards).
        # Guards only read state, so a sim with no guard installed is
        # bit-identical to one running under a RunSupervisor that never
        # trips a check.
        self.health_guard = None

        # Initial electronic structure.
        self.dc: DCResult = self._solve_qxmd(warm=None)
        self.force_calc = ForceCalculator(grid, self.species)
        psi_bytes = sum(st.wf.nbytes for st in self.dc.states)
        self.ledger.record_psi_upload(psi_bytes, pinned=True)

    # ------------------------------------------------------------------ #
    def _executor(self):
        """The configured executor, defaulting to a fresh serial backend."""
        if self.executor is None:
            from repro.parallel.backends.serial import SerialBackend

            self.executor = SerialBackend(seed=self.config.seed)
        return self.executor

    def _solve_qxmd(self, warm: Optional[DCResult]) -> DCResult:
        solver = GlobalDCSolver(
            self.grid,
            self.decomposition,
            self.md_state.positions if hasattr(self, "md_state") else self.positions,
            self.species,
            norb_extra=self.config.norb_extra,
            nscf=self.config.nscf,
            ncg=self.config.ncg,
            mixing=self.config.mixing,
            include_nonlocal=self.config.include_nonlocal,
            seed=self.config.seed,
            executor=self._executor(),
        )
        if warm is not None:
            # Warm start: seed each domain with the previous orbitals when
            # the orbital counts still match (atoms stayed in their cores).
            return solver.solve(warm_wfs=[st.wf for st in warm.states])
        return solver.solve()

    # ------------------------------------------------------------------ #
    def excite_carrier(self, domain_alpha: int, target_offset: int = 1) -> None:
        """Promote one electron of a domain from its HOMO upward.

        ``target_offset`` = 1 puts the carrier on the LUMO.  This models
        the photo-excited electron whose surface-hopping dynamics steers
        the lattice (the Fig. 7 scenario seeds carriers via the laser).
        """
        st = self.dc.states[domain_alpha]
        nelec = float(st.occupations.sum())
        if nelec <= 0:
            raise ValueError("domain has no occupied states")
        homo = int(np.ceil(nelec / 2.0 - 1e-9)) - 1
        target = homo + target_offset
        if target >= st.wf.norb:
            raise ValueError("target state outside the orbital set")
        carrier = SurfaceHoppingState.on_state(st.wf.norb, target)
        self.carriers.setdefault(domain_alpha, []).append(carrier)
        st.occupations[homo] -= 1.0
        st.occupations[target] += 1.0

    def excited_population(self) -> float:
        """Total electron population above each domain's ground filling."""
        total = 0.0
        for st in self.dc.states:
            nelec = st.occupations.sum()
            nfull = int(nelec // 2)
            total += float(st.occupations[nfull:].sum())
        return total

    # ------------------------------------------------------------------ #
    def _domain_a_of_t(self, alpha: int) -> Optional[DomainFieldSampler]:
        if self.laser is None:
            return None
        return DomainFieldSampler(laser=self.laser, t0=self.time)

    def _run_lfd(self, scissors: List[float]) -> int:
        """Run the N_QD LFD sub-steps in every domain; returns handshake bytes."""
        cfg = self.config
        ts = cfg.timescale
        use_corrector = cfg.use_scissor and cfg.include_nonlocal
        items = [
            (st.domain.local_grid, st.wf.psi, st.occupations, st.vloc,
             dsci, use_corrector, cfg.conserve_charge, cfg.kin_variant,
             ts.dt_qd, ts.n_qd, self._domain_a_of_t(st.domain.alpha),
             self.health_guard, cfg.array_backend)
            for st, dsci in zip(self.dc.states, scissors)
        ]
        new_occs = self._executor().map(
            _lfd_domain_task, items, label="lfd.domains"
        )
        handshake_total = 0
        for st, occ in zip(self.dc.states, new_occs):
            st.occupations = occ
            if self.device is not None:
                # The per-step handshake stages vloc/occupations through a
                # transient device buffer (enter data / exit data around the
                # LFD call); modeling the allocation keeps the allocator --
                # and its OOM path -- on the per-MD-step hot path.
                staging = self.device.array(
                    st.occupations, pinned=True, tag="handshake_staging"
                )
                staging.free()
            rec = self.ledger.record_handshake(
                md_step=self.step_count,
                vloc_bytes=st.vloc.nbytes,
                occ_count=st.occupations.size,
                psi_bytes_resident=2 * st.wf.nbytes,
                pinned=True,
            )
            handshake_total += rec.total
        return handshake_total

    def _surface_hopping(self, prev: DCResult) -> int:
        """FSSH update of all carriers; returns the number of accepted hops."""
        hops = 0
        dt = self.config.timescale.dt_md
        ke = kinetic_energy(self.md_state)
        for alpha, carriers in self.carriers.items():
            st_prev = prev.states[alpha]
            st_new = self.dc.states[alpha]
            if st_prev.wf.norb != st_new.wf.norb:
                continue
            nac = nonadiabatic_couplings(st_prev.wf, st_new.wf, dt)
            for carrier in carriers:
                old_active = carrier.active
                hopped, scale = self.fssh.step(
                    carrier, st_new.eigenvalues, nac, dt, ke
                )
                if hopped:
                    hops += 1
                    st_new.occupations[old_active] -= 1.0
                    st_new.occupations[carrier.active] += 1.0
                # The scale also carries frustrated-hop policy: -1.0
                # reverses the velocities under hop_reject="reverse".
                if scale != 1.0:
                    self.md_state.velocities *= scale
        return hops

    def _forces(self) -> np.ndarray:
        """Occupation-weighted (excited-state) forces on all atoms."""
        rho_global = self.decomposition.recombine(
            [density(st.wf, st.occupations) for st in self.dc.states]
        )
        f = self.force_calc.electrostatic_forces(self.md_state.positions, rho_global)
        from repro.pseudo.local import core_repulsion_pair_forces

        f += core_repulsion_pair_forces(self.grid, self.md_state.positions, self.species)
        if self.config.include_nonlocal_forces and self.config.include_nonlocal:
            for st in self.dc.states:
                if st.kb is None or not st.atom_indices:
                    continue
                local_calc = ForceCalculator(
                    st.domain.local_grid,
                    [self.species[i] for i in st.atom_indices],
                    poisson=None,
                )
                local_pos = self.md_state.positions[st.atom_indices]
                f_nl = local_calc.nonlocal_forces(
                    local_pos, st.wf, st.occupations, kb=st.kb
                )
                for row, atom in enumerate(st.atom_indices):
                    f[atom] += f_nl[row]
        return f

    # ------------------------------------------------------------------ #
    def md_step(self) -> MDStepRecord:
        """Advance the coupled system by one Delta_MD."""
        cfg = self.config
        ts = cfg.timescale
        prev = self.dc

        with trace_span("md.step", "md", step=self.step_count + 1):
            # 1. QXMD: adiabatic states at the current positions.
            with trace_span("qxmd.refresh", "scf"):
                self.dc = self._solve_qxmd(warm=prev)
            for st_new, st_old in zip(self.dc.states, prev.states):
                if st_new.wf.norb == st_old.wf.norb:
                    st_new.occupations = st_old.occupations.copy()

            # 2. Surface hopping (U_SH of Eq. 3).
            hops = 0
            if cfg.use_surface_hopping and self.carriers and self.step_count > 0:
                with trace_span("surface_hopping", "md"):
                    hops = self._surface_hopping(prev)

            # 3. Scissor shifts (Eq. 8), once per MD step.
            scissors = []
            with trace_span("scissor_setup", "scf"):
                for st in self.dc.states:
                    if cfg.use_scissor and st.kb is not None:
                        from repro.qxmd.hamiltonian import KSHamiltonian

                        ham = KSHamiltonian(st.domain.local_grid, st.vloc, kb=st.kb)
                        scissors.append(scissor_shift(ham, st.wf, st.occupations))
                    else:
                        scissors.append(0.0)

            # 4. LFD: laser-driven propagation + occupation remap (shadow).
            with trace_span("lfd.domains", "lfd", ndomains=len(self.dc.states)):
                handshake = self._run_lfd(scissors)

            # 5. Excited-state forces + velocity Verlet.
            with trace_span("forces", "forces"):
                forces = self._forces()
            m = self.md_state.masses[:, None]
            f0 = self._prev_forces if self._prev_forces is not None else forces
            dt = ts.dt_md
            self.md_state.velocities = (
                self.md_state.velocities + 0.5 * (f0 + forces) / m * dt
            )
            self.md_state.positions = (
                self.md_state.positions
                + self.md_state.velocities * dt
                + 0.5 * forces / m * dt * dt
            )
            self._prev_forces = forces

        self.time += dt
        self.step_count += 1
        a_now = (
            self.laser.vector_potential(self.time)
            if self.laser is not None
            else np.zeros(3)
        )
        record = MDStepRecord(
            step=self.step_count,
            time=self.time,
            temperature=temperature(self.md_state),
            band_energy=self.dc.band_sum(),
            excited_population=self.excited_population(),
            scissor_shifts=scissors,
            hops=hops,
            handshake_bytes=handshake,
            vector_potential=np.asarray(a_now),
        )
        if self.health_guard is not None:
            # May raise a typed NumericalHealthError *before* the record
            # is committed; the supervisor then replays from a checkpoint.
            self.health_guard.check_md_step(self, record)
        self.history.append(record)
        return record

    def run(self, nsteps: int) -> List[MDStepRecord]:
        """Run ``nsteps`` MD steps; returns their records."""
        if nsteps < 0:
            raise ValueError("nsteps must be non-negative")
        return [self.md_step() for _ in range(nsteps)]
