"""Checkpoint/restart for DC-MESH simulations.

Long NAQMD trajectories (the paper's production runs are thousands of MD
steps) need restart capability.  A checkpoint captures everything the MD
loop evolves: atomic positions/velocities, per-domain orbitals,
occupations and eigenvalues, surface-hopping carriers, cached forces,
simulation time and the RNG state -- so a restarted run continues the
*identical* trajectory (asserted by the tests).

Format: a single ``.npz`` archive; arrays are stored natively, small
structured state (carrier amplitudes, RNG state) via named entries.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Union

import numpy as np

from repro.backend import get_backend
from repro.core.mesh import DCMESHSimulation
from repro.qxmd.surface_hopping import SurfaceHoppingState
from repro.tuning.profile import (
    TuningProfile,
    get_active_profile,
    set_active_profile,
)

CHECKPOINT_VERSION = 1


def save_checkpoint(sim: DCMESHSimulation, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the full mutable state of a simulation to ``path`` (.npz)."""
    path = pathlib.Path(path)
    arrays = {
        "positions": sim.md_state.positions,
        "velocities": sim.md_state.velocities,
        "masses": sim.md_state.masses,
    }
    meta = {
        "version": CHECKPOINT_VERSION,
        "time": sim.time,
        "step_count": sim.step_count,
        "ndomains": len(sim.dc.states),
        "has_prev_forces": sim._prev_forces is not None,
        "carriers": {
            str(alpha): [c.active for c in carriers]
            for alpha, carriers in sim.carriers.items()
        },
        # Active tuning profile: a resumed run must replay the identical
        # tuned parameters (optional key; version stays 1).
        "tuning_profile": get_active_profile().to_dict(),
        # Array-API substrate the run was produced on (optional key;
        # pre-substrate checkpoints simply lack it).
        "array_backend": sim.config.array_backend or "numpy",
    }
    if sim._prev_forces is not None:
        arrays["prev_forces"] = sim._prev_forces
    for st in sim.dc.states:
        a = st.domain.alpha
        arrays[f"psi_{a}"] = st.wf.psi
        arrays[f"occ_{a}"] = st.occupations
        arrays[f"eig_{a}"] = st.eigenvalues
        arrays[f"vloc_{a}"] = st.vloc
    for alpha, carriers in sim.carriers.items():
        for i, c in enumerate(carriers):
            arrays[f"carrier_{alpha}_{i}"] = c.amplitudes
    # RNG state: serialize the bit-generator state deterministically.
    arrays["rng_state"] = np.frombuffer(
        json.dumps(sim.rng.bit_generator.state).encode(), dtype=np.uint8
    )
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    # Write through an explicit handle so the archive can be fsync'd:
    # the resilience layer renames this file into place, and a rename
    # must never publish a name whose blocks are still in flight.
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    return path


def load_checkpoint(sim: DCMESHSimulation, path: Union[str, pathlib.Path]) -> None:
    """Restore a checkpoint into a compatibly constructed simulation.

    ``sim`` must have been built with the same grid, domains, species and
    configuration as the checkpointed run; mismatches raise ValueError.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        # ---- phase 1: validate EVERYTHING before touching ``sim``. ----
        # A mid-load failure must not leave the simulation half-restored,
        # so every array is shape-checked (and the RNG state parsed)
        # first; only then is any state applied.
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta["version"] != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {meta['version']} != "
                f"supported {CHECKPOINT_VERSION}"
            )
        if meta["ndomains"] != len(sim.dc.states):
            raise ValueError(
                f"checkpoint has {meta['ndomains']} domains, simulation "
                f"has {len(sim.dc.states)}"
            )
        if data["positions"].shape != sim.md_state.positions.shape:
            raise ValueError("atom count mismatch with the checkpoint")
        for name in ("velocities", "masses"):
            want = getattr(sim.md_state, name).shape
            if data[name].shape != want:
                raise ValueError(
                    f"{name} shape mismatch {data[name].shape} vs {want}"
                )
        if meta["has_prev_forces"]:
            if "prev_forces" not in data.files:
                raise ValueError("checkpoint is missing prev_forces")
            if data["prev_forces"].shape != sim.md_state.positions.shape:
                raise ValueError("prev_forces shape mismatch")
        for st in sim.dc.states:
            a = st.domain.alpha
            for key in (f"psi_{a}", f"occ_{a}", f"eig_{a}", f"vloc_{a}"):
                if key not in data.files:
                    raise ValueError(f"checkpoint is missing array {key!r}")
            if data[f"psi_{a}"].shape != st.wf.psi.shape:
                raise ValueError(
                    f"domain {a}: orbital shape mismatch "
                    f"{data[f'psi_{a}'].shape} vs {st.wf.psi.shape}"
                )
            if data[f"occ_{a}"].shape != (st.wf.norb,):
                raise ValueError(f"domain {a}: occupation shape mismatch")
            if data[f"eig_{a}"].shape != (st.wf.norb,):
                raise ValueError(f"domain {a}: eigenvalue shape mismatch")
            if data[f"vloc_{a}"].shape != st.domain.local_grid.shape:
                raise ValueError(f"domain {a}: potential shape mismatch")
        for alpha_str, actives in meta["carriers"].items():
            alpha = int(alpha_str)
            if not (0 <= alpha < len(sim.dc.states)):
                raise ValueError(f"carrier domain {alpha} out of range")
            norb = sim.dc.states[alpha].wf.norb
            for i, active in enumerate(actives):
                key = f"carrier_{alpha}_{i}"
                if key not in data.files:
                    raise ValueError(f"checkpoint is missing array {key!r}")
                if data[key].shape != (norb,):
                    raise ValueError(
                        f"carrier {alpha}/{i}: amplitude shape mismatch"
                    )
                if not (0 <= int(active) < norb):
                    raise ValueError(
                        f"carrier {alpha}/{i}: active state out of range"
                    )
        rng_state = json.loads(bytes(data["rng_state"].tobytes()).decode())
        profile = (
            TuningProfile.from_dict(meta["tuning_profile"])
            if "tuning_profile" in meta
            else None  # pre-tuning checkpoint: leave the active profile
        )
        array_backend = meta.get("array_backend")
        if array_backend is not None:
            # Validate eagerly (phase 1): an unknown substrate name must
            # fail before any state is applied.
            array_backend = get_backend(str(array_backend)).name

        # ---- phase 2: apply (cannot fail on shape grounds anymore). ----
        sim.md_state.positions = data["positions"].copy()
        sim.md_state.velocities = data["velocities"].copy()
        sim.md_state.masses = data["masses"].copy()
        sim.time = float(meta["time"])
        sim.step_count = int(meta["step_count"])
        sim._prev_forces = (
            data["prev_forces"].copy() if meta["has_prev_forces"] else None
        )
        for st in sim.dc.states:
            a = st.domain.alpha
            st.wf.psi[...] = data[f"psi_{a}"]
            st.occupations = data[f"occ_{a}"].copy()
            st.eigenvalues = data[f"eig_{a}"].copy()
            st.vloc = data[f"vloc_{a}"].copy()
        sim.carriers.clear()
        for alpha_str, actives in meta["carriers"].items():
            alpha = int(alpha_str)
            carriers = []
            for i, active in enumerate(actives):
                amps = data[f"carrier_{alpha}_{i}"].copy()
                carriers.append(
                    SurfaceHoppingState(amplitudes=amps, active=int(active))
                )
            sim.carriers[alpha] = carriers
        sim.rng.bit_generator.state = rng_state
        if profile is not None:
            set_active_profile(profile)
        if array_backend is not None:
            # Resume on the substrate the checkpoint was produced on so
            # the trajectory continues through the same kernel paths.
            sim.config.array_backend = array_backend
