"""DC-MESH core: the paper's primary contribution.

Couples the CPU-resident QXMD subprogram (DC-DFT SCF, surface hopping,
forces, MD) with the GPU-resident LFD subprogram (real-time TDDFT under
the laser) through the shadow-dynamics handshake, with multiple
time-scale splitting between Delta_MD and Delta_QD.
"""

from repro.core.timescale import TimescaleSplit
from repro.core.scissor import scissor_shift, homo_lumo_gap
from repro.core.shadow import ShadowLedger, HandshakeRecord
from repro.core.mesh import DCMESHConfig, DCMESHSimulation, MDStepRecord
from repro.core.maxwell_coupling import CoupledDomain, MaxwellCoupledLFD
from repro.core.ehrenfest import EhrenfestDynamics, EhrenfestRecord
from repro.core.checkpoint import load_checkpoint, save_checkpoint

__all__ = [
    "CoupledDomain",
    "MaxwellCoupledLFD",
    "EhrenfestDynamics",
    "EhrenfestRecord",
    "load_checkpoint",
    "save_checkpoint",
    "TimescaleSplit",
    "scissor_shift",
    "homo_lumo_gap",
    "ShadowLedger",
    "HandshakeRecord",
    "DCMESHConfig",
    "DCMESHSimulation",
    "MDStepRecord",
]
