"""Shadow-dynamics handshake accounting.

The point of shadow dynamics (Fig. 1b) is that the GPU-resident LFD proxy
communicates with CPU-resident QXMD through *occupation numbers only*:
per MD step, the CPU sends the refreshed local potential, scissor shift
and starting occupations down, and receives remapped occupations back.
The wave-function matrices Psi(t), Psi(0) never cross the PCIe bus after
their one-time upload.  :class:`ShadowLedger` records every handshake so
tests and benchmarks can assert both properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.device.transfer import TransferEngine


@dataclass(frozen=True)
class HandshakeRecord:
    """One MD step's CPU<->GPU traffic."""

    md_step: int
    bytes_down: int     # potential + scissor + occupations to the device
    bytes_up: int       # remapped occupations back to the host
    psi_bytes_resident: int  # device-resident wave-function footprint

    @property
    def total(self) -> int:
        return self.bytes_down + self.bytes_up


class ShadowLedger:
    """Accumulates handshake records and enforces the shadow contract."""

    def __init__(self, transfer: Optional[TransferEngine] = None) -> None:
        self.records: List[HandshakeRecord] = []
        self.transfer = transfer
        self.psi_uploads = 0

    def record_psi_upload(self, nbytes: int, pinned: bool = False) -> None:
        """The one-time Psi(0) upload at simulation start."""
        self.psi_uploads += 1
        if self.transfer is not None:
            self.transfer.h2d(nbytes, pinned=pinned, tag="psi_initial_upload")

    def record_handshake(
        self,
        md_step: int,
        vloc_bytes: int,
        occ_count: int,
        psi_bytes_resident: int,
        pinned: bool = False,
    ) -> HandshakeRecord:
        """Record one MD step's handshake and charge the transfer model."""
        bytes_down = int(vloc_bytes) + 8 * (int(occ_count) + 1)  # + scissor
        bytes_up = 8 * int(occ_count)
        rec = HandshakeRecord(
            md_step=md_step,
            bytes_down=bytes_down,
            bytes_up=bytes_up,
            psi_bytes_resident=int(psi_bytes_resident),
        )
        self.records.append(rec)
        if self.transfer is not None:
            self.transfer.h2d(bytes_down, pinned=pinned, tag="shadow_down")
            self.transfer.d2h(bytes_up, pinned=pinned, tag="shadow_up")
        return rec

    # ------------------------------------------------------------------ #
    def steady_state_bytes_per_step(self) -> float:
        """Mean handshake bytes per MD step (excludes the initial upload)."""
        if not self.records:
            return 0.0
        return float(np.mean([r.total for r in self.records]))

    def traffic_ratio(self) -> float:
        """Handshake bytes relative to the resident Psi footprint.

        Shadow dynamics promises this to be << 1; the paper calls the
        occupations 'negligible compared to the large memory footprint of
        many KS wave functions'.
        """
        if not self.records:
            return 0.0
        resident = max(r.psi_bytes_resident for r in self.records)
        if resident == 0:
            return float("inf")
        return self.steady_state_bytes_per_step() / resident

    def assert_no_psi_traffic(self) -> None:
        """Raise if wave functions were re-transferred after the upload."""
        if self.psi_uploads > 1:
            raise AssertionError(
                f"wave functions uploaded {self.psi_uploads} times; shadow "
                f"dynamics allows exactly one initial upload"
            )
        if self.transfer is not None:
            bad = [
                r for r in self.transfer.ledger
                if r.tag not in ("psi_initial_upload", "shadow_down", "shadow_up")
            ]
            if bad:
                raise AssertionError(
                    f"unexpected transfers outside the shadow contract: "
                    f"{[r.tag for r in bad]}"
                )
