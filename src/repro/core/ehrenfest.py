"""Ehrenfest dynamics: the short-time limb of the MESH approach.

Section I of the paper: at short time scales, *Ehrenfest dynamics* relies
on the TDDFT equations directly -- the time-evolving electron density
dictates the interatomic forces -- while at longer times the adiabatic
representation plus surface hopping takes over (which is what
:class:`~repro.core.mesh.DCMESHSimulation` does).  This module provides
the Ehrenfest mode: the Kohn-Sham orbitals are propagated *continuously*
across MD steps (never re-solved), the density is rebuilt from the
propagated orbitals, and the mean-field forces follow from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.grids.grid import Grid3D
from repro.lfd.observables import density, dipole_moment
from repro.lfd.propagator import PropagatorConfig, QDPropagator
from repro.lfd.wavefunction import WaveFunctionSet
from repro.maxwell.laser import LaserPulse
from repro.multigrid.poisson import PoissonMultigrid
from repro.pseudo.elements import PseudoSpecies
from repro.pseudo.local import (
    core_repulsion_pair_forces,
    core_repulsion_potential,
    ionic_density,
)
from repro.qxmd.forces import ForceCalculator
from repro.qxmd.hartree import hartree_potential
from repro.qxmd.md import MDState, temperature
from repro.qxmd.xc import lda_exchange_correlation


@dataclass
class EhrenfestRecord:
    """Per-MD-step observables of an Ehrenfest trajectory."""

    step: int
    time: float
    temperature: float
    dipole: np.ndarray
    electron_count: float


class EhrenfestDynamics:
    """Mean-field (Ehrenfest) nonadiabatic dynamics on one grid.

    Parameters
    ----------
    grid, positions, species:
        The atomic system (single spatial region; combine with the DC
        machinery for multi-domain runs).
    wf, occupations:
        Initial Kohn-Sham orbitals (typically from
        :func:`repro.qxmd.scf.scf_solve`) and their occupations -- these
        orbitals are *never* re-diagonalized, only propagated.
    dt_md, n_qd:
        The multiple-time-scale split: per MD step the electrons take
        ``n_qd`` sub-steps of ``dt_md / n_qd``.
    laser:
        Optional pulse (uniform A(t), velocity gauge).
    refresh_potential_every:
        Rebuild the Hartree+XC potential from the propagated density
        every k QD sub-steps (1 = fully self-consistent TDDFT mean field;
        larger values amortize like shadow dynamics).
    """

    def __init__(
        self,
        grid: Grid3D,
        positions: np.ndarray,
        species: Sequence[PseudoSpecies],
        wf: WaveFunctionSet,
        occupations: np.ndarray,
        dt_md: float = 2.0,
        n_qd: int = 20,
        laser: Optional[LaserPulse] = None,
        refresh_potential_every: int = 5,
        kin_variant: str = "collapsed",
    ) -> None:
        if dt_md <= 0 or n_qd < 1:
            raise ValueError("dt_md must be positive and n_qd >= 1")
        if refresh_potential_every < 0:
            raise ValueError("refresh_potential_every must be non-negative")
        self.grid = grid
        self.species = list(species)
        self.wf = wf
        self.occupations = np.asarray(occupations, dtype=float)
        if self.occupations.shape != (wf.norb,):
            raise ValueError("need one occupation per orbital")
        self.dt_md = dt_md
        self.n_qd = n_qd
        self.laser = laser
        self.refresh_every = refresh_potential_every
        self.kin_variant = kin_variant
        masses = np.array([sp.mass for sp in self.species])
        self.md_state = MDState(
            positions=np.asarray(positions, dtype=float).copy(),
            velocities=np.zeros((len(self.species), 3)),
            masses=masses,
        )
        self.poisson = PoissonMultigrid(grid)
        self.force_calc = ForceCalculator(grid, self.species, poisson=self.poisson)
        self.time = 0.0
        self.step_count = 0
        self.history: List[EhrenfestRecord] = []
        self._prev_forces: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def _build_potential(self) -> np.ndarray:
        rho_e = density(self.wf, self.occupations)
        rho_ion = ionic_density(self.grid, self.md_state.positions, self.species)
        phi = hartree_potential(
            rho_ion - rho_e, self.grid, method="multigrid", solver=self.poisson
        )
        v_xc, _ = lda_exchange_correlation(rho_e)
        v_core = core_repulsion_potential(
            self.grid, self.md_state.positions, self.species
        )
        return -phi + v_xc + v_core

    def _a_of_t(self) -> Optional[Callable[[float], np.ndarray]]:
        if self.laser is None:
            return None
        t0 = self.time

        def a_of_t(t: float, _t0=t0) -> np.ndarray:
            return self.laser.vector_potential(_t0 + t)

        return a_of_t

    def _forces(self) -> np.ndarray:
        rho_e = density(self.wf, self.occupations)
        f = self.force_calc.electrostatic_forces(self.md_state.positions, rho_e)
        f += core_repulsion_pair_forces(
            self.grid, self.md_state.positions, self.species
        )
        return f

    # ------------------------------------------------------------------ #
    def md_step(self) -> EhrenfestRecord:
        """One Delta_MD: propagate electrons mean-field, then the nuclei."""
        dt_qd = self.dt_md / self.n_qd
        prop = QDPropagator(
            self.wf,
            self._build_potential(),
            PropagatorConfig(dt=dt_qd, kin_variant=self.kin_variant),
            a_of_t=self._a_of_t(),
        )
        for i in range(self.n_qd):
            prop.step()
            if self.refresh_every and (i + 1) % self.refresh_every == 0:
                prop.set_potential(self._build_potential())

        forces = self._forces()
        m = self.md_state.masses[:, None]
        f0 = self._prev_forces if self._prev_forces is not None else forces
        self.md_state.velocities += 0.5 * (f0 + forces) / m * self.dt_md
        self.md_state.positions += (
            self.md_state.velocities * self.dt_md
            + 0.5 * forces / m * self.dt_md ** 2
        )
        self._prev_forces = forces
        self.time += self.dt_md
        self.step_count += 1
        rec = EhrenfestRecord(
            step=self.step_count,
            time=self.time,
            temperature=temperature(self.md_state),
            dipole=dipole_moment(self.wf, self.occupations),
            electron_count=float(
                density(self.wf, self.occupations).sum() * self.grid.dvol
            ),
        )
        self.history.append(rec)
        return rec

    def run(self, nsteps: int) -> List[EhrenfestRecord]:
        """Run ``nsteps`` Ehrenfest MD steps; returns their records."""
        if nsteps < 0:
            raise ValueError("nsteps must be non-negative")
        return [self.md_step() for _ in range(nsteps)]
