"""Self-consistent Maxwell-TDDFT coupling (the "M" of DC-MESH).

The multiscale scheme of Section II: light propagates on a coarse 1-D
FDTD mesh along the propagation axis while every DC domain samples the
vector potential at its centre X(alpha) (dipole approximation within a
domain, Eq. 2) and deposits its macroscopic polarization current back
into the wave equation.  :class:`MaxwellCoupledLFD` advances the FDTD
field and all per-domain QD propagators in lockstep with a shared
Delta_QD, realizing the retarded, absorbing light-matter feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.constants import C_LIGHT
from repro.lfd.observables import current_expectation
from repro.lfd.propagator import QDPropagator
from repro.maxwell.vector_potential import VectorPotentialFDTD


@dataclass
class CoupledDomain:
    """One DC domain attached to the light mesh.

    Attributes
    ----------
    propagator:
        The domain's QD propagator (its ``a_of_t`` is overridden by the
        coupling).
    occupations:
        Occupations used for the current expectation.
    z_position:
        Coordinate of the domain centre along the propagation axis.
    volume:
        Domain volume (converts the current expectation into a current
        density for the 1-D wave equation).
    """

    propagator: QDPropagator
    occupations: np.ndarray
    z_position: float
    volume: float

    def __post_init__(self) -> None:
        self.occupations = np.asarray(self.occupations, dtype=float)
        if self.occupations.shape != (self.propagator.wf.norb,):
            raise ValueError("need one occupation per orbital")
        if self.volume <= 0:
            raise ValueError("volume must be positive")


class MaxwellCoupledLFD:
    """Lockstep integrator for the FDTD field and the domain electrons.

    Parameters
    ----------
    fdtd:
        The 1-D vector-potential solver.  Its ``dt`` must equal the QD
        time step of every attached propagator (lockstep).
    domains:
        The coupled DC domains.
    feedback:
        If False, domains only *sample* the field (no absorption) --
        useful as an ablation of the self-consistent coupling.
    current_scale:
        Optional uniform scale on the deposited current density (models
        the areal density of domains transverse to the light axis).
    """

    def __init__(
        self,
        fdtd: VectorPotentialFDTD,
        domains: Sequence[CoupledDomain],
        feedback: bool = True,
        current_scale: float = 1.0,
    ) -> None:
        if not domains:
            raise ValueError("need at least one coupled domain")
        for d in domains:
            if abs(d.propagator.config.dt - fdtd.dt) > 1e-12:
                raise ValueError(
                    f"lockstep violated: domain dt {d.propagator.config.dt} "
                    f"!= FDTD dt {fdtd.dt}"
                )
        self.fdtd = fdtd
        self.domains = list(domains)
        self.feedback = feedback
        self.current_scale = float(current_scale)
        self.steps_taken = 0
        self.field_history: List[np.ndarray] = []
        # Rewire every propagator to sample the live FDTD field.
        for d in self.domains:
            d.propagator.a_of_t = self._sampler(d)

    def _sampler(self, dom: CoupledDomain) -> Callable[[float], np.ndarray]:
        def a_of_t(_t: float, _z=dom.z_position) -> np.ndarray:
            return self.fdtd.sample_vector(_z)

        return a_of_t

    # ------------------------------------------------------------------ #
    def _deposit_currents(self) -> np.ndarray:
        """Polarization current density profile on the light mesh."""
        j = np.zeros(self.fdtd.nz)
        if not self.feedback:
            return j
        axis = self.fdtd.polarization_axis
        for d in self.domains:
            a_vec = self.fdtd.sample_vector(d.z_position)
            cur = current_expectation(
                d.propagator.wf, d.occupations, a_field=a_vec
            )[axis]
            # Current density = total current / volume; the electron
            # charge is -e so the physical current flips sign.
            density = -cur / d.volume * self.current_scale
            cell = int(round(d.z_position / self.fdtd.dz)) % self.fdtd.nz
            j[cell] += density * d.volume / self.fdtd.dz  # line density
        return j

    def step(self) -> None:
        """One lockstep dt: field update with feedback, then electrons."""
        current = self._deposit_currents()
        self.fdtd.step(current=current)
        for d in self.domains:
            d.propagator.step()
        self.steps_taken += 1

    def run(
        self,
        nsteps: int,
        record_every: int = 0,
        observer: Optional[Callable[["MaxwellCoupledLFD"], None]] = None,
    ) -> None:
        """Advance ``nsteps`` lockstep intervals."""
        if nsteps < 0:
            raise ValueError("nsteps must be non-negative")
        for i in range(nsteps):
            self.step()
            if record_every and (i + 1) % record_every == 0:
                self.field_history.append(self.fdtd.a.copy())
            if observer is not None:
                observer(self)

    # ------------------------------------------------------------------ #
    def sampled_fields(self) -> np.ndarray:
        """A at every domain centre (diagnostics), shape (ndomains,)."""
        return np.array([self.fdtd.sample(d.z_position) for d in self.domains])

    def total_field_energy(self) -> float:
        """Electromagnetic field energy on the light mesh (diagnostic)."""
        return self.fdtd.energy()

    def arrival_delay_cells(self, z_a: float, z_b: float) -> float:
        """Light travel time between two domain positions, in dt units."""
        return abs(z_b - z_a) / (C_LIGHT * self.fdtd.dt)
