"""Multiple time-scale splitting (Eqs. 3-4).

Electrons evolve with Delta_QD ~ attoseconds while atoms move with
Delta_MD ~ femtoseconds; N_QD = Delta_MD / Delta_QD quantum sub-steps
(10^2..10^3 in the paper) are taken per MD step, with the surface-hopping
factor U_SH applied once per MD step (Eq. 3) and the Suzuki-Trotter
product of Eq. (4) filling the interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import fs_to_aut


@dataclass(frozen=True)
class TimescaleSplit:
    """Consistent (Delta_MD, N_QD, Delta_QD) triple in atomic units."""

    dt_md: float
    n_qd: int

    def __post_init__(self) -> None:
        if self.dt_md <= 0:
            raise ValueError("dt_md must be positive")
        if self.n_qd < 1:
            raise ValueError("n_qd must be at least 1")

    @property
    def dt_qd(self) -> float:
        """The electronic sub-step Delta_QD = Delta_MD / N_QD."""
        return self.dt_md / self.n_qd

    @classmethod
    def from_physical(cls, dt_md_fs: float, dt_qd_as: float) -> "TimescaleSplit":
        """Build from Delta_MD in femtoseconds and Delta_QD in attoseconds.

        N_QD is rounded to the nearest integer >= 1; the realized dt_qd is
        then exactly dt_md / n_qd (the splitting must tile the MD step).
        """
        if dt_md_fs <= 0 or dt_qd_as <= 0:
            raise ValueError("time steps must be positive")
        dt_md = fs_to_aut(dt_md_fs)
        dt_qd = fs_to_aut(dt_qd_as / 1000.0)
        n_qd = max(1, round(dt_md / dt_qd))
        return cls(dt_md=dt_md, n_qd=n_qd)

    def midpoints(self) -> list[float]:
        """The Suzuki-Trotter evaluation times (n + 1/2) dt_qd of Eq. (4)."""
        return [(n + 0.5) * self.dt_qd for n in range(self.n_qd)]

    def amortization_ratio(self) -> float:
        """How many QD sub-steps amortize each per-MD-step nonlocal setup."""
        return float(self.n_qd)
