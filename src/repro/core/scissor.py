"""Scissor shift of the projected nonlocal operator (Eq. 8).

Delta_sci = (e_LUMO - e_HOMO)|with nonlocal  -  (e_LUMO - e_HOMO)|local only.

The expensive nonlocal and cheap local HOMO/LUMO energies are computed
*once per MD step* and reused for the N_QD = 10^2..10^3 quantum
sub-steps -- the amortization at the heart of the shadow-dynamics
speedup.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.lfd.wavefunction import WaveFunctionSet
from repro.qxmd.hamiltonian import KSHamiltonian


def homo_lumo_gap(
    eigenvalues: np.ndarray, occupations: np.ndarray
) -> Tuple[float, int, int]:
    """(gap, homo_index, lumo_index) from eigenvalues and occupations.

    HOMO/LUMO are defined by the *Aufbau filling of the electron count*
    (nfull = ceil(nelec / 2) doubly-occupied orbitals), which stays stable
    when LFD remapping spreads small fractional occupations across the
    spectrum.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    occupations = np.asarray(occupations, dtype=float)
    if eigenvalues.shape != occupations.shape:
        raise ValueError("eigenvalues and occupations must align")
    nelec = float(occupations.sum())
    if nelec <= 0:
        raise ValueError("no occupied states")
    nfull = int(np.ceil(nelec / 2.0 - 1e-9))
    homo = nfull - 1
    lumo = nfull
    if lumo >= eigenvalues.size:
        raise ValueError("no unoccupied state available (increase norb)")
    return float(eigenvalues[lumo] - eigenvalues[homo]), homo, lumo


def scissor_shift(
    ham_full: KSHamiltonian,
    wf: WaveFunctionSet,
    occupations: np.ndarray,
) -> float:
    """Delta_sci from subspace HOMO-LUMO gaps with and without v_nl.

    Both gaps are evaluated by Rayleigh-Ritz in the span of the current
    adiabatic orbitals, so the two eigenproblems share the identical basis
    and the difference isolates the nonlocal contribution.
    """
    if ham_full.kb is None:
        return 0.0
    import scipy.linalg as sla

    ssub = wf.overlap_matrix()
    h_nl = ham_full.subspace_matrix(wf)
    h_loc = ham_full.without_nonlocal().subspace_matrix(wf)
    e_nl = sla.eigh(h_nl, ssub, eigvals_only=True)
    e_loc = sla.eigh(h_loc, ssub, eigvals_only=True)
    gap_nl, _, _ = homo_lumo_gap(e_nl, occupations)
    gap_loc, _, _ = homo_lumo_gap(e_loc, occupations)
    return gap_nl - gap_loc
