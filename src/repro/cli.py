"""Command-line interface for the DC-MESH reproduction.

Subcommands::

    repro-mesh info                      # hardware/config summary
    repro-mesh run [...]                 # a small coupled DC-MESH run
    repro-mesh scaling [...]             # Figs. 2-3 scaling tables
    repro-mesh spectrum [...]            # delta-kick absorption spectrum
    repro-mesh tune [...]                # correctness-gated autotuning
    repro-mesh ensemble [...]            # batched FSSH trajectory swarms
    repro-mesh serve [...]               # persistent batching daemon
    repro-mesh submit [...]              # client for a running daemon

Every subcommand is also importable (``from repro.cli import main``) and
returns a process exit code, so it is unit-testable without spawning
processes.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.device import A100, EPYC_7543_CORE
    from repro.parallel import PolarisModel

    print(f"repro {repro.__version__} -- DC-MESH reproduction (IPPS 2024)")
    print(f"  A100 model: {A100.peak_flops_dp / 1e12:.1f} DP TFLOP/s, "
          f"{A100.mem_bandwidth / 1e12:.2f} TB/s HBM2")
    print(f"  CPU core model: {EPYC_7543_CORE.name}, "
          f"{EPYC_7543_CORE.peak_flops_dp / 1e9:.1f} DP GFLOP/s")
    polaris = PolarisModel(nnodes=256)
    print(f"  Polaris model: up to {PolarisModel.MAX_NODES} nodes; "
          f"256-node allocation = {polaris.nranks} ranks/GPUs")
    return 0


def _install_tracer(args: argparse.Namespace):
    """Install a global tracer when ``--trace-out`` was given."""
    if not getattr(args, "trace_out", None):
        return None
    from repro.obs import Tracer, set_tracer

    return set_tracer(Tracer())


def _finish_tracer(args: argparse.Namespace, tracer) -> None:
    """Write the Chrome trace and per-phase summary; restore null tracing."""
    if tracer is None:
        return
    from repro.obs import phase_report, set_tracer, write_chrome_trace

    set_tracer(None)
    path = write_chrome_trace(args.trace_out, tracer)
    print(f"trace: {len(tracer.records)} spans -> {path} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    print(phase_report(tracer.records))


def _install_profile(args: argparse.Namespace) -> None:
    """Activate the ``--tuning-profile`` file, if one was given."""
    if not getattr(args, "tuning_profile", None):
        return
    from repro.tuning import TuningProfile, set_active_profile

    profile = TuningProfile.load(args.tuning_profile)
    set_active_profile(profile)
    tuned = ", ".join(profile.tuned_ids) or "none (all defaults)"
    print(f"tuning profile: {args.tuning_profile} (tuned: {tuned})")


#: Kernel tunables whose ``backend`` parameter selects the array-API
#: substrate (the ``parallel.executor`` ``backend`` is the executor kind).
_ARRAY_BACKEND_TUNABLES = ("lfd.kin_prop", "lfd.nonlocal", "multigrid.poisson")


def _install_array_backend(args: argparse.Namespace) -> None:
    """Layer ``--array-backend`` over the active tuning profile.

    Must run *after* :func:`_install_profile`: an explicit CLI substrate
    choice overrides whatever a persisted profile recorded, matching the
    ``resolve_backend`` precedence (explicit > profile > default).
    """
    name = getattr(args, "array_backend", None)
    if not name:
        return
    from repro.backend import get_backend
    from repro.tuning import TuningProfile, set_active_profile
    from repro.tuning.profile import get_active_profile

    resolved = get_backend(name).name
    base = get_active_profile().to_dict()
    overrides = {tid: dict(p) for tid, p in base["overrides"].items()}
    for tid in _ARRAY_BACKEND_TUNABLES:
        overrides.setdefault(tid, {})["backend"] = resolved
    set_active_profile(
        TuningProfile(overrides, source=f"{base['source']}+array-backend")
    )
    print(f"array backend: {resolved}")


def _cmd_run(args: argparse.Namespace) -> int:
    tracer = _install_tracer(args)
    try:
        _install_profile(args)
        _install_array_backend(args)
        return _run_body(args)
    finally:
        _finish_tracer(args, tracer)


def _run_body(args: argparse.Namespace) -> int:
    from repro.parallel.executor import make_executor
    from repro.serve.workloads import run_system

    # The system is built by the same function the serving daemon uses,
    # so daemon run jobs and CLI runs execute identical physics.
    grid, positions, species, laser, config = run_system({
        "grid": args.grid,
        "spacing": args.spacing,
        "species": args.species,
        "dt_md": args.dt_md,
        "n_qd": args.n_qd,
        "nscf": args.nscf,
        "ncg": args.ncg,
        "e0": args.e0,
        "omega": args.omega,
        "seed": args.seed,
        "array_backend": args.array_backend,
    })
    extras = {}
    if args.hang_timeout is not None:
        if args.backend == "process":
            extras["hang_timeout"] = args.hang_timeout
        else:
            print(f"note: --hang-timeout only applies to --backend process "
                  f"(ignored for {args.backend})")
    executor = make_executor(args.backend, workers=args.workers,
                             seed=args.seed, **extras)
    print(f"backend: {executor.name} ({executor.workers} worker(s))")
    try:
        return _run_sim(args, grid, positions, species, laser, config,
                        executor)
    finally:
        executor.shutdown()


def _run_sim(args, grid, positions, species, laser, config, executor) -> int:
    from repro import DCMESHSimulation, VirtualGPU, aut_to_fs
    from repro.core.checkpoint import load_checkpoint, save_checkpoint

    sim = DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        laser=laser, config=config, device=VirtualGPU(),
        buffer_width=args.buffer, executor=executor,
    )
    if args.restart:
        restart = pathlib.Path(args.restart)
        if restart.is_dir():
            # A rotation directory: restore the newest generation that
            # passes its digest check, degrading past torn/corrupt ones.
            from repro.resilience.checkpointing import restore_newest_verified

            path, _, skipped = restore_newest_verified(sim, restart)
            for bad in skipped:
                print(f"warning: skipped corrupt checkpoint {bad.name}")
            print(f"restarted from {path} at step {sim.step_count}")
        else:
            load_checkpoint(sim, restart)
            print(f"restarted from {args.restart} at step {sim.step_count}")
    if args.excite:
        sim.excite_carrier(0)

    supervisor = None
    if args.checkpoint_every > 0:
        from repro.resilience.supervisor import RunSupervisor, SupervisorConfig

        supervisor = RunSupervisor(
            sim,
            args.checkpoint_dir,
            SupervisorConfig(
                checkpoint_every=args.checkpoint_every,
                max_retries=args.max_retries,
                log_path=args.resilience_log,
                deadline_s=args.deadline,
                retry_budget=args.retry_budget,
            ),
        )
        print(
            f"supervised run: checkpoint every {args.checkpoint_every} "
            f"step(s) -> {args.checkpoint_dir}, max {args.max_retries} "
            f"retries/segment"
            + (f", {args.deadline:g}s deadline/segment"
               if args.deadline else "")
            + (f", {args.retry_budget} total retries"
               if args.retry_budget is not None else "")
        )

    if supervisor is not None:
        records = supervisor.run(args.steps)
    else:
        # Unsupervised: an armed deadline bounds the whole run (there
        # is no checkpointed segment to replay, so expiry fails fast).
        from repro.resilience.liveness import deadline_scope

        with deadline_scope(args.deadline, "cli.run"):
            records = sim.run(args.steps)
    print("step    t[fs]     T[K]   E_band[Ha]   n_exc  hops")
    for rec in records:
        print(
            f"{rec.step:4d}  {aut_to_fs(rec.time):8.4f}  {rec.temperature:7.1f}"
            f"  {rec.band_energy:11.4f}  {rec.excited_population:6.2f}"
            f"  {rec.hops:4d}"
        )
    sim.ledger.assert_no_psi_traffic()
    if supervisor is not None:
        faults = supervisor.log.count("fault")
        print(
            f"resilience: {faults} fault(s), "
            f"{supervisor.total_retries} retry(ies), "
            f"{supervisor.log.count('checkpoint')} checkpoint(s)"
        )
        if args.resilience_log:
            print(f"resilience events logged to {args.resilience_log}")
    if args.checkpoint:
        path = save_checkpoint(sim, args.checkpoint)
        print(f"checkpoint written to {path}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.parallel import strong_scaling_study, weak_scaling_study
    from repro.parallel.scaling import calibrated_model

    model = calibrated_model()
    if args.mode in ("weak", "both"):
        print("weak scaling (40 atoms/rank):")
        for p in weak_scaling_study(model):
            print(f"  P={p.nranks:5d}  atoms={int(p.natoms):6d}  "
                  f"t={p.step_time:7.2f}s  eta={p.efficiency:.4f}")
    if args.mode in ("strong", "both"):
        for natoms, plist in ((5120.0, (64, 128, 256)),
                              (10240.0, (128, 256, 512))):
            print(f"strong scaling ({int(natoms)} atoms):")
            for p in strong_scaling_study(model, natoms, plist):
                print(f"  P={p.nranks:5d}  t={p.step_time:7.2f}s  "
                      f"eta={p.efficiency:.4f}")
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    tracer = _install_tracer(args)
    try:
        _install_profile(args)
        _install_array_backend(args)
        return _spectrum_body(args)
    finally:
        _finish_tracer(args, tracer)


def _cmd_tune(args: argparse.Namespace) -> int:
    tracer = _install_tracer(args)
    try:
        return _tune_body(args)
    finally:
        _finish_tracer(args, tracer)


def _tune_body(args: argparse.Namespace) -> int:
    from repro.tuning import (
        TuningCache,
        TuningSession,
        format_report,
        write_report_json,
    )

    cache = TuningCache(args.cache) if args.cache else TuningCache()
    session = TuningSession(cache=cache)
    result = session.run(
        select=args.select or None,
        force=args.force,
        strategy=args.search,
        warmup=args.warmup,
        repeats=args.repeats,
        seed=args.seed,
    )
    print(format_report(result))
    if args.report:
        path = write_report_json(result, args.report)
        print(f"report written to {path}")
    if args.profile_out:
        profile = result.profile()
        profile.save(args.profile_out)
        print(f"profile written to {args.profile_out} "
              f"(use with --tuning-profile)")
    return 0


def _spectrum_body(args: argparse.Namespace) -> int:
    from repro.serve.workloads import spectrum_ground_state, spectrum_payload

    # Both stages run through the daemon's workload functions, so a
    # spectrum served warm from the daemon's pool is bit-identical to
    # this one-shot path.
    params = {"grid": args.grid, "norb": args.norb, "depth": args.depth,
              "steps": args.steps, "seed": args.seed}
    gs = spectrum_ground_state(params)
    print("KS levels (Ha):", np.round(gs.evals, 4))
    payload = spectrum_payload(gs, params, deadline_s=args.deadline)
    print("absorption peaks (Ha):", np.round(payload["peaks"][:5], 4))
    return 0


def _cmd_ensemble(args: argparse.Namespace) -> int:
    tracer = _install_tracer(args)
    try:
        _install_profile(args)
        _install_array_backend(args)
        return _ensemble_body(args)
    finally:
        _finish_tracer(args, tracer)


def _ensemble_body(args: argparse.Namespace) -> int:
    from repro.ensemble import EnsembleConfig, EnsembleRun, model_path
    from repro.qxmd.sh_kernels import HopPolicy

    policy = HopPolicy(
        hop_rescale=args.hop_rescale,
        hop_reject=args.hop_reject,
        dec_correction=None if args.decoherence == "none" else args.decoherence,
        edc_parameter=args.edc_parameter,
    )
    path = model_path(nsteps=args.nsteps, nstates=args.nstates,
                      dt=args.dt, seed=args.path_seed,
                      coupling=args.coupling)
    config = EnsembleConfig(
        ntraj=args.ntraj,
        istate=args.istate,
        seed=args.seed,
        substeps=args.substeps,
        policy=policy,
        batch_size=args.batch_size,
        array_backend=args.array_backend,
    )
    extras = {}
    if args.hang_timeout is not None and args.backend == "process":
        extras["hang_timeout"] = args.hang_timeout
    run = EnsembleRun(path, config, backend=args.backend,
                      workers=args.workers, round_size=args.round_size,
                      **extras)
    try:
        return _ensemble_drive(args, run)
    finally:
        run.close()


def _ensemble_drive(args: argparse.Namespace, run) -> int:
    from repro.resilience.liveness import deadline_scope

    print(f"ensemble: {run.config.ntraj} trajectories x "
          f"{run.path.nsteps} steps, {run.path.nstates} states, "
          f"batch_size={run.batch_size} "
          f"({len(run.batches)} batches, round_size={run.round_size})")
    p = run.config.policy
    print(f"hop policy: rescale={p.hop_rescale}, reject={p.hop_reject}, "
          f"decoherence={p.dec_correction or 'off'}"
          + (f" (C={p.edc_parameter:g} Ha)"
             if p.dec_correction == "edc" else ""))

    if args.restart:
        from repro.resilience.checkpointing import (
            CheckpointCorruptError,
            restore_newest_verified,
        )

        try:
            path, _, skipped = restore_newest_verified(run, args.restart)
        except CheckpointCorruptError as exc:
            print(f"error: cannot resume from {args.restart}: {exc}")
            return 1
        for bad in skipped:
            print(f"warning: skipped corrupt checkpoint {bad.name}")
        print(f"resumed from {path.name}: "
              f"{int(run.done.sum())}/{len(run.batches)} batches done")

    rounds = run.rounds_remaining
    if args.stop_after is not None:
        rounds = min(rounds, args.stop_after)

    if args.checkpoint_every > 0:
        from repro.resilience.supervisor import RunSupervisor, SupervisorConfig

        supervisor = RunSupervisor(
            run,
            args.checkpoint_dir,
            SupervisorConfig(
                checkpoint_every=args.checkpoint_every,
                max_retries=args.max_retries,
                log_path=args.resilience_log,
                deadline_s=args.deadline,
            ),
        )
        print(f"supervised: checkpoint every {args.checkpoint_every} "
              f"round(s) -> {args.checkpoint_dir}")
        supervisor.run(rounds)
    else:
        with deadline_scope(args.deadline, "cli.ensemble"):
            for _ in range(rounds):
                run.md_step()

    if not run.complete:
        print(f"stopped early: {int(run.done.sum())}/{len(run.batches)} "
              f"batches done (resume with --restart)")
        return 0

    result = run.result()
    stats = result.stats
    every = args.print_every or max(1, run.path.nsteps // 10)
    hdr = "  ".join(f"p{k}(mean+-se)" for k in range(run.path.nstates))
    print(f"step  {hdr}  coherence  active-hist")
    for s in range(0, run.path.nsteps, every):
        pops = "  ".join(
            f"{stats.pop_mean[s, k]:.4f}+-{stats.pop_stderr[s, k]:.4f}"
            for k in range(run.path.nstates)
        )
        hist = "/".join(str(int(c)) for c in stats.active_counts[s])
        print(f"{s:4d}  {pops}  "
              f"{stats.coherence_mean[s]:.4f}+-{stats.coherence_stderr[s]:.4f}"
              f"  {hist}")
    print(f"total hops: {int(result.hops.sum())} "
          f"(mean {result.hops.mean():.2f}/trajectory)")
    if args.out:
        np.savez(
            args.out,
            pop_mean=stats.pop_mean,
            pop_stderr=stats.pop_stderr,
            active_fraction=stats.active_fraction,
            active_counts=stats.active_counts,
            coherence_mean=stats.coherence_mean,
            coherence_stderr=stats.coherence_stderr,
            hops=result.hops,
        )
        print(f"statistics written to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import BatchPolicy, ServeConfig, ServeDaemon

    config = ServeConfig(
        socket_path=pathlib.Path(args.socket),
        artifact_root=(None if args.no_artifacts
                       else pathlib.Path(args.artifact_root)),
        artifact_max_bytes=args.artifact_max_bytes,
        scratch_root=(pathlib.Path(args.scratch_dir)
                      if args.scratch_dir else None),
        policy=BatchPolicy(max_batch=args.max_batch,
                           max_wait_s=args.max_wait),
        max_queue=args.max_queue,
        pool_entries=args.pool_entries,
        pool_max_bytes=args.pool_max_bytes,
        default_deadline_s=args.deadline,
        max_retries=args.max_retries,
    )
    daemon = ServeDaemon(config)
    print(f"serving on {config.socket_path} "
          f"(batch <= {config.policy.max_batch} jobs / "
          f"{config.policy.max_wait_s:g}s linger, "
          f"queue <= {config.max_queue}, "
          f"artifacts: {config.artifact_root or 'off'})")
    asyncio.run(daemon.run())
    snapshot = daemon.metrics.snapshot()
    print(f"drained: {snapshot['completed']} completed, "
          f"{snapshot['failed']} failed, "
          f"{snapshot['busy_shed']} shed busy, "
          f"{snapshot['shutdown_shed']} shed at shutdown")
    return 0


def _parse_job_param(text: str):
    """``key=value`` with JSON-typed values (bare words stay strings)."""
    import json

    key, sep, value = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}"
        )
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.socket, timeout_s=args.timeout)
    if args.op == "ping":
        ok = client.ping()
        print("pong" if ok else "no answer")
        return 0 if ok else 1
    if args.op == "stats":
        import json

        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    if args.op == "invalidate":
        dropped = client.invalidate(scope=args.scope)
        print(f"invalidated: {dropped['pool']} pooled state(s), "
              f"{dropped['artifacts']} artifact(s)")
        return 0
    if args.op == "shutdown":
        client.shutdown()
        print("daemon drained")
        return 0
    job = {"kind": args.kind, "params": dict(args.param or [])}
    if args.deadline is not None:
        job["deadline_s"] = args.deadline
    if args.no_memoize:
        job["memoize"] = False
    try:
        result = client.run_job(**job)  # type: ignore[arg-type]
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    arrays = {k: v for k, v in result.items() if isinstance(v, np.ndarray)}
    for key in sorted(result):
        value = result[key]
        if isinstance(value, np.ndarray):
            print(f"{key}: array{value.shape} {value.dtype}")
        else:
            print(f"{key}: {value}")
    if args.out and arrays:
        np.savez(args.out, **arrays)
        print(f"arrays written to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-mesh argument parser (see module doc)."""
    parser = argparse.ArgumentParser(
        prog="repro-mesh",
        description="DC-MESH quantum light-matter dynamics (IPPS 2024 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="hardware/config summary").set_defaults(
        func=_cmd_info
    )

    run = sub.add_parser("run", help="run a small coupled simulation")
    run.add_argument("--grid", type=int, default=16, help="mesh points/axis")
    run.add_argument("--spacing", type=float, default=0.6, help="bohr")
    run.add_argument("--species", default="O", help="pseudo-atom symbol")
    run.add_argument("--steps", type=int, default=5, help="MD steps")
    run.add_argument("--dt-md", type=float, default=2.0, help="Delta_MD (a.u.)")
    run.add_argument("--n-qd", type=int, default=20, help="QD steps per MD step")
    run.add_argument("--nscf", type=int, default=2)
    run.add_argument("--ncg", type=int, default=3)
    run.add_argument("--buffer", type=int, default=3, help="LDC buffer width")
    run.add_argument("--e0", type=float, default=0.02, help="laser peak field")
    run.add_argument("--omega", type=float, default=0.3, help="laser frequency")
    run.add_argument("--excite", action="store_true",
                     help="seed a photo-excited carrier")
    run.add_argument("--seed", type=int, default=11)
    run.add_argument("--backend", choices=("serial", "thread", "process"),
                     default=None,
                     help="domain executor backend (physics is identical "
                          "on all three; default: resolved from the "
                          "active tuning profile, serial untuned)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker count for thread/process backends "
                          "(default: CPU count)")
    run.add_argument("--hang-timeout", type=float, default=None,
                     help="seconds a process-backend chunk may go without "
                          "a heartbeat before its worker is declared "
                          "wedged and killed (heals like a crash)")
    run.add_argument("--deadline", type=float, default=None,
                     help="wall-clock budget in seconds: per checkpointed "
                          "segment under --checkpoint-every, for the whole "
                          "run otherwise")
    run.add_argument("--retry-budget", type=int, default=None,
                     help="total recoveries allowed across the whole "
                          "supervised run (default: unbounded)")
    run.add_argument("--checkpoint", help="write a checkpoint after the run")
    run.add_argument("--restart",
                     help="restore this checkpoint first (a rotation "
                          "directory restores its newest verified "
                          "generation)")
    run.add_argument("--checkpoint-every", type=int, default=0,
                     help="supervise the run, checkpointing every N MD "
                          "steps (0 = unsupervised)")
    run.add_argument("--max-retries", type=int, default=3,
                     help="max replays of a failed segment before aborting")
    run.add_argument("--checkpoint-dir", default="checkpoints",
                     help="directory for rotating supervised checkpoints")
    run.add_argument("--resilience-log",
                     help="write supervisor events to this JSON-lines file")
    run.add_argument("--trace-out",
                     help="write a Chrome trace-event JSON of this run")
    run.add_argument("--array-backend",
                     choices=("numpy", "array_api_strict", "auto"),
                     default=None,
                     help="array-API substrate for the hot kernels "
                          "(default: resolve from the tuning profile)")
    run.add_argument("--tuning-profile",
                     help="activate a tuned parameter profile written by "
                          "'tune --profile-out'")
    run.set_defaults(func=_cmd_run)

    scaling = sub.add_parser("scaling", help="Figs. 2-3 scaling tables")
    scaling.add_argument("--mode", choices=("weak", "strong", "both"),
                         default="both")
    scaling.set_defaults(func=_cmd_scaling)

    spectrum = sub.add_parser("spectrum", help="delta-kick absorption run")
    spectrum.add_argument("--grid", type=int, default=12)
    spectrum.add_argument("--norb", type=int, default=4)
    spectrum.add_argument("--depth", type=float, default=3.0,
                          help="model-well depth (Ha)")
    spectrum.add_argument("--steps", type=int, default=800)
    spectrum.add_argument("--seed", type=int, default=0)
    spectrum.add_argument("--deadline", type=float, default=None,
                          help="wall-clock budget in seconds for the "
                               "propagation loop")
    spectrum.add_argument("--trace-out",
                          help="write a Chrome trace-event JSON of this run")
    spectrum.add_argument("--array-backend",
                          choices=("numpy", "array_api_strict", "auto"),
                          default=None,
                          help="array-API substrate for the propagation "
                               "kernels")
    spectrum.add_argument("--tuning-profile",
                          help="activate a tuned parameter profile written "
                               "by 'tune --profile-out'")
    spectrum.set_defaults(func=_cmd_spectrum)

    tune = sub.add_parser(
        "tune", help="correctness-gated autotuning of the hot paths"
    )
    tune.add_argument("--select", action="append",
                      help="tunable id to tune (repeatable; default: all)")
    tune.add_argument("--cache",
                      help="tuning cache path (default: "
                           ".repro-tuning/cache.json)")
    tune.add_argument("--force", action="store_true",
                      help="drop cached winners and re-tune from scratch")
    tune.add_argument("--search", choices=("auto", "exhaustive", "halving"),
                      default="auto", help="search strategy")
    tune.add_argument("--warmup", type=int, default=1,
                      help="unmeasured warmup calls per candidate")
    tune.add_argument("--repeats", type=int, default=3,
                      help="timed repeats per candidate (median/MAD)")
    tune.add_argument("--seed", type=int, default=0,
                      help="search seed (sub-sampling of huge spaces)")
    tune.add_argument("--report",
                      help="write the machine-readable tuning report here")
    tune.add_argument("--profile-out",
                      help="write the resolved tuning profile here")
    tune.add_argument("--trace-out",
                      help="write a Chrome trace-event JSON of the tuning "
                           "run")
    tune.set_defaults(func=_cmd_tune)

    ens = sub.add_parser(
        "ensemble",
        help="batched FSSH trajectory-swarm ensemble over a classical path",
    )
    ens.add_argument("--ntraj", type=int, default=32,
                     help="ensemble size (trajectories)")
    ens.add_argument("--nsteps", type=int, default=50,
                     help="MD steps of the classical path")
    ens.add_argument("--nstates", type=int, default=4,
                     help="adiabatic states of the model path")
    ens.add_argument("--dt", type=float, default=1.0, help="MD step (a.u.)")
    ens.add_argument("--path-seed", type=int, default=7,
                     help="seed of the synthetic classical path")
    ens.add_argument("--coupling", type=float, default=0.08,
                     help="nonadiabatic coupling scale of the model path")
    ens.add_argument("--seed", type=int, default=2024,
                     help="ensemble seed; trajectory i draws from the "
                          "(seed, i) stream on every backend")
    ens.add_argument("--istate", type=int, default=None,
                     help="initial active state (default: highest)")
    ens.add_argument("--substeps", type=int, default=20,
                     help="electronic RK4 sub-steps per MD step")
    ens.add_argument("--batch-size", type=int, default=None,
                     help="trajectories per swarm batch (default: the "
                          "ensemble.swarm tunable, 32 untuned)")
    ens.add_argument("--hop-rescale", choices=("energy", "augment", "none"),
                     default="energy",
                     help="velocity handling after accepted hops "
                          "(unixmd hop_rescale; 'none' = classical-path "
                          "approximation)")
    ens.add_argument("--hop-reject", choices=("keep", "reverse"),
                     default="keep",
                     help="frustrated-hop velocity policy (unixmd "
                          "hop_reject)")
    ens.add_argument("--decoherence", choices=("none", "edc"),
                     default="none",
                     help="decoherence correction (unixmd dec_correction)")
    ens.add_argument("--edc-parameter", type=float, default=0.1,
                     help="EDC energy constant C in Ha (unixmd default 0.1)")
    ens.add_argument("--backend", choices=("serial", "thread", "process"),
                     default=None,
                     help="executor backend for batch fan-out (results are "
                          "bit-identical on all three; default: tuning "
                          "profile, serial untuned)")
    ens.add_argument("--workers", type=int, default=None,
                     help="worker count for thread/process backends")
    ens.add_argument("--round-size", type=int, default=None,
                     help="batches per supervisable round (default: "
                          "worker count)")
    ens.add_argument("--hang-timeout", type=float, default=None,
                     help="process-backend heartbeat watchdog timeout")
    ens.add_argument("--deadline", type=float, default=None,
                     help="wall-clock budget in seconds: per round under "
                          "--checkpoint-every, whole run otherwise")
    ens.add_argument("--checkpoint-every", type=int, default=0,
                     help="supervise the ensemble, checkpointing the "
                          "partial swarm every N rounds (0 = off)")
    ens.add_argument("--checkpoint-dir", default="checkpoints",
                     help="directory for rotating partial-ensemble "
                          "checkpoints")
    ens.add_argument("--max-retries", type=int, default=3,
                     help="max replays of a failed round before aborting")
    ens.add_argument("--resilience-log",
                     help="write supervisor events to this JSON-lines file")
    ens.add_argument("--restart",
                     help="resume a partial ensemble from this checkpoint "
                          "rotation directory")
    ens.add_argument("--stop-after", type=int, default=None,
                     help="stop after N rounds even if batches remain "
                          "(checkpointed partial ensembles resume with "
                          "--restart)")
    ens.add_argument("--print-every", type=int, default=None,
                     help="print streaming statistics every N steps "
                          "(default: ~10 lines)")
    ens.add_argument("--out", help="write per-step ensemble statistics to "
                                   "this .npz")
    ens.add_argument("--trace-out",
                     help="write a Chrome trace-event JSON of this run")
    ens.add_argument("--array-backend",
                     choices=("numpy", "array_api_strict", "auto"),
                     default=None,
                     help="array-API substrate for the batched FSSH kernels")
    ens.add_argument("--tuning-profile",
                     help="activate a tuned parameter profile written by "
                          "'tune --profile-out'")
    ens.set_defaults(func=_cmd_ensemble)

    serve = sub.add_parser(
        "serve",
        help="persistent serving daemon: batched jobs over a unix socket",
    )
    serve.add_argument("--socket", default=".repro-serve.sock",
                       help="unix socket path to listen on")
    serve.add_argument("--artifact-root", default=".repro-artifacts",
                       help="content-addressed artifact store directory")
    serve.add_argument("--no-artifacts", action="store_true",
                       help="disable result memoization entirely")
    serve.add_argument("--artifact-max-bytes", type=int, default=None,
                       help="LRU byte budget of the artifact store "
                            "(default: unbounded)")
    serve.add_argument("--scratch-dir", default=None,
                       help="supervisor checkpoint scratch directory "
                            "(default: a private temp dir)")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="max jobs coalesced into one batch")
    serve.add_argument("--max-wait", type=float, default=0.05,
                       help="seconds the scheduler lingers for "
                            "coalescible company")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="bounded admission queue depth (beyond it, "
                            "jobs are shed with a typed ServerBusy)")
    serve.add_argument("--pool-entries", type=int, default=8,
                       help="warm-state pool entry cap (LRU)")
    serve.add_argument("--pool-max-bytes", type=int, default=None,
                       help="warm-state pool byte budget (LRU)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-job wall-clock budget in seconds")
    serve.add_argument("--max-retries", type=int, default=1,
                       help="supervisor retries per job segment")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one job (or op) to a serving daemon"
    )
    submit.add_argument("--socket", default=".repro-serve.sock",
                        help="daemon unix socket path")
    submit.add_argument("--op",
                        choices=("submit", "ping", "stats", "invalidate",
                                 "shutdown"),
                        default="submit", help="operation to perform")
    submit.add_argument("--kind",
                        choices=("run", "spectrum", "scf", "ensemble"),
                        default="ensemble", help="job kind (op=submit)")
    submit.add_argument("--param", action="append", metavar="KEY=VALUE",
                        type=_parse_job_param,
                        help="job parameter override (repeatable; values "
                             "parse as JSON, bare words as strings)")
    submit.add_argument("--deadline", type=float, default=None,
                        help="per-job wall-clock budget in seconds")
    submit.add_argument("--no-memoize", action="store_true",
                        help="skip the artifact store for this job")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="client socket timeout in seconds")
    submit.add_argument("--scope",
                        choices=("pool", "artifacts", "all"),
                        default="pool",
                        help="what to drop (op=invalidate)")
    submit.add_argument("--out",
                        help="write the result's arrays to this .npz")
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    from repro.resilience.liveness import DeadlineExceeded

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except DeadlineExceeded as exc:
        # An expired --deadline is an intentional bound, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
