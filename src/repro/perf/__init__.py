"""Performance instrumentation: timers, counters, paper-style reports."""

from repro.perf.timers import Timer, RegionTimer, timed
from repro.perf.counters import CounterSet
from repro.perf.report import Table, format_speedup, format_seconds

__all__ = [
    "Timer",
    "RegionTimer",
    "timed",
    "CounterSet",
    "Table",
    "format_speedup",
    "format_seconds",
]
