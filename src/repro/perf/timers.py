"""Wall-clock timers with named-region aggregation."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class Timer:
    """A simple start/stop wall-clock timer."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed = 0.0
        self.calls = 0

    def start(self) -> None:
        """Start timing; raises if already running."""
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing; returns this interval and accumulates it."""
        if self._start is None:
            raise RuntimeError("timer not running")
        dt = time.perf_counter() - self._start
        self._start = None
        self.elapsed += dt
        self.calls += 1
        return dt

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self._start = None
        self.elapsed = 0.0
        self.calls = 0

    @property
    def mean(self) -> float:
        """Mean time per start/stop cycle."""
        return self.elapsed / self.calls if self.calls else 0.0


class RegionTimer:
    """Named-region timing with nesting support.

    Usage::

        rt = RegionTimer()
        with rt.region("electron_propagation"):
            ...
        print(rt.report())
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._stack: List[Tuple[str, float]] = []

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Context manager timing one named (possibly nested) region.

        Exception-safe: a region whose body raises still records its
        elapsed time and leaves the stack exactly as it found it.  The
        entry is removed by identity (not a blind ``pop``), so even a
        child region that leaked its stack entry cannot make this region
        account its time under the wrong name.
        """
        entry = (name, time.perf_counter())
        self._stack.append(entry)
        try:
            yield
        finally:
            for i in range(len(self._stack) - 1, -1, -1):
                if self._stack[i] is entry:
                    del self._stack[i]
                    break
            dt = time.perf_counter() - entry[1]
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds in a region (0 if never entered)."""
        return self.totals.get(name, 0.0)

    def report(self) -> str:
        """Aligned text report sorted by descending total time."""
        if not self.totals:
            return "(no regions timed)"
        width = max(len(k) for k in self.totals)
        lines = []
        for name, t in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"{name:<{width}}  {t:10.4f} s  x{self.counts[name]}"
            )
        return "\n".join(lines)


def timed(fn: Callable, *args, repeat: int = 1, **kwargs) -> Tuple[float, object]:
    """Best-of-``repeat`` wall time of a callable; returns (seconds, result)."""
    if repeat < 1:
        raise ValueError("repeat must be positive")
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result
