"""Flop/byte counter aggregation across kernels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CounterSet:
    """Accumulates operation counts per named kernel."""

    flops: Dict[str, float] = field(default_factory=dict)
    bytes_moved: Dict[str, float] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, flops: float, bytes_moved: float) -> None:
        """Record one kernel invocation."""
        if flops < 0 or bytes_moved < 0:
            raise ValueError("counts must be non-negative")
        self.flops[name] = self.flops.get(name, 0.0) + flops
        self.bytes_moved[name] = self.bytes_moved.get(name, 0.0) + bytes_moved
        self.calls[name] = self.calls.get(name, 0) + 1

    def total_flops(self) -> float:
        """Sum of flops over all kernels."""
        return sum(self.flops.values())

    def total_bytes(self) -> float:
        """Sum of memory traffic over all kernels."""
        return sum(self.bytes_moved.values())

    def arithmetic_intensity(self, name: str) -> float:
        """Flops per byte for one kernel (roofline x-axis)."""
        b = self.bytes_moved.get(name, 0.0)
        if b == 0.0:
            return float("inf")
        return self.flops.get(name, 0.0) / b

    def merge(self, other: "CounterSet") -> None:
        """Fold another counter set into this one."""
        for name in other.calls:
            self.flops[name] = self.flops.get(name, 0.0) + other.flops[name]
            self.bytes_moved[name] = (
                self.bytes_moved.get(name, 0.0) + other.bytes_moved[name]
            )
            self.calls[name] = self.calls.get(name, 0) + other.calls[name]
