"""Paper-style text tables for the benchmark harnesses.

Every bench prints a table of the paper's reported values next to our
measured (real wall-clock at documented reduced scale) and modeled
(roofline at paper scale) values, so EXPERIMENTS.md rows can be generated
directly from bench output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_seconds(t: Optional[float]) -> str:
    """Human-scaled seconds."""
    if t is None:
        return "-"
    if t >= 100.0:
        return f"{t:.1f} s"
    if t >= 0.1:
        return f"{t:.3f} s"
    if t >= 1e-4:
        return f"{t * 1e3:.3f} ms"
    return f"{t * 1e6:.1f} us"


def format_speedup(x: Optional[float]) -> str:
    """Format a speedup factor as e.g. 3.14x."""
    if x is None:
        return "-"
    return f"{x:.2f}x"


class Table:
    """Minimal aligned-text table builder."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ValueError("need at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row (cell count must match the headers)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """Render the aligned text table."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
