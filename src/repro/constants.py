"""Physical constants in Hartree atomic units.

DC-MESH works in Hartree atomic units throughout: the reduced Planck
constant, electron mass and elementary charge are all unity, energies are
in hartree (Ha), lengths in bohr, and times in atomic time units
(1 a.u. = 24.188 as).  Only the speed of light survives as a dimensionful
parameter (``C_LIGHT`` = 1/alpha).
"""

from __future__ import annotations

import math

#: Reduced Planck constant (a.u.).
HBAR = 1.0

#: Electron mass (a.u.).
M_ELECTRON = 1.0

#: Elementary charge (a.u.).
E_CHARGE = 1.0

#: Fine-structure constant (CODATA 2018).
ALPHA_FS = 7.2973525693e-3

#: Speed of light in atomic units, c = 1/alpha.
C_LIGHT = 1.0 / ALPHA_FS

#: One hartree in electron-volts.
HARTREE_EV = 27.211386245988

#: One bohr in angstroms.
BOHR_ANGSTROM = 0.529177210903

#: One atomic time unit in femtoseconds.
AUT_FS = 2.4188843265857e-2

#: One atomic time unit in attoseconds.
AUT_AS = AUT_FS * 1000.0

#: Boltzmann constant in Ha/K.
KB_HA = 3.166811563e-6

#: Proton mass in electron masses (for nuclear dynamics).
M_PROTON = 1836.15267343

#: Atomic masses (in electron-mass units) for the species used in PbTiO3.
ATOMIC_MASS = {
    "Pb": 207.2 * M_PROTON,
    "Ti": 47.867 * M_PROTON,
    "O": 15.999 * M_PROTON,
    "H": 1.008 * M_PROTON,
}

#: Valence charges of the pseudo-atoms used in this reproduction.
VALENCE_CHARGE = {"Pb": 4.0, "Ti": 4.0, "O": 6.0, "H": 1.0}


def ev_to_hartree(energy_ev: float) -> float:
    """Convert an energy from eV to hartree."""
    return energy_ev / HARTREE_EV


def hartree_to_ev(energy_ha: float) -> float:
    """Convert an energy from hartree to eV."""
    return energy_ha * HARTREE_EV


def fs_to_aut(time_fs: float) -> float:
    """Convert a time from femtoseconds to atomic time units."""
    return time_fs / AUT_FS


def aut_to_fs(time_aut: float) -> float:
    """Convert a time from atomic time units to femtoseconds."""
    return time_aut * AUT_FS


def angstrom_to_bohr(length_angstrom: float) -> float:
    """Convert a length from angstrom to bohr."""
    return length_angstrom / BOHR_ANGSTROM


def bohr_to_angstrom(length_bohr: float) -> float:
    """Convert a length from bohr to angstrom."""
    return length_bohr * BOHR_ANGSTROM


def laser_intensity_to_field(intensity_w_cm2: float) -> float:
    """Peak electric field (a.u.) of a laser of given intensity (W/cm^2).

    Uses E0[a.u.] = sqrt(I / 3.50944758e16 W/cm^2), the standard atomic
    unit of intensity.
    """
    if intensity_w_cm2 < 0.0:
        raise ValueError("intensity must be non-negative")
    return math.sqrt(intensity_w_cm2 / 3.50944758e16)


def wavelength_nm_to_omega(wavelength_nm: float) -> float:
    """Angular frequency (a.u.) of light with the given vacuum wavelength."""
    if wavelength_nm <= 0.0:
        raise ValueError("wavelength must be positive")
    # omega = 2 pi c / lambda, with lambda converted nm -> bohr.
    lam_bohr = wavelength_nm * 10.0 / BOHR_ANGSTROM
    return 2.0 * math.pi * C_LIGHT / lam_bohr
