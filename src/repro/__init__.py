"""repro: DC-MESH -- divide-and-conquer Maxwell-Ehrenfest-surface-hopping.

A complete Python reproduction of "Accelerating Quantum Light-Matter
Dynamics on Graphics Processing Units" (IPPS 2024): linear-scaling
nonadiabatic quantum molecular dynamics coupling real-time TDDFT (LFD,
GPU-resident) with divide-and-conquer DFT, surface hopping and MD (QXMD,
CPU-resident) through shadow dynamics, plus the virtual-GPU and
simulated-Polaris substrates used to reproduce the paper's performance
evaluation.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quick start::

    from repro import DCMESHSimulation, DCMESHConfig, TimescaleSplit
    from repro.grids import Grid3D
    from repro.pseudo import get_species
    sim = DCMESHSimulation(Grid3D.cubic(16, 0.6), (2, 1, 1), positions,
                           [get_species("O")] * 2)
    sim.run(10)
"""

from repro.constants import (
    HBAR,
    C_LIGHT,
    HARTREE_EV,
    BOHR_ANGSTROM,
    AUT_FS,
    ev_to_hartree,
    hartree_to_ev,
    fs_to_aut,
    aut_to_fs,
)
from repro.core import (
    DCMESHConfig,
    DCMESHSimulation,
    MDStepRecord,
    ShadowLedger,
    TimescaleSplit,
    scissor_shift,
)
from repro.grids import Grid3D, Domain, DomainDecomposition
from repro.lfd import (
    WaveFunctionSet,
    QDPropagator,
    PropagatorConfig,
    NonlocalCorrector,
    kinetic_step,
)
from repro.device import VirtualGPU
from repro.parallel import SimComm, PolarisModel
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    GuardConfig,
    HealthGuard,
    RunSupervisor,
    SupervisorConfig,
)

__version__ = "1.0.0"

__all__ = [
    "HBAR",
    "C_LIGHT",
    "HARTREE_EV",
    "BOHR_ANGSTROM",
    "AUT_FS",
    "ev_to_hartree",
    "hartree_to_ev",
    "fs_to_aut",
    "aut_to_fs",
    "DCMESHConfig",
    "DCMESHSimulation",
    "MDStepRecord",
    "ShadowLedger",
    "TimescaleSplit",
    "scissor_shift",
    "Grid3D",
    "Domain",
    "DomainDecomposition",
    "WaveFunctionSet",
    "QDPropagator",
    "PropagatorConfig",
    "NonlocalCorrector",
    "kinetic_step",
    "VirtualGPU",
    "SimComm",
    "PolarisModel",
    "FaultPlan",
    "FaultSpec",
    "GuardConfig",
    "HealthGuard",
    "RunSupervisor",
    "SupervisorConfig",
    "__version__",
]
