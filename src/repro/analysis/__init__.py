"""Analysis: efficiency/speedup math and optical spectra."""

from repro.analysis.efficiency import (
    speedup,
    weak_scaling_efficiency,
    strong_scaling_efficiency,
    throughput,
    cumulative_speedup,
)
from repro.analysis.spectra import dipole_to_spectrum, absorption_peaks
from repro.analysis.hhg import (
    harmonic_spectrum,
    harmonic_peak_intensities,
    odd_even_contrast,
)
from repro.analysis.hysteresis import (
    HysteresisLoop,
    sweep_hysteresis,
    excitation_softening,
)

__all__ = [
    "speedup",
    "weak_scaling_efficiency",
    "strong_scaling_efficiency",
    "throughput",
    "cumulative_speedup",
    "dipole_to_spectrum",
    "absorption_peaks",
    "harmonic_spectrum",
    "harmonic_peak_intensities",
    "odd_even_contrast",
    "HysteresisLoop",
    "sweep_hysteresis",
    "excitation_softening",
]
