"""Optical absorption spectra from real-time dipole signals.

The standard linear-response check of a real-time TDDFT implementation:
after a weak delta-kick, the imaginary part of the Fourier-transformed
dipole response gives the absorption strength function, whose peaks sit
at the electronic excitation energies.  Used by the physics sanity tests
to validate the LFD propagator end to end.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def dipole_to_spectrum(
    times: np.ndarray,
    dipole: np.ndarray,
    kick_strength: float,
    damping: float = 0.005,
) -> Tuple[np.ndarray, np.ndarray]:
    """Strength function S(omega) from a dipole time series.

    Parameters
    ----------
    times:
        Uniformly spaced sample times (a.u.).
    dipole:
        Dipole component along the kick axis, same length.
    kick_strength:
        The delta-kick momentum k0 (normalizes the response).
    damping:
        Exponential window rate (peak broadening; avoids ringing).

    Returns
    -------
    (omega, strength): angular-frequency grid and S(omega) >= 0 up to
    numerical noise; integral of S gives the f-sum.
    """
    times = np.asarray(times, dtype=float)
    dipole = np.asarray(dipole, dtype=float)
    if times.ndim != 1 or times.shape != dipole.shape:
        raise ValueError("times and dipole must be equal-length 1-D arrays")
    if times.size < 4:
        raise ValueError("need at least 4 samples")
    if kick_strength == 0.0:
        raise ValueError("kick_strength must be non-zero")
    dt = float(times[1] - times[0])
    if not np.allclose(np.diff(times), dt, rtol=1e-6):
        raise ValueError("times must be uniformly spaced")
    signal = (dipole - dipole[0]) * np.exp(-damping * (times - times[0]))
    n = signal.size
    omega = np.fft.rfftfreq(n, d=dt) * 2.0 * np.pi
    ft = np.fft.rfft(signal) * dt
    strength = -(2.0 / np.pi) * omega * np.imag(ft) / kick_strength
    return omega, strength


def absorption_peaks(
    omega: np.ndarray, strength: np.ndarray, min_height: float = 0.05
) -> np.ndarray:
    """Peak positions of a strength function (local maxima above threshold)."""
    omega = np.asarray(omega, dtype=float)
    strength = np.asarray(strength, dtype=float)
    if omega.shape != strength.shape:
        raise ValueError("omega and strength must align")
    smax = float(strength.max()) if strength.size else 0.0
    if smax <= 0:
        return np.array([])
    peaks = []
    for i in range(1, omega.size - 1):
        if (
            strength[i] > strength[i - 1]
            and strength[i] >= strength[i + 1]
            and strength[i] >= min_height * smax
        ):
            peaks.append(omega[i])
    return np.asarray(peaks)
