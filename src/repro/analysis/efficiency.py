"""Speedup / efficiency / throughput definitions exactly as in the paper.

Section IV defines: the *speed* of DC-MESH as (number of atoms) x (MD
steps executed per second); the isogranular (weak-scaling) speedup as the
ratio of speeds between P and the reference 4 ranks; weak-scaling
efficiency as that speedup divided by P/4; strong-scaling speedup as
t(P_min)/t(P_max); and throughput (Fig. 4) as ranks completing a fixed
problem per unit time, P / t_completion.
"""

from __future__ import annotations

from typing import Sequence


def speedup(t_baseline: float, t_new: float) -> float:
    """Plain ratio t_baseline / t_new."""
    if t_baseline <= 0 or t_new <= 0:
        raise ValueError("times must be positive")
    return t_baseline / t_new


def weak_scaling_efficiency(
    speed_p: float, speed_ref: float, p: int, p_ref: int
) -> float:
    """Isogranular speedup divided by the rank ratio (Fig. 2 definition)."""
    if min(speed_p, speed_ref) <= 0 or min(p, p_ref) <= 0:
        raise ValueError("speeds and rank counts must be positive")
    return (speed_p / speed_ref) / (p / p_ref)


def strong_scaling_efficiency(
    t_pmin: float, t_pmax: float, p_min: int, p_max: int
) -> float:
    """Strong-scaling speedup divided by the rank ratio (Fig. 3 definition)."""
    if min(t_pmin, t_pmax) <= 0 or min(p_min, p_max) <= 0:
        raise ValueError("times and rank counts must be positive")
    return (t_pmin / t_pmax) / (p_max / p_min)


def throughput(nranks: int, t_completion: float) -> float:
    """Fig. 4 definition: ranks completing the fixed problem per second."""
    if nranks <= 0 or t_completion <= 0:
        raise ValueError("nranks and t_completion must be positive")
    return nranks / t_completion


def cumulative_speedup(stage_speedups: Sequence[float]) -> float:
    """Product of per-stage speedups (the Fig. 6 cumulative bar)."""
    total = 1.0
    for s in stage_speedups:
        if s <= 0:
            raise ValueError("speedups must be positive")
        total *= s
    return total
