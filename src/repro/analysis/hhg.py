"""High-harmonic generation (HHG) spectra from real-time dipoles.

The paper's introduction motivates DC-MESH with attosecond physics: the
highly nonlinear response of matter to intense lasers, whose signature
is the emission spectrum at odd harmonics of the driver (in
centrosymmetric media, even harmonics are symmetry-forbidden).  This
module extracts harmonic spectra from the dipole signal of a strong-field
LFD run.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def harmonic_spectrum(
    times: np.ndarray,
    dipole: np.ndarray,
    omega0: float,
    max_harmonic: float = 15.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Emission spectrum |omega^2 d(omega)|^2 on a harmonic-order axis.

    Parameters
    ----------
    times, dipole:
        Uniformly sampled dipole component along the driver polarization.
    omega0:
        Driver angular frequency (defines harmonic order 1).
    max_harmonic:
        Upper cutoff of the returned axis.

    Returns
    -------
    (orders, intensity): harmonic order omega/omega0 and the emitted
    intensity (arbitrary units), Hann-windowed against leakage.
    """
    times = np.asarray(times, dtype=float)
    dipole = np.asarray(dipole, dtype=float)
    if times.ndim != 1 or times.shape != dipole.shape:
        raise ValueError("times and dipole must be equal-length 1-D arrays")
    if times.size < 16:
        raise ValueError("need at least 16 samples")
    if omega0 <= 0:
        raise ValueError("omega0 must be positive")
    dt = float(times[1] - times[0])
    if not np.allclose(np.diff(times), dt, rtol=1e-6):
        raise ValueError("times must be uniformly spaced")
    signal = dipole - dipole.mean()
    window = np.hanning(signal.size)
    spec = np.fft.rfft(signal * window) * dt
    omega = np.fft.rfftfreq(signal.size, d=dt) * 2.0 * np.pi
    intensity = np.abs(omega ** 2 * spec) ** 2
    orders = omega / omega0
    sel = orders <= max_harmonic
    return orders[sel], intensity[sel]


def harmonic_peak_intensities(
    orders: np.ndarray,
    intensity: np.ndarray,
    harmonics: Tuple[int, ...] = (1, 2, 3, 4, 5),
    half_width: float = 0.4,
) -> dict:
    """Peak intensity in a window around each integer harmonic."""
    orders = np.asarray(orders, dtype=float)
    intensity = np.asarray(intensity, dtype=float)
    out = {}
    for h in harmonics:
        sel = np.abs(orders - h) <= half_width
        out[h] = float(intensity[sel].max()) if np.any(sel) else 0.0
    return out


def odd_even_contrast(peaks: dict) -> float:
    """log10 ratio of mean odd-harmonic to mean even-harmonic intensity.

    Positive (typically >> 0) in centrosymmetric media, where even
    harmonics are forbidden by inversion symmetry.
    """
    odd = [v for h, v in peaks.items() if h % 2 == 1 and h > 1]
    even = [v for h, v in peaks.items() if h % 2 == 0]
    if not odd or not even:
        raise ValueError("need at least one odd (>1) and one even harmonic")
    mean_even = max(float(np.mean(even)), 1e-300)
    return float(np.log10(np.mean(odd) / mean_even))
