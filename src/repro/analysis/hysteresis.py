"""Ferroelectric hysteresis analysis on the effective Hamiltonian.

Sweeping an external field over the Landau energy surface produces the
classic P-E hysteresis loop; the coercive field and remanent polarization
are the figures of merit the topotronics application (Section V) aims to
undercut with light-induced switching.  Also quantifies how
photoexcitation shrinks the loop -- the quasi-static counterpart of the
Fig. 7 switching study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.materials.effective_ham import EffectiveHamiltonian
from repro.materials.topology import uniform_modes


@dataclass(frozen=True)
class HysteresisLoop:
    """A swept P-E loop along one axis."""

    fields: np.ndarray          # applied field values, in sweep order
    polarizations: np.ndarray   # mean mode component along the axis
    axis: int

    @property
    def remanent_polarization(self) -> float:
        """|P| at the zero-field crossings (mean of both branches)."""
        zeros = np.where(np.isclose(self.fields, 0.0, atol=1e-12))[0]
        if zeros.size == 0:
            raise ValueError("the sweep never passes through zero field")
        return float(np.mean(np.abs(self.polarizations[zeros])))

    @property
    def coercive_field(self) -> float:
        """Field magnitude at which P changes sign (mean of both branches)."""
        crossings = []
        p = self.polarizations
        e = self.fields
        for i in range(len(p) - 1):
            if p[i] * p[i + 1] < 0.0:
                # Linear interpolation of the zero crossing.
                frac = p[i] / (p[i] - p[i + 1])
                crossings.append(abs(e[i] + frac * (e[i + 1] - e[i])))
        if not crossings:
            return 0.0
        return float(np.mean(crossings))

    @property
    def is_hysteretic(self) -> bool:
        """True if the up and down branches differ (finite loop area)."""
        return self.loop_area() > 1e-6

    def loop_area(self) -> float:
        """Enclosed P-E area (the switching energy density)."""
        return abs(float(np.trapezoid(self.polarizations, self.fields)))


def sweep_hysteresis(
    ham: EffectiveHamiltonian,
    e_max: float,
    nsteps: int = 21,
    axis: int = 2,
    n_exc: float = 0.0,
    relax_steps: int = 300,
) -> HysteresisLoop:
    """Quasi-static field sweep 0 -> +E -> -E -> +E along ``axis``.

    Each field value relaxes from the previous state (field-cooled
    protocol), so metastability produces the loop.
    """
    if e_max <= 0:
        raise ValueError("e_max must be positive")
    if nsteps < 3:
        raise ValueError("need at least 3 steps per branch")
    if axis not in (0, 1, 2):
        raise ValueError("axis must be 0, 1 or 2")
    up = np.linspace(-e_max, e_max, nsteps)
    sweep = np.concatenate([up, up[::-1][1:]])
    modes = uniform_modes(ham.shape, ham.params.p_min, axis=axis)
    fields: List[float] = []
    pols: List[float] = []
    for e_val in sweep:
        e_vec = np.zeros(3)
        e_vec[axis] = e_val
        modes, _ = ham.relax(
            modes, nsteps=relax_steps, n_exc=n_exc, e_field=e_vec
        )
        fields.append(float(e_val))
        pols.append(float(modes[..., axis].mean()))
    return HysteresisLoop(
        fields=np.asarray(fields), polarizations=np.asarray(pols), axis=axis
    )


def excitation_softening(
    ham: EffectiveHamiltonian,
    e_max: float,
    excitations: Tuple[float, ...] = (0.0, 0.2, 0.4),
    nsteps: int = 15,
) -> List[Tuple[float, float]]:
    """Coercive field vs photoexcitation fraction (loop collapse).

    Returns (n_exc, coercive field) pairs; the coercive field shrinks
    monotonically toward zero as the excitation approaches the Landau
    threshold -- the quasi-static signature of light-induced switching.
    """
    out = []
    for n_exc in excitations:
        loop = sweep_hysteresis(ham, e_max, nsteps=nsteps, n_exc=n_exc)
        out.append((float(n_exc), loop.coercive_field))
    return out
