"""The serving daemon: a long-lived asyncio loop over a unix socket.

Event-loop discipline (enforced lexically by statlint's DCL017): the
``async`` bodies here never block -- they parse lines, route jobs and
await futures.  All compute runs in a single dedicated worker thread
via ``run_in_executor`` (one worker, because the workloads are
internally parallel and a second concurrent batch would thrash the
same cores), and all blocking file I/O (artifact store, checkpoint
scratch) happens on that thread too.

Job lifecycle::

    client line -> validate -> admission (bounded queue, typed
    ServerBusy shed) -> scheduler assembles a batch (max_wait/max_batch)
    -> compatibility groups -> one coalesced execution per group on the
    worker thread (artifact-store memo hits answered first, warm-state
    pool reuse, RunSupervisor + deadline budgets) -> per-job futures
    resolve -> NDJSON responses.

Drain: SIGTERM (or the ``shutdown`` op) stops admission, lets the
in-flight group finish, resolves still-queued jobs with typed
``ServerShutdown`` responses, then closes the server.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import pathlib
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.artifacts import ArtifactKey, ArtifactStore, machine_fingerprint
from repro.obs import trace_span
from repro.resilience.liveness import deadline_scope
from repro.serve import workloads
from repro.serve.coalesce import (
    EnsembleGroupRun,
    EnsembleMember,
    run_group_supervised,
)
from repro.serve.jobs import (
    JobSpec,
    artifact_key,
    group_signature,
    validate_job,
    warm_key,
)
from repro.serve.pool import WarmStatePool
from repro.serve.protocol import (
    PROTOCOL,
    ProtocolError,
    busy_response,
    dumps_line,
    error_response,
    loads_line,
    ok_response,
    shutdown_response,
)
from repro.serve.scheduler import BatchPolicy, group_jobs

_SENTINEL: Any = object()


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon needs to start."""

    socket_path: pathlib.Path
    artifact_root: Optional[pathlib.Path] = None
    artifact_max_bytes: Optional[int] = None
    scratch_root: Optional[pathlib.Path] = None
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    max_queue: int = 64
    pool_entries: int = 8
    pool_max_bytes: Optional[int] = None
    default_deadline_s: Optional[float] = None
    max_retries: int = 1

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be positive")


class ServeMetrics:
    """Thread-safe serving counters (worker thread writes, loop reads)."""

    _COUNTERS = (
        "submitted", "completed", "failed", "busy_shed", "shutdown_shed",
        "batches", "groups", "coalesced_jobs", "memo_hits", "memo_stores",
        "warm_hits",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {k: 0 for k in self._COUNTERS}
        self._queue_wait_s = 0.0
        self._exec_s = 0.0

    def bump(self, name: str, by: int = 1) -> None:
        """Increment one named counter."""
        with self._lock:
            self._counts[name] += by

    def time_spent(self, queue_wait_s: float = 0.0,
                   exec_s: float = 0.0) -> None:
        """Accumulate queue-wait / execution wall time."""
        with self._lock:
            self._queue_wait_s += queue_wait_s
            self._exec_s += exec_s

    def snapshot(self) -> Dict[str, Any]:
        """Consistent copy of every counter plus accumulated times."""
        with self._lock:
            out: Dict[str, Any] = dict(self._counts)
            out["queue_wait_s"] = self._queue_wait_s
            out["exec_s"] = self._exec_s
            return out


def _split_payload(
    payload: Dict[str, Any],
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Partition a workload payload into (arrays, JSON-able scalars)."""
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
        else:
            scalars[key] = value
    return arrays, scalars


class _QueuedJob:
    """One admitted job: its spec, reply future, and queue timing."""

    __slots__ = ("spec", "future", "queued_at")

    def __init__(self, spec: JobSpec,
                 future: "asyncio.Future[Dict[str, Any]]",
                 queued_at: float) -> None:
        self.spec = spec
        self.future = future
        self.queued_at = queued_at


class ServeDaemon:
    """The persistent serving loop (one instance per socket)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = ServeMetrics()
        self.pool = WarmStatePool(max_entries=config.pool_entries,
                                  max_bytes=config.pool_max_bytes)
        self.store: Optional[ArtifactStore] = None
        if config.artifact_root is not None:
            self.store = ArtifactStore(config.artifact_root,
                                       max_bytes=config.artifact_max_bytes)
        self._machine = machine_fingerprint()
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._pending = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-exec"
        )
        self._exec_counter = itertools.count(1)
        self._scratch_root = config.scratch_root
        self._own_scratch = config.scratch_root is None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def run(self, install_signals: bool = True) -> None:
        """Serve until drained (SIGTERM or the ``shutdown`` op)."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        if self._scratch_root is None:
            self._scratch_root = pathlib.Path(
                await loop.run_in_executor(
                    self._worker,
                    lambda: tempfile.mkdtemp(prefix="repro-serve-"),
                )
            )
        if install_signals:
            import signal

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.begin_drain)
                except (NotImplementedError, RuntimeError):
                    break
        socket_path = self.config.socket_path
        await loop.run_in_executor(
            self._worker, self._prepare_socket_dir, socket_path
        )
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(socket_path)
        )
        scheduler = asyncio.ensure_future(self._scheduler())
        self._started.set()
        try:
            await self._drained.wait()
        finally:
            self.begin_drain()
            await scheduler
            # Let in-flight response writes (e.g. the shutdown op's own
            # acknowledgement) flush before tearing the server down.
            await asyncio.sleep(0.05)
            self._server.close()
            await self._server.wait_closed()
            await loop.run_in_executor(self._worker, self._cleanup)
            self._worker.shutdown(wait=True)

    @staticmethod
    def _prepare_socket_dir(socket_path: pathlib.Path) -> None:
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        if socket_path.exists():
            socket_path.unlink()

    def _cleanup(self) -> None:
        if self.config.socket_path.exists():
            self.config.socket_path.unlink()
        if self._own_scratch and self._scratch_root is not None \
                and self._scratch_root.exists():
            shutil.rmtree(self._scratch_root, ignore_errors=True)

    def begin_drain(self) -> None:
        """Stop admission; the scheduler flushes and signals drained.

        Sync and idempotent so it can be a signal handler.
        """
        if self._draining:
            return
        self._draining = True
        self._queue.put_nowait(_SENTINEL)

    # ------------------------------------------------------------------ #
    # connection handling (async; must never block -- DCL017 territory)
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = loads_line(line)
                    response = await self._dispatch(request)
                except ProtocolError as exc:
                    response = {"protocol": PROTOCOL, "status": "error",
                                "error": {"type": "ProtocolError",
                                          "message": str(exc)}}
                writer.write(dumps_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"protocol": PROTOCOL, "status": "ok", "op": "ping"}
        if op == "stats":
            return {"protocol": PROTOCOL, "status": "ok", "op": "stats",
                    "stats": self.stats()}
        if op == "invalidate":
            return await self._op_invalidate(request)
        if op == "shutdown":
            self.begin_drain()
            await self._drained.wait()
            return {"protocol": PROTOCOL, "status": "ok", "op": "shutdown"}
        if op == "submit":
            return await self._op_submit(request)
        raise ProtocolError(f"unknown op {op!r}")

    async def _op_invalidate(self,
                             request: Dict[str, Any]) -> Dict[str, Any]:
        scope = request.get("scope", "pool")
        if scope not in ("pool", "artifacts", "all"):
            raise ProtocolError(f"unknown invalidate scope {scope!r}")
        dropped_pool = dropped_artifacts = 0
        if scope in ("pool", "all"):
            dropped_pool = self.pool.invalidate(request.get("key"))
        if scope in ("artifacts", "all") and self.store is not None:
            loop = asyncio.get_running_loop()
            dropped_artifacts = await loop.run_in_executor(
                self._worker, self.store.clear
            )
        return {"protocol": PROTOCOL, "status": "ok", "op": "invalidate",
                "dropped": {"pool": dropped_pool,
                            "artifacts": dropped_artifacts}}

    async def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        raw_jobs = request.get("jobs")
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise ProtocolError("submit needs a non-empty 'jobs' list")
        loop = asyncio.get_running_loop()
        responses: List[Any] = []
        waiting: List["asyncio.Future[Dict[str, Any]]"] = []
        for raw in raw_jobs:
            self.metrics.bump("submitted")
            if not isinstance(raw, dict):
                responses.append(error_response(
                    "?", ProtocolError("each job must be an object")))
                self.metrics.bump("failed")
                continue
            try:
                spec = validate_job(raw, self.config.default_deadline_s)
            except (ValueError, TypeError) as exc:
                responses.append(error_response(
                    str(raw.get("id", "?")), exc))
                self.metrics.bump("failed")
                continue
            if self._draining:
                responses.append(shutdown_response(spec.job_id))
                self.metrics.bump("shutdown_shed")
                continue
            if self._pending >= self.config.max_queue:
                responses.append(busy_response(
                    spec.job_id, self._pending, self.config.max_queue))
                self.metrics.bump("busy_shed")
                continue
            future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
            self._pending += 1
            self._queue.put_nowait(_QueuedJob(spec, future, loop.time()))
            responses.append(future)
            waiting.append(future)
        if waiting:
            await asyncio.wait(waiting)
        jobs_out = [r.result() if isinstance(r, asyncio.Future) else r
                    for r in responses]
        return {"protocol": PROTOCOL, "status": "ok", "op": "submit",
                "jobs": jobs_out}

    # ------------------------------------------------------------------ #
    # scheduler
    # ------------------------------------------------------------------ #
    async def _scheduler(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                self._flush_shutdown()
                break
            if self._draining:
                self._resolve(item, shutdown_response(item.spec.job_id))
                self.metrics.bump("shutdown_shed")
                continue
            batch = await self._assemble_batch(item)
            await self._run_batch(loop, batch)
            if self._draining:
                self._flush_shutdown()
                break
        self._drained.set()

    async def _assemble_batch(self, first: _QueuedJob) -> List[_QueuedJob]:
        """Linger up to ``max_wait_s`` for coalescible company."""
        policy = self.config.policy
        batch = [first]
        if policy.max_batch == 1 or policy.max_wait_s == 0.0:
            return batch
        loop = asyncio.get_running_loop()
        deadline = loop.time() + policy.max_wait_s
        while len(batch) < policy.max_batch:
            timeout = deadline - loop.time()
            if timeout <= 0:
                break
            try:
                item = await asyncio.wait_for(self._queue.get(), timeout)
            except asyncio.TimeoutError:
                break
            if item is _SENTINEL:
                # Drain began: finish what we already pulled (in-flight),
                # the outer loop flushes the rest.
                break
            batch.append(item)
        return batch

    async def _run_batch(self, loop: asyncio.AbstractEventLoop,
                         batch: List[_QueuedJob]) -> None:
        now = loop.time()
        for job in batch:
            self.metrics.time_spent(queue_wait_s=now - job.queued_at)
        self.metrics.bump("batches")
        groups = group_jobs([j.spec for j in batch], batch)
        for specs, jobs in groups:
            t0 = loop.time()
            results = await loop.run_in_executor(
                self._worker, self._execute_group, specs
            )
            self.metrics.time_spent(exec_s=loop.time() - t0)
            for job, response in zip(jobs, results):
                self._resolve(job, response)

    def _resolve(self, job: _QueuedJob, response: Dict[str, Any]) -> None:
        self._pending -= 1
        if not job.future.done():
            job.future.set_result(response)
        status = response.get("status")
        if status == "ok":
            self.metrics.bump("completed")
        elif status == "error":
            self.metrics.bump("failed")

    def _flush_shutdown(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _SENTINEL:
                continue
            self._resolve(item, shutdown_response(item.spec.job_id))
            self.metrics.bump("shutdown_shed")

    # ------------------------------------------------------------------ #
    # group execution (worker thread; blocking is fine here)
    # ------------------------------------------------------------------ #
    def _execute_group(
        self, specs: Tuple[JobSpec, ...]
    ) -> List[Dict[str, Any]]:
        """One coalesced execution; returns one response per spec."""
        self.metrics.bump("groups")
        if len(specs) > 1:
            self.metrics.bump("coalesced_jobs", by=len(specs))
        kind = specs[0].kind
        responses: Dict[str, Dict[str, Any]] = {}
        with trace_span("serve.group", "serve", kind=kind,
                        jobs=len(specs)):
            try:
                fresh, responses = self._answer_memoized(specs)
                if fresh:
                    computed = self._compute_group(kind, fresh)
                    for spec, payload, meta in computed:
                        meta.update(memoized=False, coalesced=len(specs))
                        self._memoize(spec, payload, meta)
                        responses[spec.job_id] = ok_response(
                            spec.job_id, payload, meta)
            except BaseException as exc:  # noqa: BLE001 -- per-job typed errors
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                failure = {s.job_id for s in specs} - set(responses)
                for job_id in failure:
                    responses[job_id] = error_response(job_id, exc)
        return [responses[s.job_id] for s in specs]

    def _answer_memoized(
        self, specs: Tuple[JobSpec, ...]
    ) -> Tuple[List[JobSpec], Dict[str, Dict[str, Any]]]:
        """Resolve artifact-store hits; return the still-fresh remainder."""
        responses: Dict[str, Dict[str, Any]] = {}
        fresh: List[JobSpec] = []
        for spec in specs:
            hit = None
            if self.store is not None and spec.memoize:
                hit = self.store.get(self._artifact_key(spec))
            if hit is None:
                fresh.append(spec)
                continue
            arrays, meta = hit
            payload = dict(meta.get("scalars", {}))
            payload.update(arrays)
            self.metrics.bump("memo_hits")
            responses[spec.job_id] = ok_response(
                spec.job_id, payload,
                {"memoized": True, "coalesced": len(specs)},
            )
        return fresh, responses

    def _artifact_key(self, spec: JobSpec) -> ArtifactKey:
        return artifact_key(spec, machine=self._machine)

    def _memoize(self, spec: JobSpec, payload: Dict[str, Any],
                 meta: Dict[str, Any]) -> None:
        if self.store is None or not spec.memoize:
            return
        arrays, scalars = _split_payload(payload)
        self.store.put(
            self._artifact_key(spec), arrays,
            meta={"scalars": scalars, "kind": spec.kind,
                  "params": spec.params},
        )
        self.metrics.bump("memo_stores")

    def _scratch_dir(self, specs: Tuple[JobSpec, ...]) -> pathlib.Path:
        assert self._scratch_root is not None
        name = f"{group_signature(specs)[:16]}-{next(self._exec_counter)}"
        return pathlib.Path(self._scratch_root) / name

    def _compute_group(
        self, kind: str, specs: List[JobSpec]
    ) -> List[Tuple[JobSpec, Dict[str, Any], Dict[str, Any]]]:
        if kind == "scf":
            return self._compute_scf(specs)
        if kind == "spectrum":
            return self._compute_spectrum(specs)
        if kind == "ensemble":
            return self._compute_ensemble(specs)
        out = []
        for spec in specs:
            with trace_span("serve.job", "serve", kind=kind,
                            job=spec.job_id):
                payload = workloads.run_payload(
                    spec.params,
                    supervise_dir=self._scratch_dir((spec,)),
                    deadline_s=spec.deadline_s,
                    max_retries=self.config.max_retries,
                )
            out.append((spec, payload, {}))
        return out

    def _compute_scf(
        self, specs: List[JobSpec]
    ) -> List[Tuple[JobSpec, Dict[str, Any], Dict[str, Any]]]:
        from repro.qxmd.scf import scf_solve_batch

        warm: Dict[str, Dict[str, Any]] = {}
        cold: List[JobSpec] = []
        for spec in specs:
            pooled = self.pool.get(warm_key(spec))
            if pooled is not None:
                warm[spec.job_id] = pooled
                self.metrics.bump("warm_hits")
            else:
                cold.append(spec)
        solved: Dict[str, Dict[str, Any]] = {}
        if cold:
            deadlines = [s.deadline_s for s in cold
                         if s.deadline_s is not None]
            budget = min(deadlines) if deadlines else None
            tasks = [workloads.scf_task(s.params) for s in cold]
            with trace_span("serve.job", "serve", kind="scf",
                            jobs=len(cold)):
                with deadline_scope(budget, "serve.scf"):
                    results = scf_solve_batch(tasks)
            for spec, result in zip(cold, results):
                payload = workloads.scf_payload(result)
                self.pool.put(
                    warm_key(spec), payload,
                    nbytes=lambda p: sum(
                        v.nbytes for v in p.values()
                        if isinstance(v, np.ndarray)
                    ),
                )
                solved[spec.job_id] = payload
        out = []
        for spec in specs:
            if spec.job_id in warm:
                payload = warm[spec.job_id]
                meta = {"warm": True}
            else:
                payload = solved[spec.job_id]
                meta = {"warm": False}
            out.append((spec, dict(payload), meta))
        return out

    def _compute_spectrum(
        self, specs: List[JobSpec]
    ) -> List[Tuple[JobSpec, Dict[str, Any], Dict[str, Any]]]:
        key = warm_key(specs[0])
        pooled = self.pool.get(key)
        warm = pooled is not None
        if warm:
            self.metrics.bump("warm_hits", by=len(specs))
            gs = pooled
        else:
            with trace_span("serve.spectrum.groundstate", "serve",
                            jobs=len(specs)):
                gs = workloads.spectrum_ground_state(specs[0].params)
            self.pool.put(key, gs,
                          nbytes=lambda g: g.nbytes())
        out = []
        for spec in specs:
            with trace_span("serve.job", "serve", kind="spectrum",
                            job=spec.job_id):
                payload = workloads.spectrum_payload(
                    gs, spec.params, deadline_s=spec.deadline_s
                )
            out.append((spec, payload, {"warm": warm}))
        return out

    def _compute_ensemble(
        self, specs: List[JobSpec]
    ) -> List[Tuple[JobSpec, Dict[str, Any], Dict[str, Any]]]:
        shared = specs[0].params
        path = workloads.ensemble_path(shared)
        nstates = int(shared["nstates"])
        members = []
        for spec in specs:
            istate = spec.params["istate"]
            members.append(EnsembleMember(
                ntraj=int(spec.params["ntraj"]),
                istate=(nstates - 1 if istate is None else int(istate)),
                seed=int(spec.params["seed"]),
            ))
        deadlines = [s.deadline_s for s in specs if s.deadline_s is not None]
        budget = min(deadlines) if deadlines else None
        explicit = [s.params["batch_size"] for s in specs
                    if s.params["batch_size"] is not None]
        group = EnsembleGroupRun(
            path,
            members,
            policy=workloads.ensemble_policy(shared),
            substeps=int(shared["substeps"]),
            array_backend=shared["array_backend"],
            batch_size=int(explicit[0]) if explicit else None,
        )
        results = run_group_supervised(
            group,
            self._scratch_dir(tuple(specs)),
            deadline_s=budget,
            max_retries=self.config.max_retries,
        )
        return [
            (spec, workloads.ensemble_payload(member), {})
            for spec, member in zip(specs, results)
        ]

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Queue/pool/store/counter snapshot (the ``stats`` op body)."""
        out: Dict[str, Any] = {
            "protocol": PROTOCOL,
            "queue_depth": self._pending,
            "max_queue": self.config.max_queue,
            "draining": self._draining,
            "metrics": self.metrics.snapshot(),
            "pool": self.pool.stats(),
        }
        if self.store is not None:
            out["artifacts"] = self.store.stats()
        return out


class DaemonHandle:
    """A daemon running on a dedicated thread (tests, benches, CI smoke).

    The production path is ``repro-mesh serve`` (asyncio.run on the main
    thread); this handle exists so a test can stand a real daemon up
    next to its client without forking.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.daemon = ServeDaemon(config)
        self._thread: Optional[threading.Thread] = None

    def start(self, timeout_s: float = 30.0) -> "DaemonHandle":
        """Launch the daemon thread; returns once the socket listens."""
        def _main() -> None:
            asyncio.run(self.daemon.run(install_signals=False))

        self._thread = threading.Thread(target=_main, daemon=True,
                                        name="serve-daemon")
        self._thread.start()
        if not self.daemon._started.wait(timeout_s):
            raise RuntimeError("daemon failed to start in time")
        deadline = time.monotonic() + timeout_s
        while not self.config.socket_path.exists():
            if time.monotonic() > deadline:
                raise RuntimeError("daemon socket never appeared")
            time.sleep(0.005)
        return self

    def stop(self, timeout_s: float = 60.0) -> None:
        """Begin a drain and join the daemon thread."""
        loop = self.daemon._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.daemon.begin_drain)
        if self._thread is not None:
            self._thread.join(timeout_s)
            if self._thread.is_alive():
                raise RuntimeError("daemon failed to drain in time")

    def __enter__(self) -> "DaemonHandle":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
