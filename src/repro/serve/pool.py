"""Warm-state pool: LRU reuse of converged ground-state stages.

The expensive prefix of a spectrum or scf job is its eigensolve; every
propagation or analysis after it is cheap.  The pool memoizes those
converged stages in memory under their *full* ground-state parameter key
(:func:`repro.serve.jobs.warm_key`), so a warm hit replays the exact
arrays a cold solve would have produced -- reuse is verbatim, which is
what keeps daemon results bit-identical to one-shot runs.

Bounded two ways: an entry-count cap and an optional byte budget
(entries report their own footprint via a caller-supplied ``nbytes``).
Eviction is least-recently-used.  ``invalidate()`` supports the
protocol's explicit cache-drop operation.  All methods are thread-safe:
the daemon's worker threads and the event loop's stats handler share
the pool.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple


class WarmStatePool:
    """A thread-safe LRU map of warm ground states."""

    def __init__(self, max_entries: int = 8,
                 max_bytes: Optional[int] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_entries = int(max_entries)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Any]:
        """The pooled state under ``key``, freshened, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: str, value: Any,
            nbytes: Optional[Callable[[Any], int]] = None) -> None:
        """Insert (or freshen) ``key``; evict LRU entries past the caps."""
        size = int(nbytes(value)) if nbytes is not None else 0
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (value, size)
            self._evict_locked(keep=key)

    def get_or_create(self, key: str, factory: Callable[[], Any],
                      nbytes: Optional[Callable[[Any], int]] = None) -> Any:
        """Warm hit or cold build-and-pool.

        The factory runs *outside* the lock (it may take seconds); two
        racing builders both compute, last writer wins -- both values
        are identical by construction (the key is the full stage
        config), so the race is benign.
        """
        value = self.get(key)
        if value is not None:
            return value
        value = factory()
        self.put(key, value, nbytes=nbytes)
        return value

    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one entry (or all with ``key=None``); returns the count."""
        with self._lock:
            if key is not None:
                return 1 if self._entries.pop(key, None) is not None else 0
            n = len(self._entries)
            self._entries.clear()
            return n

    # ------------------------------------------------------------------ #
    def _evict_locked(self, keep: str) -> None:
        while len(self._entries) > self.max_entries:
            self._pop_lru_locked(keep)
        if self.max_bytes is not None:
            while (len(self._entries) > 1
                   and self._size_locked() > self.max_bytes):
                self._pop_lru_locked(keep)

    def _pop_lru_locked(self, keep: str) -> None:
        for key in self._entries:
            if key != keep:
                del self._entries[key]
                self.evictions += 1
                return
        raise RuntimeError("nothing evictable")  # pragma: no cover

    def _size_locked(self) -> int:
        return sum(size for _, size in self._entries.values())

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def size_bytes(self) -> int:
        """Total reported footprint of the pooled entries."""
        with self._lock:
            return self._size_locked()

    def keys(self) -> List[str]:
        """Pool keys, LRU first (for diagnostics)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counters snapshot (for the daemon's ``stats`` op)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._size_locked(),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
