"""The compute behind each serve job kind, shared with the one-shot CLI.

These functions are the *single* implementation of the run/spectrum/scf/
ensemble workloads: the CLI bodies call them and the daemon calls them,
so a job submitted through the daemon executes the same floating-point
program as the equivalent one-shot command -- the end-to-end determinism
the differential tests in ``tests/serve`` pin (<= 1e-12, bitwise where
no executor backend changes hands).

Every ``*_payload`` function returns a flat dict of ndarrays and plain
scalars, ready for the wire codec and the artifact store.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.ensemble.path import ClassicalPath, model_path
from repro.grids import Grid3D
from repro.qxmd.scf import SCFResult, SCFTask
from repro.qxmd.sh_kernels import HopPolicy
from repro.resilience.liveness import check_deadline, deadline_scope

#: Delta-kick strength of the absorption-spectrum workload (matches the
#: CLI's historical hard-coded value).
SPECTRUM_KICK = 1e-3

#: Exponential damping of the dipole signal before the FFT.
SPECTRUM_DAMPING = 0.01

#: CG iterations of the spectrum ground-state eigensolve.
SPECTRUM_NCG = 30


# ---------------------------------------------------------------------- #
# spectrum: delta-kick absorption (ground state + propagation stages)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SpectrumGroundState:
    """The warm-poolable stage of a spectrum job: a converged eigensolve.

    ``psi`` is the *pre-kick* orbital set; propagation works on a copy,
    so one pooled ground state serves any number of propagations
    verbatim (bit-identical to recomputing it from scratch).
    """

    grid_points: int
    norb: int
    evals: np.ndarray
    psi: np.ndarray
    vloc: np.ndarray

    def nbytes(self) -> int:
        """Approximate in-memory footprint (for pool budgets)."""
        return int(self.evals.nbytes + self.psi.nbytes + self.vloc.nbytes)


def spectrum_ground_state(params: Mapping[str, Any]) -> SpectrumGroundState:
    """Converge the model-well ground state of a spectrum job."""
    from repro.lfd import WaveFunctionSet
    from repro.qxmd import KSHamiltonian, cg_eigensolve

    n = int(params["grid"])
    norb = int(params["norb"])
    grid = Grid3D.cubic(n, 0.5)
    c = (n - 1) * 0.5 / 2.0
    xs, ys, zs = grid.meshgrid()
    vloc = -float(params["depth"]) * np.exp(
        -((xs - c) ** 2 + (ys - c) ** 2 + (zs - c) ** 2) / 1.8
    )
    ham = KSHamiltonian(grid, vloc)
    wf = WaveFunctionSet.random(
        grid, norb, np.random.default_rng(int(params["seed"]))
    )
    evals = cg_eigensolve(ham, wf, ncg=SPECTRUM_NCG)
    return SpectrumGroundState(
        grid_points=n,
        norb=norb,
        evals=np.asarray(evals, dtype=np.float64),
        psi=wf.psi.copy(),
        vloc=vloc,
    )


def spectrum_payload(
    gs: SpectrumGroundState,
    params: Mapping[str, Any],
    deadline_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Kick, propagate and Fourier-analyse one spectrum job."""
    from repro import PropagatorConfig, QDPropagator, WaveFunctionSet
    from repro.analysis import absorption_peaks, dipole_to_spectrum
    from repro.lfd.observables import dipole_moment

    grid = Grid3D.cubic(gs.grid_points, 0.5)
    xs, _, _ = grid.meshgrid()
    wf = WaveFunctionSet(grid, gs.norb, data=gs.psi.copy(), copy=False)
    wf.psi *= np.exp(1j * SPECTRUM_KICK * xs)[..., None]
    occ = np.zeros(gs.norb)
    occ[0] = 2.0
    prop = QDPropagator(wf, gs.vloc, PropagatorConfig(dt=0.05))
    times: List[float] = []
    dips: List[float] = []

    def _observe(p: Any) -> None:
        # The per-step observer doubles as the deadline yield point: an
        # armed deadline bounds the propagation loop step by step.
        check_deadline("serve.spectrum.propagate")
        times.append(p.time)
        dips.append(dipole_moment(p.wf, occ)[0])

    with deadline_scope(deadline_s, "serve.spectrum.propagate"):
        prop.run(int(params["steps"]), observer=_observe)
    omega, spectrum = dipole_to_spectrum(
        np.array(times), np.array(dips),
        kick_strength=SPECTRUM_KICK, damping=SPECTRUM_DAMPING,
    )
    peaks = absorption_peaks(omega, spectrum, min_height=0.3)
    return {
        "eigenvalues": gs.evals,
        "times": np.array(times),
        "dipole": np.array(dips),
        "omega": np.asarray(omega),
        "spectrum": np.asarray(spectrum),
        "peaks": np.asarray(peaks),
    }


# ---------------------------------------------------------------------- #
# scf: independent two-atom ground states (batchable via scf_solve_batch)
# ---------------------------------------------------------------------- #
def scf_system(
    params: Mapping[str, Any],
) -> Tuple[Grid3D, np.ndarray, List[Any]]:
    """The two-atom system of an scf job (symmetric about the cell centre)."""
    from repro.pseudo import get_species

    n = int(params["grid"])
    spacing = float(params["spacing"])
    grid = Grid3D.cubic(n, spacing)
    L = grid.lengths[0]
    half = float(params["separation"]) / 2.0
    positions = np.array(
        [[L / 2 - half, L / 2, L / 2], [L / 2 + half, L / 2, L / 2]]
    )
    species = [get_species(str(params["species"])),
               get_species(str(params["species"]))]
    return grid, positions, species


def scf_task(params: Mapping[str, Any]) -> SCFTask:
    """One scf job as a picklable batch task."""
    from repro.qxmd.scf import SCFConfig

    grid, positions, species = scf_system(params)
    return SCFTask(
        grid=grid,
        positions=positions,
        species=species,
        norb=int(params["norb"]),
        config=SCFConfig(
            nscf=int(params["nscf"]),
            ncg=int(params["ncg"]),
            seed=int(params["seed"]),
        ),
    )


def scf_payload(result: SCFResult) -> Dict[str, Any]:
    """The wire/artifact payload of one converged SCF ground state."""
    payload: Dict[str, Any] = {
        "eigenvalues": np.asarray(result.eigenvalues, dtype=np.float64),
        "occupations": np.asarray(result.occupations, dtype=np.float64),
        "energies": {k: float(v) for k, v in result.energies.items()},
        "homo": float(result.eigenvalues[result.homo_index]),
    }
    try:
        payload["gap"] = float(result.gap)
    except ValueError:  # norb too small for an unoccupied orbital
        payload["gap"] = None
    return payload


# ---------------------------------------------------------------------- #
# ensemble: batched FSSH swarms over a synthetic classical path
# ---------------------------------------------------------------------- #
def ensemble_policy(params: Mapping[str, Any]) -> HopPolicy:
    """The hop policy encoded in ensemble job params (CLI semantics)."""
    dec = str(params["decoherence"])
    return HopPolicy(
        hop_rescale=str(params["hop_rescale"]),
        hop_reject=str(params["hop_reject"]),
        dec_correction=None if dec == "none" else dec,
        edc_parameter=float(params["edc_parameter"]),
    )


def ensemble_path(params: Mapping[str, Any]) -> ClassicalPath:
    """The deterministic synthetic classical path of an ensemble job."""
    return model_path(
        nsteps=int(params["nsteps"]),
        nstates=int(params["nstates"]),
        dt=float(params["dt"]),
        seed=int(params["path_seed"]),
        coupling=float(params["coupling"]),
    )


def ensemble_payload(result: Any) -> Dict[str, Any]:
    """The wire/artifact payload of one completed ensemble."""
    stats = result.stats
    return {
        "pop_mean": stats.pop_mean,
        "pop_stderr": stats.pop_stderr,
        "active_fraction": stats.active_fraction,
        "active_counts": stats.active_counts,
        "coherence_mean": stats.coherence_mean,
        "coherence_stderr": stats.coherence_stderr,
        "hops": result.hops,
        "final_active": result.final_active,
        "total_hops": int(result.hops.sum()),
    }


# ---------------------------------------------------------------------- #
# run: one full (small) DC-MESH simulation
# ---------------------------------------------------------------------- #
def run_system(
    params: Mapping[str, Any],
) -> Tuple[Grid3D, np.ndarray, List[Any], Any, Any]:
    """Build the simulation inputs of a run job (shared with the CLI).

    Returns ``(grid, positions, species, laser, config)`` exactly as the
    ``repro-mesh run`` command constructs them, so daemon run jobs and
    CLI runs execute identical systems.
    """
    from repro import DCMESHConfig, TimescaleSplit
    from repro.maxwell import GaussianPulse
    from repro.pseudo import get_species

    n = int(params["grid"])
    spacing = float(params["spacing"])
    grid = Grid3D((n, n, n), (spacing,) * 3)
    L = grid.lengths[0]
    positions = np.array(
        [[L / 4, L / 2, L / 2], [3 * L / 4 - spacing, L / 2, L / 2]]
    )
    species = [get_species(str(params["species"])),
               get_species(str(params["species"]))]
    laser = None
    if float(params["e0"]) > 0:
        laser = GaussianPulse(e0=float(params["e0"]),
                              omega=float(params["omega"]),
                              t0=10.0, sigma=6.0)
    config = DCMESHConfig(
        timescale=TimescaleSplit(dt_md=float(params["dt_md"]),
                                 n_qd=int(params["n_qd"])),
        nscf=int(params["nscf"]),
        ncg=int(params["ncg"]),
        seed=int(params["seed"]),
        array_backend=params.get("array_backend"),
    )
    return grid, positions, species, laser, config


def run_payload(
    params: Mapping[str, Any],
    supervise_dir: Optional[pathlib.Path] = None,
    deadline_s: Optional[float] = None,
    max_retries: int = 1,
) -> Dict[str, Any]:
    """Execute one run job, optionally under the run supervisor.

    With ``supervise_dir`` set, the simulation runs as one checkpointed
    :class:`~repro.resilience.supervisor.RunSupervisor` segment with the
    job's deadline as the segment budget -- recoverable faults heal from
    the generation-0 checkpoint instead of failing the request.
    """
    from repro import DCMESHSimulation, VirtualGPU

    grid, positions, species, laser, config = run_system(params)
    steps = int(params["steps"])
    sim = DCMESHSimulation(
        grid, (2, 1, 1), positions, species,
        laser=laser, config=config, device=VirtualGPU(),
        buffer_width=int(params["buffer"]),
    )
    if bool(params["excite"]):
        sim.excite_carrier(0)
    if supervise_dir is not None:
        from repro.resilience.supervisor import RunSupervisor, SupervisorConfig

        supervisor = RunSupervisor(
            sim,
            supervise_dir,
            SupervisorConfig(
                checkpoint_every=max(1, steps),
                max_retries=max_retries,
                deadline_s=deadline_s,
            ),
        )
        records = supervisor.run(steps)
    else:
        with deadline_scope(deadline_s, "serve.run"):
            records = sim.run(steps)
    return {
        "step": np.array([r.step for r in records], dtype=np.int64),
        "time": np.array([r.time for r in records]),
        "temperature": np.array([r.temperature for r in records]),
        "band_energy": np.array([r.band_energy for r in records]),
        "excited_population": np.array(
            [r.excited_population for r in records]
        ),
        "hops": np.array([r.hops for r in records], dtype=np.int64),
        "positions": sim.md_state.positions.copy(),
        "velocities": sim.md_state.velocities.copy(),
    }
