"""Thin synchronous client for the serving daemon.

One NDJSON request per connection: connect, write a line, read a line,
close.  Deliberately simple -- the daemon does all the multiplexing, and
a fresh connection per request means a crashed client never wedges the
server.  Arrays come back decoded (bit-exact ``.npy`` round-trip).
"""

from __future__ import annotations

import pathlib
import socket
from typing import Any, Dict, List, Optional, Union

from repro.serve.protocol import (
    PROTOCOL,
    ProtocolError,
    decode_payload,
    dumps_line,
    loads_line,
)


class ServeError(RuntimeError):
    """A job or operation the daemon refused or failed, typed.

    ``kind`` carries the daemon-side type name (``ServerBusy``,
    ``ServerShutdown``, or the exception class of a failed job).
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class ServeClient:
    """Talk to one daemon socket."""

    def __init__(self, socket_path: Union[str, pathlib.Path],
                 timeout_s: float = 300.0) -> None:
        self.socket_path = pathlib.Path(socket_path)
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One raw request/response round trip."""
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout_s)
            sock.connect(str(self.socket_path))
            sock.sendall(dumps_line(payload))
            chunks: List[bytes] = []
            while True:
                chunk = sock.recv(1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        line = b"".join(chunks)
        if not line:
            raise ProtocolError("daemon closed the connection mid-request")
        return loads_line(line)

    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        """True iff the daemon answers."""
        response = self.request({"op": "ping"})
        return bool(response.get("status") == "ok"
                    and response.get("protocol") == PROTOCOL)

    def stats(self) -> Dict[str, Any]:
        """The daemon's queue/pool/store/counter snapshot."""
        return dict(self.request({"op": "stats"})["stats"])

    def invalidate(self, scope: str = "pool",
                   key: Optional[str] = None) -> Dict[str, int]:
        """Drop warm state and/or memoized artifacts."""
        payload: Dict[str, Any] = {"op": "invalidate", "scope": scope}
        if key is not None:
            payload["key"] = key
        return dict(self.request(payload)["dropped"])

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit (returns once drained)."""
        self.request({"op": "shutdown"})

    # ------------------------------------------------------------------ #
    def submit(self, jobs: List[Dict[str, Any]],
               decode: bool = True) -> List[Dict[str, Any]]:
        """Submit a list of raw job dicts; returns per-job responses.

        Responses keep their typed ``status`` (``ok``/``busy``/
        ``shutdown``/``error``); ``ok`` results are decoded back into
        ndarrays unless ``decode=False`` (the memoization tests compare
        raw wire payloads byte for byte).
        """
        response = self.request({"op": "submit", "jobs": jobs})
        out = []
        for job in response["jobs"]:
            if decode and job.get("status") == "ok":
                job = dict(job)
                job["result"] = decode_payload(job["result"])
            out.append(job)
        return out

    def run_job(self, kind: str, params: Optional[Dict[str, Any]] = None,
                **options: Any) -> Dict[str, Any]:
        """Submit one job and return its decoded result payload.

        Raises :class:`ServeError` on any non-``ok`` status, carrying
        the daemon's typed refusal (``ServerBusy``, ``ServerShutdown``)
        or the failed job's exception type.
        """
        job: Dict[str, Any] = {"kind": kind, "params": params or {}}
        job.update(options)
        (response,) = self.submit([job])
        if response.get("status") != "ok":
            error = response.get("error", {})
            raise ServeError(error.get("type", "Unknown"),
                             error.get("message", "job failed"))
        result = response["result"]
        assert isinstance(result, dict)
        return result
