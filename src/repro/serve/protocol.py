"""The serve wire protocol: newline-delimited JSON over a unix socket.

Each request is one JSON object on one line; each response is one JSON
object on one line.  Requests carry an ``op`` (``submit``, ``stats``,
``ping``, ``invalidate``, ``shutdown``); ``submit`` carries a list of
job specs and receives a list of per-job responses, each with a typed
``status``:

* ``ok`` -- the job ran (or memoized); ``result`` holds the payload and
  ``meta`` the serving diagnostics (cache/warm/batch/queue timings);
* ``busy`` -- the bounded admission queue was full; the daemon shed the
  job instead of hanging (the ``ServerBusy`` contract);
* ``shutdown`` -- the daemon was draining; the job was refused (if it
  arrived during the drain) or dequeued unexecuted (if it was still
  queued when the drain began);
* ``error`` -- the job raised; ``error.type``/``error.message`` carry
  the exception.

NumPy arrays cross the wire bit-exactly: every array in a result is
encoded as a base64'd ``.npy`` blob (dtype + shape + raw bytes), so a
memoized resubmission returns byte-identical payloads and the client
reconstructs arrays without float/text round-tripping.  Scalars ride as
plain JSON (exact for float64 by shortest-repr round-tripping).
"""

from __future__ import annotations

import base64
import io
import json
from typing import Any, Dict, List, Optional

import numpy as np

#: Protocol schema marker, stamped on every response.
PROTOCOL = "repro-serve/1"

#: JSON key marking an encoded ndarray blob.
_ARRAY_KEY = "__npy_b64__"

#: Operations the daemon understands.
OPS = ("submit", "stats", "ping", "invalidate", "shutdown")

#: Job kinds the daemon accepts.
JOB_KINDS = ("run", "spectrum", "scf", "ensemble")


class ProtocolError(ValueError):
    """A malformed request or response line."""


def encode_array(array: np.ndarray) -> Dict[str, str]:
    """One ndarray as a JSON-safe base64'd ``.npy`` blob (bit-exact)."""
    buf = io.BytesIO()
    np.save(buf, np.asarray(array), allow_pickle=False)
    return {_ARRAY_KEY: base64.b64encode(buf.getvalue()).decode("ascii")}


def decode_array(blob: Dict[str, str]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    raw = base64.b64decode(blob[_ARRAY_KEY].encode("ascii"))
    return np.asarray(np.load(io.BytesIO(raw), allow_pickle=False))


def encode_payload(value: Any) -> Any:
    """Recursively encode a result payload for the wire.

    ndarrays become base64 blobs; dicts/lists/tuples recurse; NumPy
    scalars narrow to their Python equivalents; everything else must
    already be JSON-serializable.
    """
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): encode_payload(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_payload(v) for v in value]
    return value


def decode_payload(value: Any) -> Any:
    """Recursively decode a wire payload back into arrays and scalars."""
    if isinstance(value, dict):
        if set(value.keys()) == {_ARRAY_KEY}:
            return decode_array(value)
        return {k: decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_payload(v) for v in value]
    return value


def dumps_line(obj: Dict[str, Any]) -> bytes:
    """One protocol object as a newline-terminated JSON line."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def loads_line(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises :class:`ProtocolError` if bad."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("protocol line must be a JSON object")
    return obj


# ---------------------------------------------------------------------- #
# response builders (daemon side)
# ---------------------------------------------------------------------- #
def ok_response(job_id: str, result: Dict[str, Any],
                meta: Dict[str, Any]) -> Dict[str, Any]:
    """A completed job: encoded result payload plus serving metadata."""
    return {
        "id": job_id,
        "status": "ok",
        "result": encode_payload(result),
        "meta": meta,
    }


def error_response(job_id: str, exc: BaseException) -> Dict[str, Any]:
    """A failed job, typed by exception class."""
    return {
        "id": job_id,
        "status": "error",
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def busy_response(job_id: str, queue_depth: int,
                  max_queue: int) -> Dict[str, Any]:
    """Typed load-shed: the bounded queue refused admission."""
    return {
        "id": job_id,
        "status": "busy",
        "error": {
            "type": "ServerBusy",
            "message": (f"admission queue full "
                        f"({queue_depth} queued >= max {max_queue})"),
            "queue_depth": queue_depth,
            "max_queue": max_queue,
        },
    }


def shutdown_response(job_id: str) -> Dict[str, Any]:
    """Typed drain refusal: the daemon is shutting down."""
    return {
        "id": job_id,
        "status": "shutdown",
        "error": {
            "type": "ServerShutdown",
            "message": "daemon draining: job refused (resubmit elsewhere)",
        },
    }
