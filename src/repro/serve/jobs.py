"""Job specs: validation, canonical parameters, batch and artifact keys.

A job arrives as ``{"kind": ..., "params": {...}}``.  Validation fills
every omitted parameter with its canonical default (the same defaults
the one-shot CLI uses), so two requests meaning the same computation
carry byte-identical parameter dicts -- which makes the config hash, and
therefore artifact-store memoization, order- and omission-insensitive.

Three keys derive from a validated spec:

* :func:`batch_key` -- jobs with equal non-None batch keys may be
  coalesced into one execution (same physics configuration, differing
  only in the per-request axes the batched kernels are invariant to:
  RNG seeds for ensembles, whole independent systems for SCF).  ``run``
  jobs are always singletons.
* :func:`warm_key` -- the ground-state stage identity for the warm-state
  pool; jobs sharing it reuse one converged SCF/eigensolve verbatim.
* :func:`artifact_key` -- the content address for result memoization:
  config hash + per-kind code fingerprint + machine fingerprint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.artifacts import ArtifactKey, config_hash, machine_fingerprint
from repro.artifacts import code_fingerprint as _code_fingerprint
from repro.serve.protocol import JOB_KINDS

#: Canonical per-kind parameter defaults (mirrors the CLI defaults, so a
#: daemon job with default params reproduces the default CLI invocation).
PARAM_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "run": {
        "grid": 16,
        "spacing": 0.6,
        "species": "O",
        "steps": 5,
        "dt_md": 2.0,
        "n_qd": 20,
        "nscf": 2,
        "ncg": 3,
        "buffer": 3,
        "e0": 0.02,
        "omega": 0.3,
        "excite": False,
        "seed": 11,
        "array_backend": None,
    },
    "spectrum": {
        "grid": 12,
        "norb": 4,
        "depth": 3.0,
        "steps": 800,
        "seed": 0,
    },
    "scf": {
        "grid": 12,
        "spacing": 0.5,
        "species": "H",
        "separation": 1.4,
        "norb": 4,
        "nscf": 3,
        "ncg": 3,
        "seed": 1234,
    },
    "ensemble": {
        "ntraj": 32,
        "nsteps": 50,
        "nstates": 4,
        "dt": 1.0,
        "path_seed": 7,
        "coupling": 0.08,
        "seed": 2024,
        "istate": None,
        "substeps": 20,
        "hop_rescale": "energy",
        "hop_reject": "keep",
        "decoherence": "none",
        "edc_parameter": 0.1,
        "batch_size": None,
        "array_backend": None,
    },
}

#: Ensemble parameters that do NOT break request coalescing: the batched
#: swarm kernels are row-invariant, so jobs differing only in these axes
#: produce bit-identical per-trajectory results when stacked together
#: (istate is per-segment in the stacked tasks, so it is free too).
_ENSEMBLE_FREE_AXES = ("seed", "ntraj", "batch_size", "istate")

_JOB_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class JobSpec:
    """One validated job: kind, canonical params, serving options."""

    kind: str
    params: Dict[str, Any]
    job_id: str
    deadline_s: Optional[float] = None
    memoize: bool = True
    enqueued_at: float = field(default=0.0, compare=False)

    @property
    def config_digest(self) -> str:
        """Config-hash identity of this job's computation."""
        return config_hash({"kind": self.kind, "params": self.params})


def validate_job(raw: Mapping[str, Any],
                 default_deadline_s: Optional[float] = None) -> JobSpec:
    """Check and canonicalize one raw job dict into a :class:`JobSpec`.

    Unknown kinds and unknown parameter names raise ``ValueError`` (a
    typo must not silently become a default-parameter run).
    """
    kind = raw.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(
            f"unknown job kind {kind!r} (expected one of {JOB_KINDS})"
        )
    defaults = PARAM_DEFAULTS[kind]
    given = raw.get("params") or {}
    if not isinstance(given, Mapping):
        raise ValueError("job params must be an object")
    unknown = sorted(set(given) - set(defaults))
    if unknown:
        raise ValueError(
            f"unknown {kind} parameter(s) {unknown}; "
            f"known: {sorted(defaults)}"
        )
    params = dict(defaults)
    params.update({k: given[k] for k in given})
    deadline = raw.get("deadline_s", default_deadline_s)
    if deadline is not None:
        deadline = float(deadline)
        if deadline <= 0:
            raise ValueError("deadline_s must be positive (or null)")
    job_id = str(raw.get("id") or f"job-{next(_JOB_COUNTER)}")
    return JobSpec(
        kind=str(kind),
        params=params,
        job_id=job_id,
        deadline_s=deadline,
        memoize=bool(raw.get("memoize", True)),
    )


# ---------------------------------------------------------------------- #
# keys
# ---------------------------------------------------------------------- #
def batch_key(spec: JobSpec) -> Optional[str]:
    """Coalescing compatibility class, or None for singleton-only jobs.

    * ``scf`` jobs are independent systems: any mix coalesces into one
      ``scf_solve_batch`` call.
    * ``ensemble`` jobs coalesce when everything but the free axes
      (seed, ntraj, batch_size) matches -- same classical path, physics
      policy and substrate.
    * ``spectrum`` jobs coalesce when they share a ground state, so one
      converged eigensolve serves the whole group.
    * ``run`` jobs (full DC-MESH simulations) never coalesce.
    """
    if spec.kind == "scf":
        return "scf"
    if spec.kind == "ensemble":
        shared = {k: v for k, v in spec.params.items()
                  if k not in _ENSEMBLE_FREE_AXES}
        return f"ensemble:{config_hash(shared)}"
    if spec.kind == "spectrum":
        return f"spectrum:{config_hash(warm_key_payload(spec))}"
    return None


def warm_key_payload(spec: JobSpec) -> Dict[str, Any]:
    """The ground-state-stage parameters of a warm-poolable job."""
    if spec.kind == "spectrum":
        return {"stage": "spectrum-gs",
                **{k: spec.params[k]
                   for k in ("grid", "norb", "depth", "seed")}}
    if spec.kind == "scf":
        return {"stage": "scf-gs", **spec.params}
    raise ValueError(f"{spec.kind} jobs have no warm-poolable stage")


def warm_key(spec: JobSpec) -> str:
    """Warm-state pool key of a job's ground-state stage."""
    return config_hash(warm_key_payload(spec))


@lru_cache(maxsize=None)
def kind_code_fingerprint(kind: str) -> str:
    """Code fingerprint of the modules whose edits invalidate ``kind``.

    Computed once per process per kind (the module sources cannot change
    under a running daemon without a restart).
    """
    import repro.core.mesh
    import repro.ensemble.path
    import repro.ensemble.swarm
    import repro.qxmd.scf
    import repro.qxmd.sh_kernels
    import repro.serve.workloads

    modules = {
        "run": [repro.serve.workloads, repro.core.mesh, repro.qxmd.scf],
        "spectrum": [repro.serve.workloads],
        "scf": [repro.serve.workloads, repro.qxmd.scf],
        "ensemble": [repro.serve.workloads, repro.ensemble.swarm,
                     repro.ensemble.path, repro.qxmd.sh_kernels],
    }[kind]
    return _code_fingerprint(modules)


def artifact_key(spec: JobSpec,
                 machine: Optional[str] = None) -> ArtifactKey:
    """Content address of this job's memoized result."""
    return ArtifactKey(
        kind=f"serve.{spec.kind}",
        config=spec.config_digest,
        code=kind_code_fingerprint(spec.kind),
        machine=machine if machine is not None else machine_fingerprint(),
    )


def group_signature(specs: Tuple[JobSpec, ...]) -> str:
    """Stable digest of a coalesced group (for scratch-dir naming)."""
    return config_hash([
        {"kind": s.kind, "params": s.params, "id": s.job_id} for s in specs
    ])
