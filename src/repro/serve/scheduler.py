"""Batch assembly policy and compatibility grouping.

The daemon's scheduler pulls one queued job, then lingers up to
``max_wait_s`` hoping compatible requests arrive, capping the batch at
``max_batch`` jobs.  The assembled batch is partitioned into
*compatibility groups* by :func:`repro.serve.jobs.batch_key` -- each
group becomes one coalesced execution, and jobs with no batch key fall
out as singletons.  The policy is a pure latency/throughput dial: it
never changes results, only how many requests share one execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.serve.jobs import JobSpec, batch_key

T = TypeVar("T")


@dataclass(frozen=True)
class BatchPolicy:
    """How long to wait, and how wide to batch.

    ``max_wait_s=0`` degenerates to singleton dispatch (every job runs
    the moment the scheduler sees it); ``max_batch=1`` does the same.
    """

    max_batch: int = 16
    max_wait_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")


def group_jobs(
    specs: Sequence[JobSpec],
    carriers: Optional[Sequence[T]] = None,
) -> List[Tuple[Tuple[JobSpec, ...], Tuple[T, ...]]]:
    """Partition a batch into coalescible groups, order-preserving.

    ``carriers`` is an optional parallel sequence (the daemon passes the
    per-job response futures) sliced identically to the specs, so group
    membership never desynchronizes from reply routing.  Returns
    ``[(specs, carriers), ...]`` with groups ordered by first
    appearance and singletons (``batch_key() is None``) kept alone.
    """
    if carriers is None:
        carriers = [None] * len(specs)  # type: ignore[list-item]
    if len(carriers) != len(specs):
        raise ValueError("carriers must parallel specs")
    groups: Dict[str, List[int]] = {}
    order: List[List[int]] = []
    for i, spec in enumerate(specs):
        key = batch_key(spec)
        if key is None:
            order.append([i])
            continue
        existing = groups.get(key)
        if existing is None:
            groups[key] = bucket = [i]
            order.append(bucket)
        else:
            existing.append(i)
    return [
        (tuple(specs[i] for i in bucket),
         tuple(carriers[i] for i in bucket))
        for bucket in order
    ]
