"""Cross-request coalescing: many jobs, one batched execution.

The PR-7 swarm kernels are *batch-size invariant*: each trajectory row
evolves identically no matter which rows share its stacked arrays, and
its RNG stream is a pure function of ``(job seed, trajectory index)``.
That guarantee is what makes cross-*request* coalescing free: this
module stacks the trajectory ranges of several queued ensemble jobs into
shared swarm tasks, so four 8-trajectory requests cost one 32-wide
batched sweep instead of four narrow ones -- and every job's results are
bit-identical to running it alone.

:class:`EnsembleGroupRun` is the supervisable face of a coalesced group
(the serve-layer sibling of :class:`repro.ensemble.engine.EnsembleRun`):
one round of stacked tasks is one "MD step" to the
:class:`~repro.resilience.supervisor.RunSupervisor`, and
``save_state``/``load_state`` persist the partial group through the
hardened checkpoint writer, fingerprinted with the shared
:func:`~repro.artifacts.fingerprint.config_hash` scheme.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.artifacts import config_hash
from repro.ensemble.engine import resolve_batch_size
from repro.ensemble.path import ClassicalPath
from repro.ensemble.stats import compute_stats
from repro.ensemble.swarm import SwarmState, step_swarm, trajectory_rng
from repro.obs import trace_span
from repro.parallel.executor import DomainExecutor
from repro.qxmd.sh_kernels import HopPolicy
from repro.resilience.checkpointing import CheckpointCorruptError

#: Version tag of the partial-group checkpoint schema.
GROUP_CKPT_VERSION = 1


@dataclass(frozen=True)
class EnsembleMember:
    """One job's slice of a coalesced group."""

    ntraj: int
    istate: int
    seed: int

    def __post_init__(self) -> None:
        if self.ntraj < 1:
            raise ValueError("ntraj must be positive")
        if self.istate < 0:
            raise ValueError("istate must be non-negative")


@dataclass(frozen=True)
class Segment:
    """A contiguous run of one member's trajectories inside a task.

    ``lo``/``hi`` index the group's stacked (global) trajectory axis;
    ``local_lo`` is the member-local index of row ``lo``, which seeds
    the per-trajectory RNG stream -- the stream depends on the
    trajectory's identity *within its job*, never on its placement in
    the coalesced stack.
    """

    seed: int
    istate: int
    lo: int
    hi: int
    local_lo: int


@dataclass(frozen=True)
class SegmentResult:
    """Fresh per-segment traces handed back by a stacked task."""

    lo: int
    hi: int
    populations: np.ndarray       # (nsteps, hi-lo, nstates)
    actives: np.ndarray           # (nsteps, hi-lo)
    hops: np.ndarray              # (hi-lo,)
    final_amplitudes: np.ndarray  # (hi-lo, nstates)
    final_active: np.ndarray      # (hi-lo,)
    ke_factor: np.ndarray         # (hi-lo,)


def _stacked_swarm_task(args: Tuple[Any, ...]) -> List[SegmentResult]:
    """Executor task: sweep one stack of cross-job segments.

    ``args`` is ``(energies, nac, kinetic, dt, segments, substeps,
    policy, array_backend)`` with ``segments`` a tuple of
    :class:`Segment`.  Rows belonging to different jobs share the
    stacked kernel calls but are numerically independent -- the same
    per-row invariance the ensemble engine's equivalence harness proves.
    """
    (energies, nac, kinetic, dt, segments, substeps, policy,
     array_backend) = args
    nsteps, nstates = energies.shape
    nb = sum(seg.hi - seg.lo for seg in segments)
    amps = np.zeros((nb, nstates), dtype=np.complex128)
    active = np.empty(nb, dtype=np.int64)
    rngs = []
    row = 0
    for seg in segments:
        width = seg.hi - seg.lo
        amps[row:row + width, seg.istate] = 1.0
        active[row:row + width] = seg.istate
        for t in range(width):
            rngs.append(trajectory_rng(seg.seed, seg.local_lo + t))
        row += width
    swarm = SwarmState(amplitudes=amps, active=active)
    populations = np.empty((nsteps, nb, nstates), dtype=np.float64)
    actives = np.empty((nsteps, nb), dtype=np.int64)
    for s in range(nsteps):
        xi = np.array([rng.random() for rng in rngs])
        assert swarm.ke_factor is not None
        ke = kinetic[s] * swarm.ke_factor
        step_swarm(swarm, energies[s], nac[s], dt, ke, xi, policy,
                   substeps, backend=array_backend)
        populations[s] = swarm.populations
        actives[s] = swarm.active
    assert swarm.hop_counts is not None and swarm.ke_factor is not None
    out: List[SegmentResult] = []
    row = 0
    for seg in segments:
        width = seg.hi - seg.lo
        sl = slice(row, row + width)
        out.append(SegmentResult(
            lo=seg.lo,
            hi=seg.hi,
            populations=populations[:, sl, :].copy(),
            actives=actives[:, sl].copy(),
            hops=swarm.hop_counts[sl].copy(),
            final_amplitudes=swarm.amplitudes[sl].copy(),
            final_active=swarm.active[sl].copy(),
            ke_factor=swarm.ke_factor[sl].copy(),
        ))
        row += width
    return out


def pack_segments(
    members: Sequence[EnsembleMember], batch_size: int
) -> List[Tuple[Segment, ...]]:
    """Greedily pack every member's trajectories into stacked tasks.

    Members are walked in submission order; each task accumulates
    segments until it holds ``batch_size`` trajectory rows.  Small jobs
    therefore share tasks (the coalescing win) while a job wider than
    ``batch_size`` splits across several, exactly like the single-job
    engine's chunking.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    tasks: List[Tuple[Segment, ...]] = []
    current: List[Segment] = []
    room = batch_size
    offset = 0
    for member in members:
        local = 0
        while local < member.ntraj:
            width = min(room, member.ntraj - local)
            current.append(Segment(
                seed=member.seed,
                istate=member.istate,
                lo=offset + local,
                hi=offset + local + width,
                local_lo=local,
            ))
            local += width
            room -= width
            if room == 0:
                tasks.append(tuple(current))
                current = []
                room = batch_size
        offset += member.ntraj
    if current:
        tasks.append(tuple(current))
    return tasks


@dataclass(frozen=True)
class GroupRoundRecord:
    """History record of one supervisable round (``.step`` contract)."""

    step: int
    tasks_run: int
    tasks_done: int
    tasks_total: int


@dataclass(frozen=True)
class MemberResult:
    """One member's completed slice, reassembled in trajectory order."""

    stats: Any
    populations: np.ndarray
    actives: np.ndarray
    hops: np.ndarray
    final_amplitudes: np.ndarray
    final_active: np.ndarray
    ke_factor: np.ndarray


class EnsembleGroupRun:
    """Supervisable, checkpointable execution of a coalesced job group."""

    def __init__(
        self,
        path: ClassicalPath,
        members: Sequence[EnsembleMember],
        policy: HopPolicy,
        substeps: int = 20,
        array_backend: Optional[str] = None,
        batch_size: Optional[int] = None,
        executor: Optional[DomainExecutor] = None,
        round_size: int = 1,
    ) -> None:
        if not members:
            raise ValueError("a group needs at least one member")
        for m in members:
            if m.istate >= path.nstates:
                raise ValueError("istate outside the path's state range")
        self.path = path
        self.members = tuple(members)
        self.policy = policy
        self.substeps = int(substeps)
        self.array_backend = array_backend
        if batch_size is None:
            from repro.ensemble.engine import EnsembleConfig

            batch_size = resolve_batch_size(
                EnsembleConfig(ntraj=members[0].ntraj, seed=members[0].seed)
            )
        self.batch_size = int(batch_size)
        self.tasks = pack_segments(self.members, self.batch_size)
        self.round_size = max(1, int(round_size))
        self._executor = executor
        total = sum(m.ntraj for m in self.members)
        self.total_traj = total
        nsteps, nstates = path.nsteps, path.nstates
        self.populations = np.zeros((nsteps, total, nstates))
        self.actives = np.zeros((nsteps, total), dtype=np.int64)
        self.hops = np.zeros(total, dtype=np.int64)
        self.final_amplitudes = np.zeros((total, nstates),
                                         dtype=np.complex128)
        self.final_active = np.zeros(total, dtype=np.int64)
        self.ke_factor = np.ones(total, dtype=np.float64)
        self.done = np.zeros(len(self.tasks), dtype=bool)
        # SupervisableRun surface.
        self.step_count = 0
        self.time = 0.0
        self.history: List[GroupRoundRecord] = []
        self.health_guard: Any = None
        self.config: Any = None

    # ------------------------------------------------------------------ #
    @property
    def complete(self) -> bool:
        return bool(self.done.all())

    @property
    def rounds_remaining(self) -> int:
        pending = int(np.count_nonzero(~self.done))
        return math.ceil(pending / self.round_size)

    def _task_item(self, index: int) -> Tuple[Any, ...]:
        return (self.path.energies, self.path.nac, self.path.kinetic,
                self.path.dt, self.tasks[index], self.substeps,
                self.policy, self.array_backend)

    def _apply(self, index: int, results: List[SegmentResult]) -> None:
        for res in results:
            lo, hi = res.lo, res.hi
            self.populations[:, lo:hi, :] = res.populations
            self.actives[:, lo:hi] = res.actives
            self.hops[lo:hi] = res.hops
            self.final_amplitudes[lo:hi] = res.final_amplitudes
            self.final_active[lo:hi] = res.final_active
            self.ke_factor[lo:hi] = res.ke_factor
        self.done[index] = True

    def md_step(self) -> GroupRoundRecord:
        """Run one round of pending stacked tasks (the supervisable unit)."""
        todo = np.nonzero(~self.done)[0][: self.round_size]
        if todo.size:
            items = [self._task_item(int(i)) for i in todo]
            with trace_span("serve.batch.execute", "serve",
                            round=self.step_count, tasks=len(items),
                            jobs=len(self.members),
                            ntraj=self.total_traj):
                if self._executor is not None:
                    results = self._executor.map(
                        _stacked_swarm_task, items,
                        label="serve.ensemble.batches",
                    )
                else:
                    results = [_stacked_swarm_task(item) for item in items]
            for i, res in zip(todo, results):
                self._apply(int(i), res)
        self.step_count += 1
        self.time = float(self.step_count)
        record = GroupRoundRecord(
            step=self.step_count,
            tasks_run=int(todo.size),
            tasks_done=int(np.count_nonzero(self.done)),
            tasks_total=len(self.tasks),
        )
        self.history.append(record)
        return record

    def run(self) -> List[MemberResult]:
        """Run every pending round; returns per-member results."""
        while not self.complete:
            self.md_step()
        return self.results()

    def results(self) -> List[MemberResult]:
        """Reassemble each member's slice (all tasks must be done)."""
        if not self.complete:
            raise RuntimeError(
                f"group incomplete: {int(np.count_nonzero(self.done))}"
                f"/{len(self.tasks)} tasks done"
            )
        out: List[MemberResult] = []
        offset = 0
        for m in self.members:
            sl = slice(offset, offset + m.ntraj)
            pops = self.populations[:, sl, :].copy()
            acts = self.actives[:, sl].copy()
            out.append(MemberResult(
                stats=compute_stats(pops, acts),
                populations=pops,
                actives=acts,
                hops=self.hops[sl].copy(),
                final_amplitudes=self.final_amplitudes[sl].copy(),
                final_active=self.final_active[sl].copy(),
                ke_factor=self.ke_factor[sl].copy(),
            ))
            offset += m.ntraj
        return out

    # ------------------------------------------------------------------ #
    def _fingerprint(self) -> str:
        p = self.policy
        return config_hash({
            "version": GROUP_CKPT_VERSION,
            "members": [[m.ntraj, m.istate, m.seed] for m in self.members],
            "substeps": self.substeps,
            "batch_size": self.batch_size,
            "nsteps": self.path.nsteps,
            "nstates": self.path.nstates,
            "dt": self.path.dt,
            "policy": [p.hop_rescale, p.hop_reject,
                       p.dec_correction or "", p.edc_parameter],
            "array_backend": self.array_backend or "numpy",
        })

    def save_state(self, path: Union[str, pathlib.Path]) -> None:
        """Archive the partial group (checkpoint-writer callback)."""
        meta = {"fingerprint": self._fingerprint(),
                "step_count": self.step_count}
        np.savez(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            populations=self.populations,
            actives=self.actives,
            hops=self.hops,
            final_amplitudes=self.final_amplitudes,
            final_active=self.final_active,
            ke_factor=self.ke_factor,
            done=self.done,
        )

    def load_state(self, path: Union[str, pathlib.Path]) -> None:
        """Restore a partial group written by :meth:`save_state`."""
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            loaded = {
                key: archive[key]
                for key in ("populations", "actives", "hops",
                            "final_amplitudes", "final_active",
                            "ke_factor", "done")
            }
        step_count = int(meta.pop("step_count", -1))
        expected = self._fingerprint()
        if meta.get("fingerprint") != expected:
            raise CheckpointCorruptError(
                f"group checkpoint fingerprint mismatch: "
                f"{meta.get('fingerprint')} != {expected}"
            )
        if loaded["populations"].shape != self.populations.shape or \
                loaded["done"].shape != self.done.shape:
            raise CheckpointCorruptError(
                "group checkpoint array shapes do not match the run"
            )
        self.populations = loaded["populations"]
        self.actives = loaded["actives"]
        self.hops = loaded["hops"]
        self.final_amplitudes = loaded["final_amplitudes"]
        self.final_active = loaded["final_active"]
        self.ke_factor = loaded["ke_factor"]
        self.done = loaded["done"].astype(bool)
        self.step_count = step_count
        self.time = float(step_count)


def run_group_supervised(
    group: EnsembleGroupRun,
    checkpoint_dir: Union[str, pathlib.Path],
    deadline_s: Optional[float] = None,
    max_retries: int = 1,
) -> List[MemberResult]:
    """Drive a group to completion under the run supervisor.

    One round per checkpointed segment; the tightest member deadline is
    the segment budget.  Recoverable faults (worker crashes, deadline
    expiry with relaxation, torn checkpoints) heal instead of failing
    every job in the group.
    """
    from repro.resilience.supervisor import RunSupervisor, SupervisorConfig

    supervisor = RunSupervisor(
        group,
        checkpoint_dir,
        SupervisorConfig(
            checkpoint_every=1,
            max_retries=max_retries,
            deadline_s=deadline_s,
        ),
    )
    supervisor.run(group.rounds_remaining)
    return group.results()
