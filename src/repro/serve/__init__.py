"""repro.serve: the persistent serving daemon and its client.

A long-lived asyncio daemon (``repro-mesh serve``) accepts run/
spectrum/scf/ensemble jobs over a unix socket, coalesces compatible
requests into single batched executions, reuses converged ground states
from a warm-state pool, and memoizes whole results in the
content-addressed artifact store (:mod:`repro.artifacts`) -- all while
keeping results bit-identical to the equivalent one-shot CLI commands.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import (
    DaemonHandle,
    ServeConfig,
    ServeDaemon,
    ServeMetrics,
)
from repro.serve.jobs import JobSpec, artifact_key, batch_key, validate_job
from repro.serve.pool import WarmStatePool
from repro.serve.protocol import PROTOCOL, ProtocolError
from repro.serve.scheduler import BatchPolicy, group_jobs

__all__ = [
    "PROTOCOL",
    "BatchPolicy",
    "DaemonHandle",
    "JobSpec",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "ServeMetrics",
    "WarmStatePool",
    "artifact_key",
    "batch_key",
    "group_jobs",
    "validate_job",
]
