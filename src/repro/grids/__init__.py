"""Real-space grids, divide-and-conquer domains, and stencil coefficients."""

from repro.grids.grid import Grid3D
from repro.grids.stencil import (
    PairSplitCoefficients,
    kinetic_diagonal,
    kinetic_offdiagonal,
    kinetic_matrix_1d,
    pair_split_coefficients,
)
from repro.grids.domain import Domain, DomainDecomposition

__all__ = [
    "Grid3D",
    "Domain",
    "DomainDecomposition",
    "PairSplitCoefficients",
    "kinetic_diagonal",
    "kinetic_offdiagonal",
    "kinetic_matrix_1d",
    "pair_split_coefficients",
]
