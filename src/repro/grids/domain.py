"""Divide-and-conquer spatial domains (Fig. 1a of the paper).

The global cell Omega is subdivided into non-overlapping *cores*
Omega_alpha whose union tiles the grid exactly; each domain additionally
carries a *buffer* (periphery) of ``buffer_width`` mesh points on every
side.  Local Kohn-Sham problems are solved on core+buffer with the
globally informed potential as boundary condition (the lean
divide-and-conquer, LDC, density-adaptive boundary), while global
quantities (density, Hartree potential) are recombined from the disjoint
cores only, which makes the recombination an exact partition of unity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.grids.grid import Grid3D


def _wrap_take(field: np.ndarray, start: int, length: int, axis: int) -> np.ndarray:
    """Extract ``length`` entries starting at ``start`` with periodic wrap."""
    n = field.shape[axis]
    idx = (np.arange(start, start + length)) % n
    return np.take(field, idx, axis=axis)


@dataclass(frozen=True)
class Domain:
    """One DC domain: a core block plus periodic buffer layers.

    Attributes
    ----------
    alpha:
        Flat domain index (0 <= alpha < prod(ndomains)).
    cell_index:
        Position (ix, iy, iz) of this domain in the domain lattice.
    core_start:
        Global-grid index of the first core point along each axis.
    core_shape:
        Number of core points along each axis.
    buffer_width:
        Buffer layers added on each side of the core.
    local_grid:
        The core+buffer grid on which local problems are solved.
    global_grid:
        The parent grid (for wrap arithmetic).
    """

    alpha: int
    cell_index: Tuple[int, int, int]
    core_start: Tuple[int, int, int]
    core_shape: Tuple[int, int, int]
    buffer_width: int
    local_grid: Grid3D
    global_grid: Grid3D

    @property
    def local_shape(self) -> Tuple[int, int, int]:
        return self.local_grid.shape

    @property
    def core_slices_local(self) -> Tuple[slice, slice, slice]:
        """Slices selecting the core region inside the local array."""
        b = self.buffer_width
        return tuple(slice(b, b + c) for c in self.core_shape)

    def gather(self, global_field: np.ndarray) -> np.ndarray:
        """Extract the core+buffer region of a global field (periodic wrap)."""
        if global_field.shape != self.global_grid.shape:
            raise ValueError(
                f"field shape {global_field.shape} does not match global grid "
                f"{self.global_grid.shape}"
            )
        b = self.buffer_width
        out = global_field
        for axis in range(3):
            out = _wrap_take(
                out, self.core_start[axis] - b, self.core_shape[axis] + 2 * b, axis
            )
        return out

    def scatter_core(self, local_field: np.ndarray, global_field: np.ndarray) -> None:
        """Write the core part of a local field into the global field in place.

        Cores are disjoint, so recombining densities domain by domain via
        this method is an exact partition of unity.
        """
        if local_field.shape[:3] != self.local_shape:
            raise ValueError(
                f"local field shape {local_field.shape} does not match "
                f"domain local grid {self.local_shape}"
            )
        core = local_field[self.core_slices_local]
        sl = tuple(
            slice(s, s + c) for s, c in zip(self.core_start, self.core_shape)
        )
        global_field[sl] = core

    def add_core(self, local_field: np.ndarray, global_field: np.ndarray) -> None:
        """Accumulate (+=) the core part of a local field into the global field."""
        core = local_field[self.core_slices_local]
        sl = tuple(
            slice(s, s + c) for s, c in zip(self.core_start, self.core_shape)
        )
        global_field[sl] += core

    def contains_position(self, r: Sequence[float]) -> bool:
        """True if the (wrapped) Cartesian position lies in this domain's core."""
        g = self.global_grid
        r = g.wrap_position(r)
        for axis in range(3):
            lo = g.origin[axis] + self.core_start[axis] * g.spacing[axis]
            hi = lo + self.core_shape[axis] * g.spacing[axis]
            if not (lo <= r[axis] < hi):
                return False
        return True

    def core_center(self) -> np.ndarray:
        """Cartesian centre X(alpha) of the domain core (bohr).

        The vector potential A_{X(alpha)}(t) of Eq. (2) is sampled at this
        point (dipole approximation within a domain).
        """
        g = self.global_grid
        return np.array(
            [
                g.origin[axis]
                + (self.core_start[axis] + 0.5 * self.core_shape[axis])
                * g.spacing[axis]
                for axis in range(3)
            ]
        )


class DomainDecomposition:
    """Partition a global grid into a lattice of DC domains.

    Parameters
    ----------
    global_grid:
        The full periodic simulation grid.
    ndomains:
        Number of domains along (x, y, z); each must divide the grid shape.
    buffer_width:
        Buffer (periphery) layers per side, in mesh points.  Must leave the
        local grids even-sized along every axis if the local grids are to be
        used with the pair-splitting kinetic propagator.
    """

    def __init__(
        self,
        global_grid: Grid3D,
        ndomains: Tuple[int, int, int],
        buffer_width: int = 2,
    ) -> None:
        if len(ndomains) != 3 or any(int(d) < 1 for d in ndomains):
            raise ValueError("ndomains must be three positive integers")
        ndomains = tuple(int(d) for d in ndomains)
        for axis in range(3):
            if global_grid.shape[axis] % ndomains[axis] != 0:
                raise ValueError(
                    f"grid shape {global_grid.shape} not divisible by "
                    f"domain counts {ndomains}"
                )
        if buffer_width < 0:
            raise ValueError("buffer_width must be non-negative")
        core_shape = tuple(
            global_grid.shape[a] // ndomains[a] for a in range(3)
        )
        if buffer_width >= min(core_shape):
            raise ValueError(
                f"buffer_width {buffer_width} too large for core shape {core_shape}"
            )
        self.global_grid = global_grid
        self.ndomains = ndomains
        self.buffer_width = int(buffer_width)
        self.core_shape = core_shape
        self._domains: List[Domain] = []
        alpha = 0
        for ix in range(ndomains[0]):
            for iy in range(ndomains[1]):
                for iz in range(ndomains[2]):
                    start = (
                        ix * core_shape[0],
                        iy * core_shape[1],
                        iz * core_shape[2],
                    )
                    local_shape = tuple(c + 2 * buffer_width for c in core_shape)
                    origin = tuple(
                        global_grid.origin[a]
                        + (start[a] - buffer_width) * global_grid.spacing[a]
                        for a in range(3)
                    )
                    local_grid = Grid3D(local_shape, global_grid.spacing, origin)
                    self._domains.append(
                        Domain(
                            alpha=alpha,
                            cell_index=(ix, iy, iz),
                            core_start=start,
                            core_shape=core_shape,
                            buffer_width=buffer_width,
                            local_grid=local_grid,
                            global_grid=global_grid,
                        )
                    )
                    alpha += 1

    def __len__(self) -> int:
        return len(self._domains)

    def __iter__(self) -> Iterator[Domain]:
        return iter(self._domains)

    def __getitem__(self, alpha: int) -> Domain:
        return self._domains[alpha]

    @property
    def domains(self) -> List[Domain]:
        return list(self._domains)

    def recombine(self, local_fields: Sequence[np.ndarray]) -> np.ndarray:
        """Assemble a global field from per-domain local fields (cores only)."""
        if len(local_fields) != len(self):
            raise ValueError("need exactly one local field per domain")
        out = self.global_grid.zeros(dtype=np.result_type(*[f.dtype for f in local_fields]))
        for dom, f in zip(self._domains, local_fields):
            dom.scatter_core(f, out)
        return out

    def assign_atoms(self, positions: np.ndarray) -> List[List[int]]:
        """Assign atoms to domains by core containment.

        Returns, for each domain, the list of atom indices whose wrapped
        position falls inside that domain's core.  Every atom is assigned
        to exactly one domain (cores tile the cell).
        """
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must have shape (natoms, 3)")
        g = self.global_grid
        owners: List[List[int]] = [[] for _ in self._domains]
        nd = self.ndomains
        for i, r in enumerate(positions):
            rw = g.wrap_position(r)
            idx = []
            for axis in range(3):
                frac = (rw[axis] - g.origin[axis]) / (
                    self.core_shape[axis] * g.spacing[axis]
                )
                idx.append(min(int(frac), nd[axis] - 1))
            alpha = (idx[0] * nd[1] + idx[1]) * nd[2] + idx[2]
            owners[alpha].append(i)
        return owners

    def check_local_grids_even(self) -> bool:
        """True if every local grid is even-sized (pair splitting closes)."""
        return all(
            all(n % 2 == 0 for n in dom.local_shape) for dom in self._domains
        )
