"""Finite-difference kinetic stencils and even-odd pair splitting.

The LFD kinetic propagator follows the space-splitting method of
Nakano, Vashishta and Kalia (Comput. Phys. Commun. 83, 181 (1994),
Ref. [28] of the paper).  The 1-D finite-difference kinetic operator

    (T psi)[i] = d * psi[i] + o * (psi[i-1] + psi[i+1]),
    d = hbar^2 / (m h^2),   o = -hbar^2 / (2 m h^2),

is split into *even* and *odd* parts, each a direct sum of 2x2 blocks
acting on point pairs (2k, 2k+1) and (2k+1, 2k+2) respectively (periodic
wrap; the grid size must be even, as is the paper's 70x70x72 mesh).
Each block

    B = [[d/2, o e^{-i theta}], [o e^{+i theta}, d/2]]

(theta is the Peierls phase h*A_d/c of the vector potential along the
stencil direction) has an *exact*, manifestly unitary exponential

    exp(-i t B) = e^{-i t d/2} [ cos(t o) I  - i sin(t o) (cos theta sx + sin theta sy) ],

so one splitting pass is precisely the tridiagonal-shaped update of
Algorithm 1 of the paper: for every mesh point a diagonal coefficient
``al`` plus exactly one of the neighbour coefficients ``bl[i]``/``bu[i]``
is non-zero.  A Strang sweep even(t/2) odd(t) even(t/2) -- the paper's
time-step argument ``p in {dt/2, dt}`` -- yields a second-order accurate,
exactly norm-conserving 1-D kinetic propagator.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.constants import HBAR, M_ELECTRON


def kinetic_diagonal(h: float, mass: float = M_ELECTRON) -> float:
    """Diagonal element d = hbar^2/(m h^2) of the 3-point kinetic stencil."""
    if h <= 0.0:
        raise ValueError("grid spacing must be positive")
    return HBAR * HBAR / (mass * h * h)


def kinetic_offdiagonal(h: float, mass: float = M_ELECTRON) -> float:
    """Off-diagonal element o = -hbar^2/(2 m h^2) of the kinetic stencil."""
    return -0.5 * kinetic_diagonal(h, mass)


def kinetic_matrix_1d(
    n: int, h: float, mass: float = M_ELECTRON, theta: float = 0.0
) -> np.ndarray:
    """Dense periodic 1-D kinetic matrix (reference implementation for tests).

    ``theta`` is the Peierls phase per bond from a uniform vector potential
    along this axis; the resulting matrix is Hermitian for any ``theta``.
    """
    if n < 2:
        raise ValueError("need at least two points")
    d = kinetic_diagonal(h, mass)
    o = kinetic_offdiagonal(h, mass)
    mat = np.zeros((n, n), dtype=np.complex128)
    phase = cmath.exp(-1j * theta)
    for i in range(n):
        mat[i, i] = d
        mat[i, (i + 1) % n] += o * phase
        mat[(i + 1) % n, i] += o * np.conj(phase)
    return mat


@dataclass(frozen=True)
class PairSplitCoefficients:
    """Per-point stencil coefficients for one even/odd splitting pass.

    These are exactly the ``al``/``bl``/``bu`` arrays passed to the
    ``kin_prop`` kernels (Algorithms 1-5): applying the pass computes,
    for every point i,

        psi'[i] = al * psi[i] + bl[i] * psi[i-1] + bu[i] * psi[i+1]

    with periodic neighbour indices.  For an even pass, ``bu`` is non-zero
    on even points and ``bl`` on odd points (and vice versa for an odd
    pass); the unused coefficient is exactly zero.

    Attributes
    ----------
    al:
        Complex diagonal coefficient (same for every point in a pass).
    bl, bu:
        Complex neighbour coefficients, length-``n`` arrays.
    parity:
        0 for the even pass (pairs (0,1), (2,3), ...), 1 for the odd pass.
    dt:
        The time sub-step this pass propagates.
    """

    al: complex
    bl: np.ndarray
    bu: np.ndarray
    parity: int
    dt: float

    @property
    def n(self) -> int:
        return self.bl.shape[0]


def pair_split_coefficients(
    n: int,
    h: float,
    dt: float,
    parity: int,
    theta: float = 0.0,
    mass: float = M_ELECTRON,
) -> PairSplitCoefficients:
    """Build the coefficients of one even/odd kinetic splitting pass.

    Parameters
    ----------
    n:
        Number of grid points along the stencil direction (must be even so
        the periodic pairing closes).
    h:
        Grid spacing along the stencil direction.
    dt:
        Time sub-step (use dt/2 for the outer Strang passes).
    parity:
        0 = even pass (pairs start at even indices), 1 = odd pass.
    theta:
        Peierls phase per bond, h * A_d / c, from the vector potential.
    """
    if n % 2 != 0:
        raise ValueError(f"pair splitting requires an even grid size, got {n}")
    if parity not in (0, 1):
        raise ValueError("parity must be 0 or 1")
    d = kinetic_diagonal(h, mass)
    o = kinetic_offdiagonal(h, mass)
    t = dt / HBAR
    # exp(-i t B), B = d/2 I + o (cos th sx + sin th sy):
    diag_phase = cmath.exp(-1j * t * d / 2.0)
    c = diag_phase * np.cos(t * o)
    s = -1j * diag_phase * np.sin(t * o)
    # Hopping left->right carries e^{-i theta}, right->left e^{+i theta}.
    hop_up = s * cmath.exp(-1j * theta)   # couples psi[i] <- psi[i+1]
    hop_dn = s * cmath.exp(+1j * theta)   # couples psi[i] <- psi[i-1]

    bl = np.zeros(n, dtype=np.complex128)
    bu = np.zeros(n, dtype=np.complex128)
    # Pair (i, i+1): the left member reads its upper neighbour, the right
    # member reads its lower neighbour.
    left = np.arange(parity, n, 2) % n
    right = (left + 1) % n
    bu[left] = hop_up
    bl[right] = hop_dn
    return PairSplitCoefficients(al=c, bl=bl, bu=bu, parity=parity, dt=dt)


def pair_split_matrix(coeff: PairSplitCoefficients) -> np.ndarray:
    """Dense matrix of one splitting pass (reference for unitarity tests)."""
    n = coeff.n
    mat = np.zeros((n, n), dtype=np.complex128)
    for i in range(n):
        mat[i, i] = coeff.al
        mat[i, (i - 1) % n] += coeff.bl[i]
        mat[i, (i + 1) % n] += coeff.bu[i]
    return mat


def strang_passes(
    n: int, h: float, dt: float, theta: float = 0.0, mass: float = M_ELECTRON
) -> Tuple[PairSplitCoefficients, PairSplitCoefficients, PairSplitCoefficients]:
    """The even(dt/2), odd(dt), even(dt/2) Strang sweep for one direction.

    The product of the three returned passes approximates exp(-i dt T_d / hbar)
    to second order in dt while being exactly unitary.
    """
    half = pair_split_coefficients(n, h, dt / 2.0, parity=0, theta=theta, mass=mass)
    full = pair_split_coefficients(n, h, dt, parity=1, theta=theta, mass=mass)
    return half, full, half
