"""Uniform 3-D real-space grids.

Each DC domain carries a :class:`Grid3D` on which the Kohn-Sham wave
functions are represented as finite-difference meshes (the paper uses
70x70x72 points per domain).  The grid is periodic; spacings may differ
per axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np
from numpy.typing import DTypeLike


@dataclass(frozen=True)
class Grid3D:
    """A periodic, uniform 3-D grid.

    Parameters
    ----------
    shape:
        Number of mesh points along (x, y, z).
    spacing:
        Mesh spacing along (x, y, z), in bohr.
    origin:
        Cartesian coordinates of point (0, 0, 0), in bohr.
    """

    shape: Tuple[int, int, int]
    spacing: Tuple[float, float, float]
    origin: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or len(self.spacing) != 3:
            raise ValueError("shape and spacing must have length 3")
        if any(int(n) < 2 for n in self.shape):
            raise ValueError("grid needs at least 2 points per axis")
        if any(h <= 0.0 for h in self.spacing):
            raise ValueError("grid spacing must be positive")
        object.__setattr__(self, "shape", tuple(int(n) for n in self.shape))
        object.__setattr__(self, "spacing", tuple(float(h) for h in self.spacing))
        object.__setattr__(self, "origin", tuple(float(o) for o in self.origin))

    @classmethod
    def cubic(cls, n: int, h: float, origin: Sequence[float] = (0.0, 0.0, 0.0)) -> "Grid3D":
        """A cube of ``n``^3 points with isotropic spacing ``h``."""
        return cls((n, n, n), (h, h, h), tuple(origin))

    @property
    def npoints(self) -> int:
        """Total number of mesh points."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def dvol(self) -> float:
        """Volume element h_x * h_y * h_z (bohr^3)."""
        hx, hy, hz = self.spacing
        return hx * hy * hz

    @property
    def lengths(self) -> Tuple[float, float, float]:
        """Periodic box lengths L_d = N_d * h_d along each axis."""
        return tuple(n * h for n, h in zip(self.shape, self.spacing))

    @property
    def volume(self) -> float:
        """Total periodic cell volume (bohr^3)."""
        lx, ly, lz = self.lengths
        return lx * ly * lz

    def axis_coords(self, axis: int) -> np.ndarray:
        """Coordinates of mesh points along one axis (bohr)."""
        if axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1 or 2")
        n = self.shape[axis]
        return self.origin[axis] + self.spacing[axis] * np.arange(n)

    def meshgrid(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full 3-D coordinate arrays (X, Y, Z), each of ``self.shape``."""
        return np.meshgrid(
            self.axis_coords(0), self.axis_coords(1), self.axis_coords(2), indexing="ij"
        )

    def integrate(self, f: np.ndarray) -> complex | float:
        """Trapezoidal (= rectangle rule on a periodic grid) integral of a field."""
        f = np.asarray(f)
        if f.shape[:3] != self.shape:
            raise ValueError(f"field shape {f.shape} does not match grid {self.shape}")
        return f.sum(axis=(0, 1, 2)) * self.dvol

    def inner(self, f: np.ndarray, g: np.ndarray) -> complex:
        """L2 inner product <f|g> = integral conj(f) g dV."""
        f = np.asarray(f)
        g = np.asarray(g)
        if f.shape != g.shape:
            raise ValueError("fields must have the same shape")
        return complex(np.vdot(f, g) * self.dvol)

    def norm(self, f: np.ndarray) -> float:
        """L2 norm sqrt(<f|f>)."""
        return float(np.sqrt(np.real(self.inner(f, f))))

    def wrap_index(self, idx: Sequence[int]) -> Tuple[int, int, int]:
        """Wrap an integer index triple into the periodic grid."""
        return tuple(int(i) % n for i, n in zip(idx, self.shape))

    def wrap_position(self, r: Sequence[float]) -> np.ndarray:
        """Wrap a Cartesian position into the periodic cell."""
        r = np.asarray(r, dtype=float)
        lengths = np.asarray(self.lengths)
        origin = np.asarray(self.origin)
        return origin + np.mod(r - origin, lengths)

    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Minimum-image convention displacement(s) for this periodic cell."""
        dr = np.asarray(dr, dtype=float)
        lengths = np.asarray(self.lengths)
        return dr - lengths * np.round(dr / lengths)

    def nearest_index(self, r: Sequence[float]) -> Tuple[int, int, int]:
        """Grid index of the mesh point nearest a Cartesian position."""
        r = self.wrap_position(r)
        idx = [
            int(round((r[d] - self.origin[d]) / self.spacing[d])) % self.shape[d]
            for d in range(3)
        ]
        return tuple(idx)

    def zeros(self, dtype: DTypeLike = np.float64) -> np.ndarray:
        """A zero-initialized field on this grid."""
        return np.zeros(self.shape, dtype=dtype)

    def iter_points(self) -> Iterator[Tuple[Tuple[int, int, int], Tuple[float, float, float]]]:
        """Iterate over (index, coordinate) pairs; intended for small grids."""
        xs = self.axis_coords(0)
        ys = self.axis_coords(1)
        zs = self.axis_coords(2)
        for i in range(self.shape[0]):
            for j in range(self.shape[1]):
                for k in range(self.shape[2]):
                    yield (i, j, k), (float(xs[i]), float(ys[j]), float(zs[k]))

    def coarsen(self) -> "Grid3D":
        """The next-coarser multigrid level (half the points, double spacing)."""
        if any(n % 2 != 0 for n in self.shape):
            raise ValueError(f"cannot coarsen odd-sized grid {self.shape}")
        shape = tuple(n // 2 for n in self.shape)
        spacing = tuple(2.0 * h for h in self.spacing)
        return Grid3D(shape, spacing, self.origin)

    def compatible(self, other: "Grid3D") -> bool:
        """True if two grids share shape and spacing (fields interchangeable)."""
        return (
            self.shape == other.shape
            and np.allclose(self.spacing, other.spacing)
            and np.allclose(self.origin, other.origin)
        )
