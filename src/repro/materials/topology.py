"""Polar topology: flux-closure textures and their invariants (Fig. 7).

The application study prepares a flux-closure domain -- four 90-degree
domains whose in-plane polarization circulates around a core -- and
tracks its laser-driven switching.  The texture is characterized by the
discrete winding number of the in-plane polarization around the core and
by the per-cell vorticity (lattice curl).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def uniform_modes(shape: Tuple[int, int, int], p0: float, axis: int = 2) -> np.ndarray:
    """A single-domain (uniformly polarized) mode field."""
    if p0 < 0:
        raise ValueError("p0 must be non-negative")
    if axis not in (0, 1, 2):
        raise ValueError("axis must be 0, 1 or 2")
    modes = np.zeros(tuple(int(n) for n in shape) + (3,))
    modes[..., axis] = p0
    return modes


def flux_closure_modes(
    shape: Tuple[int, int, int],
    p0: float,
    plane: Tuple[int, int] = (0, 2),
    sense: int = +1,
) -> np.ndarray:
    """A flux-closure (vortex) texture in the given plane.

    Polarization lies in the (plane[0], plane[1]) plane, tangential to
    circles around the box centre, uniform along the remaining axis:
    the classic four-domain closure pattern smoothed into a vortex.

    Parameters
    ----------
    shape:
        Lattice dimensions.
    p0:
        Mode amplitude away from the core.
    plane:
        The two in-plane axes.
    sense:
        +1 counter-clockwise, -1 clockwise.
    """
    if p0 < 0:
        raise ValueError("p0 must be non-negative")
    if sense not in (+1, -1):
        raise ValueError("sense must be +1 or -1")
    ax, az = plane
    if ax == az or not {ax, az} <= {0, 1, 2}:
        raise ValueError("plane must name two distinct axes")
    shape = tuple(int(n) for n in shape)
    modes = np.zeros(shape + (3,))
    cx = (shape[ax] - 1) / 2.0
    cz = (shape[az] - 1) / 2.0
    idx = np.indices(shape)
    x = idx[ax] - cx
    z = idx[az] - cz
    r = np.sqrt(x * x + z * z)
    # Tangential unit vector (-z, x)/r, softened at the core.
    soft = np.where(r < 1e-9, 1.0, r)
    scale = p0 * (1.0 - np.exp(-(r ** 2) / 2.0)) / soft
    modes[..., ax] = -sense * z * scale
    modes[..., az] = +sense * x * scale
    return modes


def vorticity_field(modes: np.ndarray, plane: Tuple[int, int] = (0, 2)) -> np.ndarray:
    """Lattice curl component normal to ``plane`` (central differences)."""
    modes = np.asarray(modes, dtype=float)
    if modes.ndim != 4 or modes.shape[-1] != 3:
        raise ValueError("modes must have shape (nx, ny, nz, 3)")
    ax, az = plane
    # curl_n = d p_az / d x_ax - d p_ax / d x_az
    d1 = 0.5 * (
        np.roll(modes[..., az], -1, axis=ax) - np.roll(modes[..., az], 1, axis=ax)
    )
    d2 = 0.5 * (
        np.roll(modes[..., ax], -1, axis=az) - np.roll(modes[..., ax], 1, axis=az)
    )
    return d1 - d2


def winding_number(
    modes: np.ndarray,
    plane: Tuple[int, int] = (0, 2),
    slice_index: int | None = None,
    radius_frac: float = 0.75,
    nsamples: int = 64,
) -> float:
    """Discrete winding number of the in-plane polarization around the centre.

    Samples the polarization angle on a loop of radius ``radius_frac`` x
    (half the smaller in-plane extent) and accumulates wrapped angle
    increments; a flux closure gives +-1, a uniform domain 0.
    """
    modes = np.asarray(modes, dtype=float)
    if modes.ndim != 4 or modes.shape[-1] != 3:
        raise ValueError("modes must have shape (nx, ny, nz, 3)")
    ax, az = plane
    other = ({0, 1, 2} - {ax, az}).pop()
    if slice_index is None:
        slice_index = modes.shape[other] // 2
    # Build the 2-D in-plane slice (na, nb, 3).
    slicer: list = [slice(None)] * 3
    slicer[other] = slice_index
    sl = modes[tuple(slicer)]
    if ax > az:
        sl = np.swapaxes(sl, 0, 1)  # ensure first index is the smaller plane axis
    na, nb = sl.shape[:2]
    ca, cb = (na - 1) / 2.0, (nb - 1) / 2.0
    radius = radius_frac * (min(na, nb) / 2.0 - 1.0)
    if radius <= 0:
        raise ValueError("lattice too small for a winding loop")
    angles = np.linspace(0.0, 2.0 * math.pi, nsamples, endpoint=False)
    total = 0.0
    prev = None
    first = None
    lo, hi = (ax, az) if ax < az else (az, ax)
    for t in angles:
        ia = int(round(ca + radius * math.cos(t))) % na
        ib = int(round(cb + radius * math.sin(t))) % nb
        vec = sl[ia, ib]
        theta = math.atan2(vec[hi], vec[lo])
        if prev is None:
            first = theta
        else:
            d = theta - prev
            while d > math.pi:
                d -= 2.0 * math.pi
            while d < -math.pi:
                d += 2.0 * math.pi
            total += d
        prev = theta
    # close the loop
    d = first - prev
    while d > math.pi:
        d -= 2.0 * math.pi
    while d < -math.pi:
        d += 2.0 * math.pi
    total += d
    return total / (2.0 * math.pi)


def domain_fraction(modes: np.ndarray, axis: int, sign: int = +1,
                    threshold: float = 0.5) -> float:
    """Fraction of cells polarized along +-axis beyond a threshold of |p|max."""
    modes = np.asarray(modes, dtype=float)
    if axis not in (0, 1, 2) or sign not in (+1, -1):
        raise ValueError("axis must be 0..2 and sign +-1")
    mags = np.linalg.norm(modes, axis=-1)
    pmax = float(mags.max())
    if pmax == 0.0:
        return 0.0
    aligned = sign * modes[..., axis] > threshold * pmax
    return float(np.count_nonzero(aligned)) / mags.size
