"""Neural-network force field for the local-mode dynamics (Ref. 35 stand-in).

The paper's multiscale pipeline prepares ground-state polar topologies
with a neural-network force field trained on quantum MD data; here the
training data comes from the in-repo effective Hamiltonian (the honest
substitution documented in DESIGN.md).  The model is a small NumPy MLP
mapping per-cell descriptors (own mode, neighbour mean, invariants) to
the force on that cell's mode, trained with Adam on randomly sampled
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.materials.effective_ham import EffectiveHamiltonian


class Descriptors:
    """Per-cell descriptor extraction.

    Features (8): own mode p (3), neighbour-mean mode (3), |p|^2 (1),
    local divergence (1).
    """

    NFEATURES = 8

    @staticmethod
    def compute(modes: np.ndarray) -> np.ndarray:
        """Descriptor array of shape (ncells, 8) from an (nx,ny,nz,3) field."""
        modes = np.asarray(modes, dtype=float)
        if modes.ndim != 4 or modes.shape[-1] != 3:
            raise ValueError("modes must have shape (nx, ny, nz, 3)")
        nb = np.zeros_like(modes)
        for d in range(3):
            nb += np.roll(modes, 1, axis=d) + np.roll(modes, -1, axis=d)
        nb /= 6.0
        p2 = np.sum(modes ** 2, axis=-1, keepdims=True)
        div = np.zeros(modes.shape[:3])
        for d in range(3):
            div += 0.5 * (
                np.roll(modes[..., d], -1, axis=d) - np.roll(modes[..., d], 1, axis=d)
            )
        feats = np.concatenate([modes, nb, p2, div[..., None]], axis=-1)
        return feats.reshape(-1, Descriptors.NFEATURES)


@dataclass
class NeuralForceField:
    """Two-layer MLP: descriptors -> per-cell mode force.

    Weights are NumPy arrays; ``predict_forces`` reshapes back to the
    lattice.  Use :func:`train_nnff` to fit against an effective
    Hamiltonian.
    """

    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: np.ndarray
    feat_mean: np.ndarray
    feat_std: np.ndarray

    @classmethod
    def initialize(cls, hidden: int = 32, rng: Optional[np.random.Generator] = None
                   ) -> "NeuralForceField":
        rng = rng if rng is not None else np.random.default_rng(0)
        nf = Descriptors.NFEATURES
        return cls(
            w1=rng.standard_normal((nf, hidden)) * np.sqrt(2.0 / nf),
            b1=np.zeros(hidden),
            w2=rng.standard_normal((hidden, 3)) * np.sqrt(2.0 / hidden),
            b2=np.zeros(3),
            feat_mean=np.zeros(nf),
            feat_std=np.ones(nf),
        )

    # -- forward --------------------------------------------------------- #
    def _forward(self, feats: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x = (feats - self.feat_mean) / self.feat_std
        h = np.tanh(x @ self.w1 + self.b1)
        return h @ self.w2 + self.b2, h

    def predict(self, feats: np.ndarray) -> np.ndarray:
        """Forces for a (ncells, 8) descriptor batch."""
        out, _ = self._forward(np.asarray(feats, dtype=float))
        return out

    def predict_forces(self, modes: np.ndarray) -> np.ndarray:
        """Forces on an (nx,ny,nz,3) mode field."""
        feats = Descriptors.compute(modes)
        return self.predict(feats).reshape(modes.shape)

    # -- training -------------------------------------------------------- #
    def loss_and_grads(
        self, feats: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        """MSE loss and analytic gradients (backprop by hand)."""
        x = (feats - self.feat_mean) / self.feat_std
        z1 = x @ self.w1 + self.b1
        h = np.tanh(z1)
        pred = h @ self.w2 + self.b2
        diff = pred - targets
        n = feats.shape[0]
        loss = float(np.mean(diff ** 2))
        dout = 2.0 * diff / (n * diff.shape[1])
        grads = {
            "w2": h.T @ dout,
            "b2": dout.sum(axis=0),
        }
        dh = dout @ self.w2.T
        dz1 = dh * (1.0 - h ** 2)
        grads["w1"] = x.T @ dz1
        grads["b1"] = dz1.sum(axis=0)
        return loss, grads


def train_nnff(
    ham: EffectiveHamiltonian,
    rng: np.random.Generator,
    hidden: int = 32,
    nconfigs: int = 60,
    epochs: int = 300,
    lr: float = 3e-3,
    amplitude: float = 1.5,
) -> Tuple[NeuralForceField, List[float]]:
    """Fit an MLP force field to the effective Hamiltonian's forces.

    Training configurations mix random fields, noisy uniform domains and
    noisy flux closures so the model sees the textures it will be used on.
    Returns the model and the per-epoch loss history.
    """
    from repro.materials.topology import flux_closure_modes, uniform_modes

    shape = ham.shape
    feats_list = []
    targets_list = []
    p0 = max(ham.params.p_min, 0.5)
    for i in range(nconfigs):
        kind = i % 3
        if kind == 0:
            modes = amplitude * rng.uniform(-1, 1, size=shape + (3,))
        elif kind == 1:
            axis = int(rng.integers(0, 3))
            modes = uniform_modes(shape, p0, axis=axis)
            modes += 0.3 * rng.standard_normal(modes.shape)
        else:
            modes = flux_closure_modes(shape, p0)
            modes += 0.3 * rng.standard_normal(modes.shape)
        feats_list.append(Descriptors.compute(modes))
        targets_list.append(ham.forces(modes).reshape(-1, 3))
    feats = np.concatenate(feats_list, axis=0)
    targets = np.concatenate(targets_list, axis=0)

    model = NeuralForceField.initialize(hidden=hidden, rng=rng)
    model.feat_mean = feats.mean(axis=0)
    model.feat_std = feats.std(axis=0) + 1e-8

    # Adam optimizer state.
    params = {"w1": model.w1, "b1": model.b1, "w2": model.w2, "b2": model.b2}
    m = {k: np.zeros_like(v) for k, v in params.items()}
    v = {k: np.zeros_like(vv) for k, vv in params.items()}
    beta1, beta2, eps = 0.9, 0.999, 1e-8
    history: List[float] = []
    nbatch = min(4096, feats.shape[0])
    for epoch in range(1, epochs + 1):
        sel = rng.choice(feats.shape[0], size=nbatch, replace=False)
        loss, grads = model.loss_and_grads(feats[sel], targets[sel])
        history.append(loss)
        for k in params:
            m[k] = beta1 * m[k] + (1 - beta1) * grads[k]
            v[k] = beta2 * v[k] + (1 - beta2) * grads[k] ** 2
            mhat = m[k] / (1 - beta1 ** epoch)
            vhat = v[k] / (1 - beta2 ** epoch)
            params[k] -= lr * mhat / (np.sqrt(vhat) + eps)
    return model, history
