"""Landau-Devonshire effective Hamiltonian for PbTiO3 local modes.

The ferroelectric state is described by one local-mode vector p_i per
perovskite cell on an (nx, ny, nz) lattice (the standard effective-
Hamiltonian coarse-graining of Refs. 12/35).  The energy is

    E = sum_i [ a2 |p_i|^2 + a4 |p_i|^4 + aniso * sum_d p_{i,d}^4 ]
      + (j/2) sum_<ij> |p_i - p_j|^2
      + c_div sum_i (div p)_i^2
      - sum_i E_ext . p_i,

with a2 < 0 < a4 giving the double well, the cubic anisotropy selecting
<100> easy axes (so 90/180-degree domain walls are locally stable, which
is what stabilizes flux-closure textures), the gradient term penalizing
walls, and the divergence term the electrostatic depolarization penalty.

**Light coupling (the DC-MESH handshake):** photoexcited carriers screen
the ferroelectric instability; an excitation fraction n_exc renormalizes
the quadratic coefficient a2 -> a2 (1 - kappa n_exc).  Above threshold
(n_exc > 1/kappa) the well inverts and the polar texture collapses --
the light-induced switching of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class LandauParameters:
    """Model coefficients (dimensionless reduced units; |p|~1 at minimum)."""

    a2: float = -1.0
    a4: float = 0.5
    aniso: float = 0.15
    coupling: float = 0.35
    c_div: float = 0.25
    exc_coupling: float = 2.0
    misfit_strain: float = 0.0
    strain_coupling: float = 0.8

    def __post_init__(self) -> None:
        if self.a4 <= 0:
            raise ValueError("a4 must be positive (bounded double well)")
        if self.coupling < 0 or self.c_div < 0 or self.aniso < 0:
            raise ValueError("coupling, c_div and aniso must be non-negative")
        if self.strain_coupling < 0:
            raise ValueError("strain_coupling must be non-negative")

    @property
    def p_min(self) -> float:
        """Well-bottom mode amplitude for the isotropic part."""
        if self.a2 >= 0:
            return 0.0
        return float(np.sqrt(-self.a2 / (2.0 * self.a4)))

    @property
    def switching_threshold(self) -> float:
        """Excitation fraction at which the double well inverts."""
        return 1.0 / self.exc_coupling if self.exc_coupling > 0 else np.inf


class EffectiveHamiltonian:
    """Energy/forces/dynamics of the local-mode field.

    Mode fields have shape (nx, ny, nz, 3) with periodic boundaries.
    """

    def __init__(self, shape: Tuple[int, int, int],
                 params: Optional[LandauParameters] = None) -> None:
        if len(shape) != 3 or any(int(n) < 1 for n in shape):
            raise ValueError("shape must be three positive integers")
        self.shape = tuple(int(n) for n in shape)
        self.params = params if params is not None else LandauParameters()

    def _check(self, modes: np.ndarray) -> np.ndarray:
        modes = np.asarray(modes, dtype=float)
        if modes.shape != self.shape + (3,):
            raise ValueError(
                f"modes shape {modes.shape} != expected {self.shape + (3,)}"
            )
        return modes

    def effective_a2(self, n_exc: float = 0.0) -> float:
        """Excitation-renormalized quadratic coefficient."""
        if n_exc < 0:
            raise ValueError("excitation fraction must be non-negative")
        return self.params.a2 * (1.0 - self.params.exc_coupling * n_exc)

    def divergence(self, modes: np.ndarray) -> np.ndarray:
        """Central-difference lattice divergence of the mode field."""
        modes = self._check(modes)
        div = np.zeros(self.shape)
        for d in range(3):
            div += 0.5 * (
                np.roll(modes[..., d], -1, axis=d) - np.roll(modes[..., d], 1, axis=d)
            )
        return div

    # ------------------------------------------------------------------ #
    def energy(
        self,
        modes: np.ndarray,
        n_exc: float = 0.0,
        e_field: Optional[np.ndarray] = None,
    ) -> float:
        """Total Landau energy of a mode configuration."""
        modes = self._check(modes)
        prm = self.params
        a2 = self.effective_a2(n_exc)
        p2 = np.sum(modes ** 2, axis=-1)
        e = float(np.sum(a2 * p2 + prm.a4 * p2 ** 2))
        e += prm.aniso * float(np.sum(modes ** 4))
        if prm.misfit_strain != 0.0:
            # Epitaxial misfit: E = q eta sum_i (2 p_z^2 - p_x^2 - p_y^2);
            # compressive (eta < 0) substrates favour out-of-plane P, the
            # mechanism that stabilizes flux closures in strained PbTiO3
            # (Ref. 35 of the paper).
            e += prm.strain_coupling * prm.misfit_strain * float(
                np.sum(2.0 * modes[..., 2] ** 2
                       - modes[..., 0] ** 2 - modes[..., 1] ** 2)
            )
        for d in range(3):
            diff = modes - np.roll(modes, 1, axis=d)
            e += 0.5 * prm.coupling * float(np.sum(diff ** 2))
        div = self.divergence(modes)
        e += prm.c_div * float(np.sum(div ** 2))
        if e_field is not None:
            e_field = np.asarray(e_field, dtype=float)
            e -= float(np.sum(modes @ e_field))
        return e

    def forces(
        self,
        modes: np.ndarray,
        n_exc: float = 0.0,
        e_field: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """-dE/dp, analytically (validated against numerical gradients)."""
        modes = self._check(modes)
        prm = self.params
        a2 = self.effective_a2(n_exc)
        p2 = np.sum(modes ** 2, axis=-1, keepdims=True)
        grad = 2.0 * a2 * modes + 4.0 * prm.a4 * p2 * modes
        grad += 4.0 * prm.aniso * modes ** 3
        if prm.misfit_strain != 0.0:
            qe = prm.strain_coupling * prm.misfit_strain
            grad[..., 0] += -2.0 * qe * modes[..., 0]
            grad[..., 1] += -2.0 * qe * modes[..., 1]
            grad[..., 2] += 4.0 * qe * modes[..., 2]
        for d in range(3):
            grad += prm.coupling * (
                2.0 * modes
                - np.roll(modes, 1, axis=d)
                - np.roll(modes, -1, axis=d)
            )
        div = self.divergence(modes)
        for d in range(3):
            # d/dp_d[k] sum_i div_i^2 = div[k - e_d] - div[k + e_d].
            grad[..., d] += prm.c_div * (
                np.roll(div, 1, axis=d) - np.roll(div, -1, axis=d)
            )
        if e_field is not None:
            grad -= np.asarray(e_field, dtype=float)
        return -grad

    # ------------------------------------------------------------------ #
    def relax(
        self,
        modes: np.ndarray,
        nsteps: int = 500,
        step_size: float = 0.05,
        n_exc: float = 0.0,
        e_field: Optional[np.ndarray] = None,
        tol: float = 1e-8,
    ) -> Tuple[np.ndarray, float]:
        """Overdamped relaxation (gradient descent with backtracking).

        Returns the relaxed modes and the final energy.
        """
        modes = self._check(modes).copy()
        e = self.energy(modes, n_exc, e_field)
        step = step_size
        for _ in range(nsteps):
            f = self.forces(modes, n_exc, e_field)
            trial = modes + step * f
            e_trial = self.energy(trial, n_exc, e_field)
            if e_trial <= e:
                gain = e - e_trial
                modes = trial
                e = e_trial
                step = min(step * 1.1, 10.0 * step_size)
                if gain < tol * max(abs(e), 1.0):
                    break
            else:
                step *= 0.5
                if step < 1e-12:
                    break
        return modes, e

    def dynamics_step(
        self,
        modes: np.ndarray,
        velocities: np.ndarray,
        dt: float,
        mass: float = 1.0,
        damping: float = 0.1,
        n_exc: float = 0.0,
        e_field: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One damped-Verlet step of mode dynamics (laser-driven switching)."""
        if dt <= 0 or mass <= 0 or damping < 0:
            raise ValueError("dt/mass must be positive, damping non-negative")
        modes = self._check(modes)
        velocities = self._check(velocities)
        f = self.forces(modes, n_exc, e_field) - damping * mass * velocities
        v_half = velocities + 0.5 * dt * f / mass
        new_modes = modes + dt * v_half
        f_new = self.forces(new_modes, n_exc, e_field) - damping * mass * v_half
        new_vel = v_half + 0.5 * dt * f_new / mass
        return new_modes, new_vel
