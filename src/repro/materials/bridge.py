"""Bridge between the local-mode picture and atomistic coordinates.

The multiscale pipeline of Section V prepares a polar topology with the
coarse-grained (NNFF/effective-Hamiltonian) model and then hands the
*atomic configuration* to DC-MESH.  This module performs that handoff:
a local-mode field p_i becomes per-cell Ti/O off-centring displacements
of a PbTiO3 supercell (the same polar pattern ``build_supercell`` applies
uniformly), and the inverse map recovers the mode directions from atomic
positions through the Born-charge polarization.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.materials.perovskite import PerovskiteCell, build_supercell
from repro.materials.polarization import local_polarization
from repro.pseudo.elements import PseudoSpecies


def modes_to_positions(
    cell: PerovskiteCell,
    reps: Tuple[int, int, int],
    modes: np.ndarray,
    amplitude: float = 0.25,
) -> Tuple[np.ndarray, List[PseudoSpecies], Tuple[float, float, float]]:
    """Displace a supercell according to a local-mode field.

    Per cell, the Ti ion moves by ``amplitude * p`` (bohr) and the three
    O ions by half that in the opposite direction -- the soft-mode
    pattern of the ferroelectric distortion, applied cell-by-cell with
    the mode's own direction.

    Parameters
    ----------
    cell, reps:
        Supercell specification (atom ordering matches
        :func:`repro.materials.perovskite.build_supercell`).
    modes:
        Local-mode field of shape ``reps + (3,)`` (e.g. a flux closure
        from :func:`repro.materials.topology.flux_closure_modes`).
    amplitude:
        Ti displacement in bohr per unit mode amplitude.

    Returns
    -------
    (positions, species, box): the displaced atomistic configuration.
    """
    modes = np.asarray(modes, dtype=float)
    expected = tuple(int(r) for r in reps) + (3,)
    if modes.shape != expected:
        raise ValueError(f"modes shape {modes.shape} != expected {expected}")
    positions, species, box = build_supercell(cell, reps)
    idx = 0
    for ix in range(int(reps[0])):
        for iy in range(int(reps[1])):
            for iz in range(int(reps[2])):
                p = modes[ix, iy, iz]
                for sym in cell.symbols:
                    if sym == "Ti":
                        positions[idx] += amplitude * p
                    elif sym == "O":
                        positions[idx] -= 0.5 * amplitude * p
                    idx += 1
    return positions, species, box


def positions_to_modes(
    positions: np.ndarray,
    cell: PerovskiteCell,
    reps: Tuple[int, int, int],
    symbols: Sequence[str],
) -> np.ndarray:
    """Recover a normalized local-mode field from atomic positions.

    The per-cell Born-charge polarization direction is the mode
    direction; magnitudes are normalized to the largest cell so the
    output is comparable to effective-Hamiltonian mode fields.
    """
    ideal, _, _ = build_supercell(cell, reps)
    pol = local_polarization(positions, ideal, symbols, cell, reps)
    pmax = float(np.linalg.norm(pol, axis=-1).max())
    if pmax == 0.0:
        return np.zeros_like(pol)
    return pol / pmax


def roundtrip_alignment(
    modes: np.ndarray,
    cell: PerovskiteCell,
    reps: Tuple[int, int, int],
    amplitude: float = 0.25,
) -> float:
    """Mean cosine between input modes and the mode field recovered from
    the displaced lattice (1.0 = the bridge preserves the texture)."""
    positions, species, _ = modes_to_positions(cell, reps, modes, amplitude)
    symbols = [sp.symbol for sp in species]
    recovered = positions_to_modes(positions, cell, reps, symbols)
    m = np.asarray(modes, dtype=float).reshape(-1, 3)
    r = recovered.reshape(-1, 3)
    mn = np.linalg.norm(m, axis=1)
    rn = np.linalg.norm(r, axis=1)
    sel = (mn > 1e-6 * mn.max()) & (rn > 0)
    if not np.any(sel):
        raise ValueError("no polarized cells to compare")
    cos = np.einsum("ij,ij->i", m[sel], r[sel]) / (mn[sel] * rn[sel])
    return float(cos.mean())
