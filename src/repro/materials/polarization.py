"""Local polarization fields from atomic displacements (Born charges).

Connects the atomistic representation (QXMD positions) to the
coarse-grained local-mode picture used for the Fig. 7 topology analysis.
Nominal Born effective charges for PbTiO3 are used; they sum to zero per
cell (acoustic sum rule) by construction.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.materials.perovskite import PerovskiteCell

#: Nominal Born effective charges (isotropic scalars, ASR-corrected).
BORN_CHARGES: Dict[str, float] = {"Pb": 3.90, "Ti": 7.10, "O": -(3.90 + 7.10) / 3.0}


def local_polarization(
    positions: np.ndarray,
    ideal_positions: np.ndarray,
    symbols: Sequence[str],
    cell: PerovskiteCell,
    reps: Tuple[int, int, int],
) -> np.ndarray:
    """Per-cell polarization P_c = sum_a Z*_a u_a / V_cell.

    Atoms are grouped by construction order (5 per cell, matching
    :func:`repro.materials.perovskite.build_supercell`); displacements are
    taken relative to the ideal lattice with minimum-image wrapping.

    Returns an array of shape ``reps + (3,)``.
    """
    positions = np.asarray(positions, dtype=float)
    ideal_positions = np.asarray(ideal_positions, dtype=float)
    if positions.shape != ideal_positions.shape:
        raise ValueError("positions and ideal_positions must match in shape")
    natoms_cell = cell.natoms
    ncells = int(np.prod(reps))
    if positions.shape[0] != ncells * natoms_cell:
        raise ValueError(
            f"{positions.shape[0]} atoms does not match {ncells} cells "
            f"of {natoms_cell} atoms"
        )
    box = np.asarray([r * cell.a for r in reps])
    disp = positions - ideal_positions
    disp -= box * np.round(disp / box)
    vol = cell.a ** 3
    out = np.zeros(tuple(int(r) for r in reps) + (3,))
    idx = 0
    for ix in range(int(reps[0])):
        for iy in range(int(reps[1])):
            for iz in range(int(reps[2])):
                p = np.zeros(3)
                for a in range(natoms_cell):
                    z = BORN_CHARGES[symbols[idx]]
                    p += z * disp[idx]
                    idx += 1
                out[ix, iy, iz] = p / vol
    return out


def mean_polarization(pol_field: np.ndarray) -> np.ndarray:
    """Cell-averaged polarization vector."""
    pol_field = np.asarray(pol_field, dtype=float)
    if pol_field.ndim != 4 or pol_field.shape[-1] != 3:
        raise ValueError("polarization field must have shape (nx, ny, nz, 3)")
    return pol_field.mean(axis=(0, 1, 2))


def polarization_magnitude(pol_field: np.ndarray) -> np.ndarray:
    """Per-cell |P|."""
    return np.linalg.norm(np.asarray(pol_field, dtype=float), axis=-1)
