"""PbTiO3 materials models: lattices, effective Hamiltonian, NNFF, topology."""

from repro.materials.perovskite import PerovskiteCell, build_supercell, PBTIO3
from repro.materials.effective_ham import EffectiveHamiltonian, LandauParameters
from repro.materials.polarization import local_polarization, mean_polarization
from repro.materials.topology import (
    flux_closure_modes,
    uniform_modes,
    vorticity_field,
    winding_number,
    domain_fraction,
)
from repro.materials.nnff import Descriptors, NeuralForceField, train_nnff
from repro.materials.bridge import (
    modes_to_positions,
    positions_to_modes,
    roundtrip_alignment,
)

__all__ = [
    "PerovskiteCell",
    "build_supercell",
    "PBTIO3",
    "EffectiveHamiltonian",
    "LandauParameters",
    "local_polarization",
    "mean_polarization",
    "flux_closure_modes",
    "uniform_modes",
    "vorticity_field",
    "winding_number",
    "domain_fraction",
    "Descriptors",
    "NeuralForceField",
    "train_nnff",
    "modes_to_positions",
    "positions_to_modes",
    "roundtrip_alignment",
]
