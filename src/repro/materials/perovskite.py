"""PbTiO3 perovskite lattices.

The paper's benchmark material is PbTiO3, a 5-atom-per-cell ABO3
perovskite (Pb at the corner, Ti at the body centre, O at the three face
centres).  The weak-scaling granule of 40 atoms corresponds to a 2x2x2
supercell.  A polar (tetragonal-like) distortion displaces Ti against
the O cage along the polarization axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.constants import angstrom_to_bohr
from repro.pseudo.elements import PseudoSpecies, get_species


@dataclass(frozen=True)
class PerovskiteCell:
    """One cubic ABO3 cell.

    Attributes
    ----------
    a:
        Lattice constant (bohr).
    symbols:
        The five site species, A B O O O.
    fractional:
        Fractional coordinates of the five sites.
    """

    a: float
    symbols: Tuple[str, ...] = ("Pb", "Ti", "O", "O", "O")
    fractional: Tuple[Tuple[float, float, float], ...] = (
        (0.0, 0.0, 0.0),       # A site (corner)
        (0.5, 0.5, 0.5),       # B site (body centre)
        (0.5, 0.5, 0.0),       # O (face centres)
        (0.5, 0.0, 0.5),
        (0.0, 0.5, 0.5),
    )

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ValueError("lattice constant must be positive")
        if len(self.symbols) != len(self.fractional):
            raise ValueError("one symbol per site required")

    @property
    def natoms(self) -> int:
        return len(self.symbols)


#: Cubic PbTiO3 at the experimental lattice constant a = 3.97 A.
PBTIO3 = PerovskiteCell(a=angstrom_to_bohr(3.97))


def build_supercell(
    cell: PerovskiteCell,
    reps: Tuple[int, int, int],
    polar_displacement: float = 0.0,
    polar_axis: int = 2,
) -> Tuple[np.ndarray, List[PseudoSpecies], Tuple[float, float, float]]:
    """Build an (nx, ny, nz) supercell.

    Parameters
    ----------
    cell:
        The unit cell.
    reps:
        Repetitions along each axis.
    polar_displacement:
        Ti off-centring along ``polar_axis`` in bohr (positive = +axis);
        the O cage moves opposite at half the amplitude, giving a net
        polar mode per cell.
    polar_axis:
        Cartesian polarization axis.

    Returns
    -------
    (positions, species, box_lengths):
        Cartesian positions (natoms, 3) in bohr, the matching species
        list, and the periodic box lengths.
    """
    if any(int(r) < 1 for r in reps):
        raise ValueError("repetitions must be positive")
    if polar_axis not in (0, 1, 2):
        raise ValueError("polar_axis must be 0, 1 or 2")
    reps = tuple(int(r) for r in reps)
    positions = []
    species: List[PseudoSpecies] = []
    for ix in range(reps[0]):
        for iy in range(reps[1]):
            for iz in range(reps[2]):
                origin = np.array([ix, iy, iz], dtype=float) * cell.a
                for sym, frac in zip(cell.symbols, cell.fractional):
                    r = origin + np.asarray(frac) * cell.a
                    if polar_displacement != 0.0:
                        if sym == "Ti":
                            r[polar_axis] += polar_displacement
                        elif sym == "O":
                            r[polar_axis] -= 0.5 * polar_displacement
                    positions.append(r)
                    species.append(get_species(sym))
    box = tuple(r * cell.a for r in reps)
    return np.asarray(positions), species, box


def cell_centers(cell: PerovskiteCell, reps: Tuple[int, int, int]) -> np.ndarray:
    """Cartesian centres (the Ti ideal sites) of every cell in a supercell."""
    centers = []
    for ix in range(int(reps[0])):
        for iy in range(int(reps[1])):
            for iz in range(int(reps[2])):
                centers.append(
                    (np.array([ix, iy, iz], dtype=float) + 0.5) * cell.a
                )
    return np.asarray(centers)
