"""Schema'd single-file JSON documents with crash-safe semantics.

The tuning cache established the durability contract for small JSON
state files; this module generalizes it so any layer can persist one:

* saves go through the fsync'd same-directory atomic writer
  (:mod:`repro.resilience.atomicio`), honouring the caller's
  ``<fault_prefix>.enospc`` / ``<fault_prefix>.torn_write`` fault sites
  -- a killed writer or a full disk never leaves a half-written file;
* a missing file loads as *absent* (``(None, None)``);
* a file with the wrong ``schema`` marker loads as absent too (a future
  format is not an error, it is simply not ours);
* a truncated/corrupt file (torn by an unclean writer, bit rot) loads
  as absent **with the decode error surfaced**, so callers can log the
  corruption instead of silently rebuilding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union


class JsonDocumentStore:
    """One atomic, schema-checked JSON document on disk."""

    def __init__(
        self,
        path: Union[str, Path],
        schema: str,
        fault_prefix: str = "jsondoc",
    ) -> None:
        self.path = Path(path)
        self.schema = schema
        self.fault_prefix = fault_prefix

    def load(self) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """Read the document: ``(payload, error)``.

        ``payload`` is the decoded dict when the file exists, parses and
        carries this store's schema marker; otherwise None.  ``error``
        is a human-readable description when the file was present but
        unreadable (corruption), otherwise None.
        """
        if not self.path.exists():
            return None, None
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (json.JSONDecodeError, OSError) as exc:
            # A corrupt document is a missing document, never a crash.
            return None, f"{type(exc).__name__}: {exc}"
        if not isinstance(data, dict) or data.get("schema") != self.schema:
            return None, None
        return data, None

    def save(self, payload: Dict[str, Any]) -> Path:
        """Atomically write the document (schema marker stamped in).

        Raises ``OSError`` on a full disk (or an armed
        ``<fault_prefix>.enospc`` site), leaving any previous document
        byte-for-byte intact.
        """
        from repro.resilience.atomicio import atomic_write_text

        record = dict(payload)
        record["schema"] = self.schema
        text = json.dumps(record, indent=2, sort_keys=True) + "\n"
        atomic_write_text(self.path, text, fault_prefix=self.fault_prefix)
        return self.path
