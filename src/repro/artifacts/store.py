"""Content-addressed artifact store: memoized results that self-invalidate.

An :class:`ArtifactStore` maps an :class:`ArtifactKey` -- the
``(kind, config hash, code fingerprint, machine fingerprint)`` quadruple
from :mod:`repro.artifacts.fingerprint` -- to an on-disk ``.npz``
artifact holding named NumPy arrays plus a JSON metadata record.  The
address *is* the key digest, so a lookup under changed code, a different
machine, or a different configuration simply misses: invalidation is
free, there is nothing to expire.

Durability follows the repo's persistence rules:

* every artifact is written with the fsync'd same-directory atomic
  writer of :mod:`repro.resilience.atomicio`, honouring the
  ``artifact.enospc`` / ``artifact.torn_write`` fault sites -- a crash
  or full disk can never publish a half-written artifact;
* an artifact that is nevertheless unreadable (torn by an unclean
  writer, bit rot) is treated as a *miss*, counted on
  ``stats()["corrupt"]``, and healed by the next ``put``;
* the store is bounded: with ``max_bytes`` set, least-recently-*used*
  artifacts (reads touch mtime) are evicted after each write until the
  store fits the budget -- the newest artifact is never evicted.

Concurrent writers of the same key are safe by construction: each writes
its own temp file and the last ``os.replace`` wins whole, so readers see
one of the complete artifacts, never an interleaving.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.resilience.atomicio import atomic_write_bytes

#: npz member name reserved for the JSON metadata record.
_META_MEMBER = "__meta__"


@dataclass(frozen=True)
class ArtifactKey:
    """Full content address of one artifact.

    ``kind`` namespaces unrelated artifact families (``serve.ensemble``,
    ``serve.spectrum``, ...) into separate subdirectories; the other
    three fields are the fingerprint triple.  Artifacts with equal keys
    are interchangeable by definition.
    """

    kind: str
    config: str
    code: str
    machine: str

    def __post_init__(self) -> None:
        if not self.kind or "/" in self.kind or "\\" in self.kind:
            raise ValueError(f"invalid artifact kind: {self.kind!r}")

    @property
    def digest(self) -> str:
        """The content address (filename stem) of this key."""
        payload = "\x00".join(
            (self.kind, self.config, self.code, self.machine)
        ).encode()
        return sha256(payload).hexdigest()[:32]


class ArtifactStore:
    """Bounded on-disk store of fingerprint-keyed npz artifacts."""

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (or None)")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def path_for(self, key: ArtifactKey) -> Path:
        """Where ``key``'s artifact lives (whether or not it exists)."""
        return self.root / key.kind / f"{key.digest}.npz"

    def put(
        self,
        key: ArtifactKey,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Atomically publish an artifact; returns its path.

        Raises ``OSError`` (and leaves any previous artifact intact) when
        the disk is full or the ``artifact.enospc`` fault site is armed.
        """
        if _META_MEMBER in arrays:
            raise ValueError(f"array name {_META_MEMBER!r} is reserved")
        record = dict(meta) if meta is not None else {}
        buf = io.BytesIO()
        np.savez(
            buf,
            **{_META_MEMBER: np.frombuffer(
                json.dumps(record, sort_keys=True).encode(), dtype=np.uint8
            )},
            **dict(arrays),
        )
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, buf.getvalue(), fault_prefix="artifact")
        if self.max_bytes is not None:
            self._evict_to_budget(keep=path)
        return path

    def get(
        self, key: ArtifactKey
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]:
        """The stored ``(arrays, meta)`` for ``key``, or None on a miss.

        A torn/corrupt artifact is a miss (counted on ``corrupt``), never
        a crash; a successful read touches the file's mtime so the LRU
        eviction order tracks use, not just creation.
        """
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta_raw = bytes(archive[_META_MEMBER].tobytes())
                arrays = {
                    name: archive[name]
                    for name in archive.files
                    if name != _META_MEMBER
                }
            meta = json.loads(meta_raw.decode())
        except Exception:  # dclint: disable=DCL004 -- any unreadable artifact (torn zip, bad JSON, OS error) must degrade to a recomputable miss
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - mtime touch is best-effort
            pass
        self.hits += 1
        return arrays, meta

    def contains(self, key: ArtifactKey) -> bool:
        """Whether an artifact file exists for ``key`` (no validity read)."""
        return self.path_for(key).exists()

    # ------------------------------------------------------------------ #
    def _artifact_files(self) -> List[Path]:
        return [p for p in self.root.glob("*/*.npz") if p.is_file()]

    def size_bytes(self) -> int:
        """Total bytes currently held by the store."""
        return sum(p.stat().st_size for p in self._artifact_files())

    def __len__(self) -> int:
        return len(self._artifact_files())

    def _evict_to_budget(self, keep: Optional[Path] = None) -> List[Path]:
        """Drop least-recently-used artifacts until the budget fits."""
        assert self.max_bytes is not None
        files = self._artifact_files()
        sized = [(p, p.stat()) for p in files]
        total = sum(st.st_size for _, st in sized)
        # Oldest mtime first; the just-written artifact is never a victim.
        sized.sort(key=lambda item: (item[1].st_mtime, item[0].name))
        removed: List[Path] = []
        for path, st in sized:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing writer re-created it
                continue
            total -= st.st_size
            removed.append(path)
            self.evictions += 1
        return removed

    def clear(self) -> int:
        """Remove every artifact; returns how many were dropped."""
        files = self._artifact_files()
        for path in files:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone
                continue
        return len(files)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/corruption/eviction counters plus current footprint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "entries": len(self),
            "bytes": self.size_bytes(),
        }
