"""Content-addressed artifacts: shared fingerprints, stores, documents.

The generalization of the tuning cache's keying discipline into a
subsystem every layer can use: :mod:`repro.artifacts.fingerprint` is the
single home of the config/code/machine digests,
:mod:`repro.artifacts.store` maps fingerprint keys to bounded on-disk
npz artifacts (the serve layer's result memoizer), and
:mod:`repro.artifacts.jsondoc` holds the crash-safe single-file JSON
document semantics the tuning cache now runs on.
"""

from repro.artifacts.fingerprint import (
    canonical_json,
    code_fingerprint,
    config_hash,
    machine_fingerprint,
)
from repro.artifacts.jsondoc import JsonDocumentStore
from repro.artifacts.store import ArtifactKey, ArtifactStore

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "JsonDocumentStore",
    "canonical_json",
    "code_fingerprint",
    "config_hash",
    "machine_fingerprint",
]
