"""Shared fingerprint helpers: what makes a cached result trustworthy.

Every persisted artifact in this codebase -- tuned kernel winners,
memoized serve results, partial-ensemble checkpoints -- is only valid
for the exact (configuration, code, machine) triple that produced it.
This module is the single home of the three digests that capture that
triple; :mod:`repro.tuning.cache` re-exports them for backward
compatibility and :mod:`repro.serve` keys its artifact store with them.

* :func:`config_hash` -- canonical-JSON digest of an arbitrary
  JSON-serializable payload (sorted keys, compact separators), so two
  semantically identical configs hash identically regardless of dict
  ordering.
* :func:`code_fingerprint` -- digest over ``(name, source text)`` pairs;
  editing any contributing module invalidates everything keyed by it.
* :func:`machine_fingerprint` -- digest of the hardware/software
  substrate (platform, CPU count, NumPy/BLAS build); moving an artifact
  file to another host invalidates it.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import platform
from types import ModuleType
from typing import Any, Iterable, List, Protocol, Tuple, Union

import numpy as np


class SupportsSourceTexts(Protocol):
    """Structural contract of objects exposing ``source_texts()``."""

    def source_texts(self) -> Iterable[Tuple[str, str]]:
        """Yield ``(name, source text)`` pairs."""
        ...


#: Something that can contribute source text to a code fingerprint:
#: pre-extracted ``(name, text)`` pairs, an object exposing
#: ``source_texts()`` (the tuning registry's ``Tunable``), or modules.
SourceTexts = Union[
    Iterable[Tuple[str, str]],
    SupportsSourceTexts,
    Iterable[ModuleType],
]


def _blas_signature() -> str:
    """Best-effort BLAS vendor/version string from NumPy's build config."""
    try:
        cfg = np.show_config(mode="dicts")  # numpy >= 1.25
    except TypeError:  # pragma: no cover - older numpy
        return "unknown"
    except Exception:  # dclint: disable=DCL004 -- fingerprint probe must never raise; "unknown" is a valid answer  # pragma: no cover
        return "unknown"
    deps = (cfg or {}).get("Build Dependencies", {})
    blas = deps.get("blas", {})
    name = blas.get("name", "unknown")
    version = blas.get("version", "unknown")
    return f"{name}-{version}"


def machine_fingerprint() -> str:
    """Digest of the hardware/software substrate results depend on."""
    payload = json.dumps(
        {
            "machine": platform.machine(),
            "system": platform.system(),
            "processor": platform.processor(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "blas": _blas_signature(),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _source_pairs(source: SourceTexts) -> Iterable[Tuple[str, str]]:
    """Normalize any accepted source spec to ``(name, text)`` pairs."""
    texts = getattr(source, "source_texts", None)
    if callable(texts):
        return tuple(texts())
    pairs: List[Tuple[str, str]] = []
    for item in source:  # type: ignore[union-attr]
        if isinstance(item, ModuleType):
            pairs.append((item.__name__, inspect.getsource(item)))
        else:
            pairs.append((item[0], item[1]))
    return pairs


def code_fingerprint(source: SourceTexts) -> str:
    """Digest over contributing source text.

    Accepts ``(name, text)`` pairs, a list of modules, or any object with
    a ``source_texts()`` method (the tuning registry's ``Tunable``), so
    the tuning cache's historical ``code_fingerprint(tunable)`` call
    keeps working unchanged.
    """
    digest = hashlib.sha256()
    for name, text in _source_pairs(source):
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(text.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def canonical_json(payload: Any) -> str:
    """The canonical JSON text of a payload (sorted keys, compact).

    Two payloads that differ only in dict ordering serialize
    identically; floats round-trip exactly (``repr`` shortest-float), so
    the text -- and hence :func:`config_hash` -- is a faithful identity
    for numerical configs.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_hash(payload: Any) -> str:
    """Digest of a JSON-serializable configuration payload."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]
