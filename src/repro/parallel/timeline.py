"""Per-rank event timeline for bulk-synchronous performance modeling.

DC-MESH is bulk-synchronous at the MD-step level: every rank computes its
domains, participates in the global-potential reduction, then all ranks
synchronize.  The step time is the maximum over ranks of accumulated
compute + communication time; :meth:`barrier` realizes that maximum.
"""

from __future__ import annotations

from typing import Dict


class RankTimeline:
    """Accumulates compute/communication time per rank."""

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError("nranks must be positive")
        self.nranks = int(nranks)
        self.times = [0.0] * self.nranks
        self.compute_total = [0.0] * self.nranks
        self.comm_total = [0.0] * self.nranks
        self.barriers = 0
        self.categories: Dict[str, float] = {}

    def _check(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range")

    def add_compute(self, rank: int, t: float, name: str = "compute") -> None:
        """Charge compute time to one rank."""
        self._check(rank)
        if t < 0:
            raise ValueError("time must be non-negative")
        self.times[rank] += t
        self.compute_total[rank] += t
        self.categories[name] = self.categories.get(name, 0.0) + t

    def add_comm(self, rank: int, t: float, name: str = "comm") -> None:
        """Charge communication time to one rank."""
        self._check(rank)
        if t < 0:
            raise ValueError("time must be non-negative")
        self.times[rank] += t
        self.comm_total[rank] += t
        self.categories[name] = self.categories.get(name, 0.0) + t

    def barrier(self) -> float:
        """Synchronize all ranks to the slowest; returns the new common time."""
        t_max = max(self.times)
        self.times = [t_max] * self.nranks
        self.barriers += 1
        return t_max

    @property
    def elapsed(self) -> float:
        """Current makespan (time of the slowest rank)."""
        return max(self.times)

    def load_imbalance(self) -> float:
        """max/mean compute-time ratio (1.0 = perfectly balanced)."""
        mean = sum(self.compute_total) / self.nranks
        if mean == 0.0:
            return 1.0
        return max(self.compute_total) / mean

    def comm_fraction(self) -> float:
        """Fraction of the critical path spent in communication (slowest rank)."""
        worst = max(range(self.nranks), key=lambda r: self.times[r])
        total = self.compute_total[worst] + self.comm_total[worst]
        if total == 0.0:
            return 0.0
        return self.comm_total[worst] / total
