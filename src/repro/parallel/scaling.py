"""Weak/strong scaling studies of DC-MESH (Figs. 2-3 of the paper).

The per-MD-step time of one rank is assembled from:

* per-domain compute: QXMD SCF/CG refresh on the CPU core plus the N_QD
  LFD sub-steps on the A100, both charged via rooflines from the
  :class:`~repro.lfd.costs.LFDWorkload` inventory.  A rank owning k
  domains pays k times the per-domain cost -- the linear-scaling DC
  property;
* a fixed per-step overhead independent of the rank's domain count
  (global SCF synchronizations, O(N) tree setup, MD bookkeeping, kernel
  launch/sync);
* communication: density halo exchange (surface term ~ k^{2/3}), the
  global multigrid coarse-level reduction (~ log P), and the tiny
  shadow-dynamics occupation allreduce.

Efficiencies follow the paper's definitions exactly: speed = atoms x MD
steps / second; weak (isogranular) speedup is speed(P)/speed(P0), with
efficiency dividing by P/P0; strong-scaling efficiency is
[t(Pmin)/t(P)] / (P/Pmin).

Calibration (DESIGN.md section 5): two fitted constants only --
``tree_levels_factor`` is fitted so the weak-scaling efficiency at
P = 1,024 matches the paper's 0.9673, and ``fixed_step_overhead`` so the
5,120-atom strong-scaling efficiency at P = 256 matches 0.6634.  Every
other point of Figs. 2-3 is then a prediction.  Note the paper's own two
strong-scaling numbers are mutually inconsistent with its closed-form
efficiency law (the 10,240-atom system at the same atoms/rank shows a
different efficiency); EXPERIMENTS.md discusses the residuals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from repro.device.kernels import KernelCostModel
from repro.device.spec import A100, EPYC_7543_CORE, DeviceSpec
from repro.lfd.costs import LFDWorkload
from repro.parallel.network import (
    NetworkSpec,
    SLINGSHOT,
    allreduce_time,
    halo_exchange_time,
    tree_reduce_time,
)
from repro.parallel.timeline import RankTimeline


@dataclass(frozen=True)
class DCMeshStepModel:
    """Per-rank cost model of one DC-MESH MD step.

    The workload unit is one DC domain granule: 40 atoms of PbTiO3, 288
    QXMD plane-wave KS states, a 70x70x72 LFD mesh, 3 SCF x 3 CG
    iterations and 1,000 QD sub-steps per MD step (Section IV-A).  A rank
    owns ``atoms_per_rank / atoms_per_domain`` granules.
    """

    atoms_per_rank: float = 40.0
    atoms_per_domain: float = 40.0
    norb_qxmd: int = 288
    lfd_mesh: Tuple[int, int, int] = (70, 70, 72)
    lfd_norb: int = 64
    lfd_nunocc: int = 32
    nscf: int = 3
    ncg: int = 3
    nqd: int = 1000
    itemsize: int = 16
    gpu: DeviceSpec = A100
    cpu_core: DeviceSpec = EPYC_7543_CORE
    network: NetworkSpec = SLINGSHOT
    coarse_grid_points: int = 32 ** 3
    tree_levels_factor: float = 1.0     # fitted: weak eta(1024) = 0.9673
    fixed_step_overhead: float = 0.0    # fitted: strong eta(5120 @ 256) = 0.6634
    cpu_efficiency: float = 0.5
    jitter: float = 0.01

    # ---------------------------------------------------------------- #
    @property
    def domains_per_rank(self) -> float:
        return self.atoms_per_rank / self.atoms_per_domain

    @property
    def lfd_ngrid(self) -> int:
        nx, ny, nz = self.lfd_mesh
        return nx * ny * nz

    def lfd_workload(self) -> LFDWorkload:
        """The per-domain LFD workload."""
        return LFDWorkload(
            ngrid=self.lfd_ngrid,
            norb=self.lfd_norb,
            nunocc=self.lfd_nunocc,
            itemsize=self.itemsize,
            nqd=self.nqd,
        )

    def with_atoms_per_rank(self, atoms_per_rank: float) -> "DCMeshStepModel":
        """Same model at a different granularity (strong scaling)."""
        if atoms_per_rank <= 0:
            raise ValueError("atoms_per_rank must be positive")
        return replace(self, atoms_per_rank=atoms_per_rank)

    # ---------------------------------------------------------------- #
    # per-domain compute
    # ---------------------------------------------------------------- #
    def lfd_domain_time(self, use_gpu: bool = True) -> float:
        """Time of one domain's N_QD LFD sub-steps (roofline)."""
        spec = self.gpu if use_gpu else self.cpu_core
        model = KernelCostModel(spec)
        w = self.lfd_workload()
        t = 0.0
        for cost in w.md_step_totals().values():
            t += model.kernel_time(cost.flops, cost.bytes_moved,
                                   itemsize=w.real_itemsize)
        if use_gpu:
            # ~13 kernels per QD sub-step, launch cost hidden down to the
            # async enqueue cost by `nowait`.
            t += self.nqd * 13 * 1.5e-6
        return t

    def qxmd_domain_time(self) -> float:
        """CPU time of one domain's SCF/CG ground-state refresh.

        Per CG iteration and band: one Hamiltonian application dominated
        by two FFTs (10 N log2 N flops each) plus local potential work;
        per SCF: a subspace orthonormalization share.  Charged at
        ``cpu_efficiency`` of one EPYC core's DP peak (QXMD is Fortran +
        vendor BLAS).
        """
        n = float(self.lfd_ngrid)
        fft_flops = 10.0 * n * math.log2(max(n, 2.0))
        h_apply = 2.0 * fft_flops + 60.0 * n
        cg_flops = self.nscf * self.ncg * self.norb_qxmd * h_apply
        ortho_flops = self.nscf * 8.0 * n * self.norb_qxmd ** 2 / 4.0
        peak = self.cpu_core.peak_flops_dp * self.cpu_efficiency
        return (cg_flops + ortho_flops) / peak

    def compute_time(self, use_gpu: bool = True) -> float:
        """Per-rank compute: domains x per-domain cost + fixed overhead."""
        per_domain = self.qxmd_domain_time() + self.lfd_domain_time(use_gpu)
        return self.domains_per_rank * per_domain + self.fixed_step_overhead

    # ---------------------------------------------------------------- #
    # per-rank communication
    # ---------------------------------------------------------------- #
    def halo_bytes(self) -> float:
        """Density-halo face bytes of the rank's spatial region.

        One domain face times (domains per rank)^(2/3): the rank's region
        aggregates its granules into a compact block.
        """
        nx, ny, nz = self.lfd_mesh
        face = max(nx * ny, ny * nz, nx * nz)
        return 8.0 * face * max(self.domains_per_rank, 1e-9) ** (2.0 / 3.0)

    def comm_time(self, nranks: int) -> float:
        """Per-step communication on the critical path for a P-rank job."""
        if nranks < 2:
            return 0.0
        t = 0.0
        # Halo exchange for the global density recombination (per SCF).
        t += self.nscf * halo_exchange_time(self.halo_bytes(), self.network)
        # Global multigrid: coarse-level reduce + broadcast back, once per
        # SCF iteration; tree_levels_factor is fitted (see module doc).
        coarse_bytes = 8.0 * self.coarse_grid_points
        t += (
            self.nscf
            * self.tree_levels_factor
            * 2.0
            * tree_reduce_time(coarse_bytes, nranks, self.network)
        )
        # Shadow-dynamics occupations: one small allreduce per MD step.
        occ_bytes = 8.0 * (self.lfd_norb + self.lfd_nunocc)
        t += allreduce_time(occ_bytes, nranks, self.network)
        return t

    # ---------------------------------------------------------------- #
    def step_time(
        self,
        nranks: int,
        use_gpu: bool = True,
        timeline: RankTimeline | None = None,
    ) -> float:
        """Wall-clock of one MD step on ``nranks`` ranks (bulk-synchronous).

        With ``use_gpu=False`` the LFD work runs on the CPU core instead
        (the Fig. 4 CPU-only configuration).  The step time is the
        barrier maximum over modeled ranks, including a deterministic
        load-imbalance jitter of up to ``jitter`` (DC-domain population
        spread).
        """
        if nranks < 1:
            raise ValueError("nranks must be positive")
        t_compute = self.compute_time(use_gpu)
        t_comm = self.comm_time(nranks)
        if timeline is None:
            timeline = RankTimeline(min(nranks, 64))
        nmodel = timeline.nranks
        for r in range(nmodel):
            frac = ((r * 2654435761) % 1000) / 999.0 if nmodel > 1 else 1.0
            timeline.add_compute(r, t_compute * (1.0 + self.jitter * frac), "compute")
            timeline.add_comm(r, t_comm, "comm")
        return timeline.barrier()


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve (paper definitions)."""

    nranks: int
    natoms: float
    step_time: float
    speed: float          # atoms * MD steps / second
    speedup: float
    efficiency: float


def weak_scaling_study(
    model: DCMeshStepModel,
    p_list: Sequence[int] = (4, 8, 16, 32, 64, 128, 256, 512, 1024),
    p_ref: int = 4,
) -> List[ScalingPoint]:
    """Isogranular (weak) scaling: constant atoms/rank, growing P (Fig. 2)."""
    if p_ref not in p_list:
        raise ValueError("the reference rank count must be part of p_list")
    times = {p: model.step_time(p) for p in p_list}
    speed_ref = model.atoms_per_rank * p_ref / times[p_ref]
    points = []
    for p in sorted(p_list):
        natoms = model.atoms_per_rank * p
        speed = natoms / times[p]
        speedup = speed / speed_ref
        points.append(
            ScalingPoint(
                nranks=p,
                natoms=natoms,
                step_time=times[p],
                speed=speed,
                speedup=speedup,
                efficiency=speedup / (p / p_ref),
            )
        )
    return points


def strong_scaling_study(
    model: DCMeshStepModel,
    natoms: float,
    p_list: Sequence[int],
) -> List[ScalingPoint]:
    """Fixed-size (strong) scaling for a given total atom count (Fig. 3)."""
    if len(p_list) < 2:
        raise ValueError("need at least two rank counts")
    p_min = min(p_list)
    times = {
        p: model.with_atoms_per_rank(natoms / p).step_time(p) for p in p_list
    }
    t_ref = times[p_min]
    points = []
    for p in sorted(p_list):
        speedup = t_ref / times[p]
        points.append(
            ScalingPoint(
                nranks=p,
                natoms=natoms,
                step_time=times[p],
                speed=natoms / times[p],
                speedup=speedup,
                efficiency=speedup / (p / p_min),
            )
        )
    return points


def calibrate_tree_factor(
    model: DCMeshStepModel,
    target_efficiency: float = 0.9673,
    p_target: int = 1024,
    p_ref: int = 4,
    iterations: int = 4,
) -> DCMeshStepModel:
    """Fit ``tree_levels_factor`` so eta_weak(p_target) hits the paper value.

    Iterated because the reference time at ``p_ref`` also carries a
    (small) tree term.
    """
    if not (0.0 < target_efficiency <= 1.0):
        raise ValueError("target efficiency must be in (0, 1]")
    for _ in range(iterations):
        t_ref = model.step_time(p_ref)
        t_target = t_ref / target_efficiency
        base = replace(model, tree_levels_factor=0.0)
        unit = replace(model, tree_levels_factor=1.0)
        t0 = base.step_time(p_target)
        per_unit = unit.step_time(p_target) - t0
        if per_unit <= 0:
            raise RuntimeError("tree term has no effect; cannot calibrate")
        factor = max(0.0, (t_target - t0) / per_unit)
        model = replace(model, tree_levels_factor=factor)
    return model


def calibrate_fixed_overhead(
    model: DCMeshStepModel,
    target_efficiency: float = 0.6634,
    natoms: float = 5120.0,
    p_min: int = 64,
    p_max: int = 256,
) -> DCMeshStepModel:
    """Fit ``fixed_step_overhead`` to the strong-scaling anchor point.

    Solves eta = [t(p_min)/t(p_max)] / (p_max/p_min) for the fixed
    per-step overhead F, with t(P) = k(P) C + F + comm(P) and
    k(P) = natoms / (P * atoms_per_domain).
    """
    if not (0.0 < target_efficiency <= 1.0):
        raise ValueError("target efficiency must be in (0, 1]")
    base = replace(model, fixed_step_overhead=0.0, jitter=0.0)
    m_min = base.with_atoms_per_rank(natoms / p_min)
    m_max = base.with_atoms_per_rank(natoms / p_max)
    t_min0 = m_min.step_time(p_min)
    t_max0 = m_max.step_time(p_max)
    ratio = p_max / p_min
    # eta = (t_min0 + F) / (ratio * (t_max0 + F))  =>  solve for F.
    denom = 1.0 - target_efficiency * ratio
    f = (target_efficiency * ratio * t_max0 - t_min0) / denom
    if f < 0.0:
        raise RuntimeError(
            f"model already below the target strong-scaling efficiency "
            f"(would need negative overhead {f:.3g})"
        )
    return replace(model, fixed_step_overhead=float(f))


def calibrated_model(base: DCMeshStepModel | None = None) -> DCMeshStepModel:
    """The fully calibrated Polaris step model (both fitted constants)."""
    model = base if base is not None else DCMeshStepModel()
    model = calibrate_fixed_overhead(model)
    model = calibrate_tree_factor(model)
    model = calibrate_fixed_overhead(model)
    model = calibrate_tree_factor(model)
    return model


def fit_weak_efficiency_law(points: Sequence[ScalingPoint]) -> Tuple[float, float]:
    """Fit 1/eta - 1 = A + beta' log2 P  (the paper's weak-scaling law).

    With constant granularity n, A absorbs alpha n^(-1/3); returns
    (A, beta').
    """
    if len(points) < 2:
        raise ValueError("need at least two points")
    x = np.array([math.log2(p.nranks) for p in points])
    y = np.array([1.0 / p.efficiency - 1.0 for p in points])
    design = np.stack([np.ones_like(x), x], axis=1)
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(coef[0]), float(coef[1])


def fit_strong_efficiency_law(points: Sequence[ScalingPoint]) -> Tuple[float, float]:
    """Fit 1/eta - 1 = alpha (P/N)^(1/3) + beta P log2(P) / N (strong law)."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    x1 = np.array([(p.nranks / p.natoms) ** (1.0 / 3.0) for p in points])
    x2 = np.array([p.nranks * math.log2(p.nranks) / p.natoms for p in points])
    y = np.array([1.0 / p.efficiency - 1.0 for p in points])
    design = np.stack([x1, x2], axis=1)
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(coef[0]), float(coef[1])
