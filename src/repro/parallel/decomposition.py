"""Hybrid space-band decomposition of DC domains over MPI ranks.

The LDC-DFT algorithm distributes work in two dimensions: *space* (DC
domains are spread over rank groups) and *band* (the Kohn-Sham orbitals
of one domain are split within a group).  This module computes and
validates such mappings; the scaling studies use them to derive per-rank
workloads and communication partners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class RankAssignment:
    """The work owned by one rank."""

    rank: int
    space_group: int
    band_group: int
    domains: Tuple[int, ...]
    band_range: Tuple[int, int]  # half-open orbital interval [lo, hi)

    @property
    def nbands(self) -> int:
        return self.band_range[1] - self.band_range[0]


class SpaceBandDecomposition:
    """Distribute ``ndomains`` domains x ``nbands`` orbitals over P ranks.

    Parameters
    ----------
    ndomains:
        Total DC domains.
    nbands:
        Orbitals per domain.
    p_space:
        Ranks along the spatial axis (domains are block-distributed over
        these groups).
    p_band:
        Ranks along the band axis (orbitals of each domain are
        block-distributed within a spatial group).  ``p_space * p_band``
        is the world size.
    """

    def __init__(self, ndomains: int, nbands: int, p_space: int, p_band: int = 1) -> None:
        if min(ndomains, nbands, p_space, p_band) < 1:
            raise ValueError("all decomposition sizes must be positive")
        if p_space > ndomains:
            raise ValueError(
                f"more spatial groups ({p_space}) than domains ({ndomains})"
            )
        if p_band > nbands:
            raise ValueError(f"more band groups ({p_band}) than bands ({nbands})")
        self.ndomains = ndomains
        self.nbands = nbands
        self.p_space = p_space
        self.p_band = p_band

    @property
    def nranks(self) -> int:
        return self.p_space * self.p_band

    @staticmethod
    def _block_range(total: int, parts: int, idx: int) -> Tuple[int, int]:
        """Contiguous block [lo, hi) of part ``idx`` out of ``parts``."""
        base, rem = divmod(total, parts)
        lo = idx * base + min(idx, rem)
        hi = lo + base + (1 if idx < rem else 0)
        return lo, hi

    def assignment(self, rank: int) -> RankAssignment:
        """The domains and band range owned by ``rank``."""
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        space_group, band_group = divmod(rank, self.p_band)
        d_lo, d_hi = self._block_range(self.ndomains, self.p_space, space_group)
        b_lo, b_hi = self._block_range(self.nbands, self.p_band, band_group)
        return RankAssignment(
            rank=rank,
            space_group=space_group,
            band_group=band_group,
            domains=tuple(range(d_lo, d_hi)),
            band_range=(b_lo, b_hi),
        )

    def all_assignments(self) -> List[RankAssignment]:
        """Assignments for every rank, in rank order."""
        return [self.assignment(r) for r in range(self.nranks)]

    def validate(self) -> None:
        """Check the mapping is a partition: every (domain, band) owned once."""
        seen: Dict[Tuple[int, int], int] = {}
        for a in self.all_assignments():
            for d in a.domains:
                for b in range(*a.band_range):
                    key = (d, b)
                    if key in seen:
                        raise AssertionError(
                            f"(domain {d}, band {b}) owned by ranks {seen[key]} and {a.rank}"
                        )
                    seen[key] = a.rank
        expected = self.ndomains * self.nbands
        if len(seen) != expected:
            raise AssertionError(
                f"covered {len(seen)} (domain, band) pairs, expected {expected}"
            )

    def max_domains_per_rank(self) -> int:
        """Load-balance metric: the largest spatial share."""
        return max(len(a.domains) for a in self.all_assignments())

    def band_partners(self, rank: int) -> List[int]:
        """Ranks sharing this rank's domains (the band-reduction group)."""
        a = self.assignment(rank)
        return [
            a.space_group * self.p_band + g for g in range(self.p_band) if
            a.space_group * self.p_band + g != rank
        ]
