"""Alpha-beta network cost model for Slingshot and NVLink.

Polaris (Section IV): Slingshot 11 with 200 GB/s node-injection bandwidth
shared by 4 ranks, dragonfly topology of high-radix 64-port switches;
NVLink connects the 4 A100s of a node at 600 GB/s aggregate.  Collective
costs use standard algorithm models (binomial-tree broadcast,
Rabenseifner all-reduce).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Per-rank alpha-beta parameters of one interconnect tier.

    Attributes
    ----------
    alpha:
        Per-message latency (s).
    beta:
        Inverse bandwidth per rank (s/byte).
    hop_latency:
        Additional latency per switch hop (dragonfly: 1 hop within a
        group, up to 3 across groups).
    """

    name: str
    alpha: float
    beta: float
    hop_latency: float = 0.0


#: Slingshot 11: 200 GB/s per node shared by 4 ranks => 50 GB/s per rank.
SLINGSHOT = NetworkSpec(
    name="Slingshot 11 (dragonfly)",
    alpha=2.0e-6,
    beta=1.0 / 50e9,
    hop_latency=0.3e-6,
)

#: NVLink on the A100 HGX board: 600 GB/s aggregate / 4 peers.
NVLINK_NET = NetworkSpec(
    name="NVLink (intra-node)",
    alpha=1.0e-6,
    beta=1.0 / 150e9,
)


def dragonfly_hops(node_a: int, node_b: int, nodes_per_group: int = 16) -> int:
    """Switch hops between two nodes in a dragonfly (minimal routing).

    Same node: 0; same group: 1 (one switch); different groups: 3
    (local, global, local).
    """
    if node_a == node_b:
        return 0
    if node_a // nodes_per_group == node_b // nodes_per_group:
        return 1
    return 3


def point_to_point_time(nbytes: float, net: NetworkSpec, hops: int = 1) -> float:
    """One message of ``nbytes`` over ``hops`` switch hops."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return net.alpha + hops * net.hop_latency + nbytes * net.beta


def bcast_time(nbytes: float, nranks: int, net: NetworkSpec) -> float:
    """Binomial-tree broadcast."""
    if nranks < 2:
        return 0.0
    stages = math.ceil(math.log2(nranks))
    return stages * (net.alpha + nbytes * net.beta)


def allreduce_time(nbytes: float, nranks: int, net: NetworkSpec) -> float:
    """Rabenseifner all-reduce: 2 log2(P) latency + 2 (P-1)/P bandwidth terms."""
    if nranks < 2:
        return 0.0
    stages = math.ceil(math.log2(nranks))
    return 2.0 * stages * net.alpha + 2.0 * (nranks - 1) / nranks * nbytes * net.beta


def tree_reduce_time(nbytes: float, nranks: int, net: NetworkSpec) -> float:
    """One-way reduction tree (the multigrid coarse-level gather)."""
    if nranks < 2:
        return 0.0
    stages = math.ceil(math.log2(nranks))
    return stages * (net.alpha + nbytes * net.beta)


def halo_exchange_time(
    face_bytes: float, net: NetworkSpec, nneighbors: int = 6
) -> float:
    """Nearest-neighbour halo exchange (6 faces, overlapping pairs)."""
    if face_bytes < 0:
        raise ValueError("face_bytes must be non-negative")
    # Sends proceed pairwise in 3 phases (one per axis), 2 faces per phase.
    phases = max(1, nneighbors // 2)
    return phases * (net.alpha + 2.0 * face_bytes * net.beta)
