"""Distributed (SPMD) global-local SCF over the simulated communicator.

The paper's QXMD subprogram solves the DC-DFT global-local SCF across
MPI ranks (Fig. 1b).  :class:`DistributedDCSolver` runs the identical
algorithm as :class:`repro.qxmd.dftsolver.GlobalDCSolver`, but with the
domains block-distributed over SimComm ranks:

* each rank refines only its own domains (locally dense);
* the global electron density is assembled with one ``allreduce`` of the
  rank-partial core contributions (exact, cores are disjoint);
* the global potential is produced on the root rank (one O(N) multigrid
  solve) and broadcast (globally sparse).

Because SimComm collectives are numerically exact and the per-domain
seeds are rank-independent, the distributed result is **bit-identical**
to the serial solver for any rank count -- which the tests assert.  When
a network model and timeline are attached, the run also produces the
communication profile used by the scaling studies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.grids.domain import DomainDecomposition
from repro.grids.grid import Grid3D
from repro.multigrid.poisson import PoissonMultigrid
from repro.parallel.comm import SimComm
from repro.parallel.decomposition import SpaceBandDecomposition
from repro.parallel.network import NetworkSpec
from repro.parallel.timeline import RankTimeline
from repro.pseudo.elements import PseudoSpecies
from repro.pseudo.local import core_repulsion_potential, ionic_density
from repro.qxmd.dftsolver import DCResult, GlobalDCSolver, _domain_refine_task
from repro.qxmd.hartree import hartree_potential
from repro.qxmd.xc import lda_exchange_correlation


class DistributedDCSolver:
    """Rank-decomposed global-local SCF (numerically identical to serial).

    Parameters match :class:`GlobalDCSolver` plus the world size,
    optional network/timeline instrumentation, and an optional
    :class:`repro.parallel.executor.DomainExecutor` that runs the
    per-(rank, domain) refinements (``SimComm`` stays the cost model and
    collective semantics; the executor is the physical compute
    substrate).
    """

    def __init__(
        self,
        grid: Grid3D,
        decomposition: DomainDecomposition,
        positions: np.ndarray,
        species: Sequence[PseudoSpecies],
        nranks: int,
        norb_extra: int = 2,
        nscf: int = 3,
        ncg: int = 3,
        mixing: float = 0.4,
        include_nonlocal: bool = True,
        seed: int = 1234,
        network: Optional[NetworkSpec] = None,
        timeline: Optional[RankTimeline] = None,
        executor=None,
    ) -> None:
        if nranks < 1:
            raise ValueError("nranks must be positive")
        if nranks > len(decomposition):
            raise ValueError(
                f"{nranks} ranks but only {len(decomposition)} domains"
            )
        # Reuse the serial solver for all single-domain machinery so the
        # distributed path cannot drift from the serial algorithm.
        self._serial = GlobalDCSolver(
            grid, decomposition, positions, species,
            norb_extra=norb_extra, nscf=nscf, ncg=ncg, mixing=mixing,
            include_nonlocal=include_nonlocal, seed=seed,
        )
        self.grid = grid
        self.decomposition = decomposition
        self.nranks = nranks
        self.comm = SimComm(nranks, network=network, timeline=timeline)
        self.layout = SpaceBandDecomposition(
            ndomains=len(decomposition), nbands=1, p_space=nranks, p_band=1
        )
        self.timeline = timeline
        self.executor = executor

    def _executor(self):
        """The configured executor, defaulting to a fresh serial backend."""
        if self.executor is None:
            from repro.parallel.backends.serial import SerialBackend

            self.executor = SerialBackend(seed=self._serial.seed)
        return self.executor

    # ------------------------------------------------------------------ #
    def solve(self) -> DCResult:
        """Run the rank-decomposed global-local SCF (see class doc)."""
        serial = self._serial
        grid = self.grid
        rho_ion = ionic_density(grid, serial.positions, serial.species)
        v_core = core_repulsion_potential(grid, serial.positions, serial.species)
        nelec_total = sum(sp.zval for sp in serial.species)

        # Every rank sets up only its own domains.
        rank_domains: List[List[int]] = [
            list(self.layout.assignment(r).domains) for r in range(self.nranks)
        ]
        states_by_rank = [
            [
                serial._domain_setup(self.decomposition[alpha],
                                     serial.owners[alpha])
                for alpha in doms
            ]
            for doms in rank_domains
        ]

        rho_e = rho_ion * (nelec_total / (float(rho_ion.sum()) * grid.dvol))
        v_global = grid.zeros()
        history: List[float] = []
        poisson = PoissonMultigrid(grid)

        for it in range(serial.nscf):
            # --- global phase on the root rank, then broadcast. ---------
            phi = hartree_potential(
                rho_ion - rho_e, grid, method="multigrid", solver=poisson
            )
            v_xc, _ = lda_exchange_correlation(rho_e)
            v_new = -phi + v_xc + v_core
            v_global = (
                v_new if it == 0
                else (1.0 - serial.mixing) * v_global + serial.mixing * v_new
            )
            v_everywhere = self.comm.bcast(v_global, root=0)

            # --- local phase: every rank refines its own domains, the
            #     (rank, domain) task list running on the executor. ------
            items = []
            for r in range(self.nranks):
                for st in states_by_rank[r]:
                    items.append(
                        (st.domain, st.wf.psi, st.occupations, st.kb,
                         v_everywhere[r], serial.ncg, serial.seed)
                    )
            results = self._executor().map(
                _domain_refine_task, items, label="scf.rank_domains"
            )
            partials = [grid.zeros() for _ in range(self.nranks)]
            band_sums = [0.0] * self.nranks
            idx = 0
            for r in range(self.nranks):
                for st in states_by_rank[r]:
                    psi, eig, vloc, rho = results[idx]
                    idx += 1
                    if psi is not st.wf.psi:
                        st.wf.psi[...] = psi
                    st.eigenvalues = eig
                    st.vloc = vloc
                    st.domain.add_core(rho, partials[r])
                    band_sums[r] += float(np.dot(st.occupations, eig))

            # --- recombine: disjoint cores, exact allreduce. -------------
            rho_new = self.comm.allreduce(partials)[0]
            total = float(rho_new.sum()) * grid.dvol
            if total > 0:
                rho_new *= nelec_total / total
            rho_e = rho_new
            history.append(float(self.comm.allreduce(band_sums)[0]))
            if self.timeline is not None:
                self.timeline.barrier()

        # Gather the domain states back in global domain order.
        flat = [None] * len(self.decomposition)
        for r, doms in enumerate(rank_domains):
            for st in states_by_rank[r]:
                flat[st.domain.alpha] = st
        return DCResult(
            states=list(flat),
            rho_global=rho_e,
            v_global=v_global,
            energy_history=history,
        )
