"""The Polaris machine model (ALCF, Section IV of the paper).

560 HPE Apollo 6500 Gen10+ nodes; per node one 32-core AMD EPYC Milan
7543P, four Nvidia A100s on an HGX board (NVLink 600 GB/s), two Slingshot
endpoints (200 GB/s node injection).  DC-MESH runs 4 MPI ranks per node,
one GPU per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.device.spec import A100, EPYC_7543_CORE, DeviceSpec
from repro.parallel.network import NVLINK_NET, SLINGSHOT, NetworkSpec, dragonfly_hops


@dataclass(frozen=True)
class PolarisModel:
    """Topology and hardware of a Polaris allocation.

    Parameters
    ----------
    nnodes:
        Number of allocated nodes (<= 560).
    ranks_per_node:
        MPI ranks per node (the paper uses 4, one per GPU).
    """

    nnodes: int
    ranks_per_node: int = 4
    nodes_per_group: int = 16
    gpu: DeviceSpec = A100
    cpu_core: DeviceSpec = EPYC_7543_CORE
    inter_node: NetworkSpec = SLINGSHOT
    intra_node: NetworkSpec = NVLINK_NET

    MAX_NODES = 560

    def __post_init__(self) -> None:
        if not (1 <= self.nnodes <= self.MAX_NODES):
            raise ValueError(f"Polaris has 1..{self.MAX_NODES} nodes, got {self.nnodes}")
        if self.ranks_per_node < 1 or self.ranks_per_node > 4:
            raise ValueError("Polaris runs 1..4 ranks per node (one GPU each)")

    @classmethod
    def for_ranks(cls, nranks: int, ranks_per_node: int = 4) -> "PolarisModel":
        """Smallest allocation hosting ``nranks`` ranks."""
        nnodes = (nranks + ranks_per_node - 1) // ranks_per_node
        return cls(nnodes=nnodes, ranks_per_node=ranks_per_node)

    @property
    def nranks(self) -> int:
        return self.nnodes * self.ranks_per_node

    @property
    def ngpus(self) -> int:
        return self.nranks

    def node_of(self, rank: int) -> int:
        """Node index hosting a rank."""
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range")
        return rank // self.ranks_per_node

    def gpu_of(self, rank: int) -> Tuple[int, int]:
        """(node, local GPU index) of a rank."""
        return self.node_of(rank), rank % self.ranks_per_node

    def link_between(self, rank_a: int, rank_b: int) -> NetworkSpec:
        """Interconnect tier between two ranks."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_node
        return self.inter_node

    def hops_between(self, rank_a: int, rank_b: int) -> int:
        """Dragonfly switch hops between two ranks' nodes."""
        return dragonfly_hops(
            self.node_of(rank_a), self.node_of(rank_b), self.nodes_per_group
        )

    def peak_flops_dp(self) -> float:
        """Aggregate DP peak of the allocation (GPUs + CPU cores)."""
        per_node = self.ranks_per_node * self.gpu.peak_flops_dp + 32 * self.cpu_core.peak_flops_dp
        return self.nnodes * per_node


@dataclass(frozen=True)
class AuroraModel:
    """The Aurora machine model (ALCF) -- the paper's conclusion notes the
    DC-MESH port to Aurora 'to be presented elsewhere'; this model makes
    that forward prediction reproducible.

    Each node: 6 Intel Max 1550 GPUs, 2 Xeon Max 9470 CPUs, 8 Slingshot
    NICs.  DC-MESH maps one MPI rank per GPU (6 ranks/node).
    """

    nnodes: int
    ranks_per_node: int = 6
    nodes_per_group: int = 16
    gpu: DeviceSpec = None  # set in __post_init__ (frozen dataclass)
    cpu_core: DeviceSpec = None
    inter_node: NetworkSpec = SLINGSHOT
    intra_node: NetworkSpec = NVLINK_NET  # Xe-Link, comparable tier

    MAX_NODES = 10624

    def __post_init__(self) -> None:
        from repro.device.spec import PVC_MAX_1550, XEON_MAX_CORE

        if not (1 <= self.nnodes <= self.MAX_NODES):
            raise ValueError(
                f"Aurora has 1..{self.MAX_NODES} nodes, got {self.nnodes}"
            )
        if not (1 <= self.ranks_per_node <= 12):
            raise ValueError("Aurora runs 1..12 ranks per node (tile mode)")
        if self.gpu is None:
            object.__setattr__(self, "gpu", PVC_MAX_1550)
        if self.cpu_core is None:
            object.__setattr__(self, "cpu_core", XEON_MAX_CORE)

    @property
    def nranks(self) -> int:
        return self.nnodes * self.ranks_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting a rank."""
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range")
        return rank // self.ranks_per_node

    def link_between(self, rank_a: int, rank_b: int) -> NetworkSpec:
        """Interconnect tier between two ranks (Xe-Link vs Slingshot)."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_node
        return self.inter_node

    def peak_flops_dp(self) -> float:
        """Aggregate DP peak of the allocation (GPUs + CPU cores)."""
        per_node = (
            self.ranks_per_node * self.gpu.peak_flops_dp
            + 104 * self.cpu_core.peak_flops_dp
        )
        return self.nnodes * per_node
