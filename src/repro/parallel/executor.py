"""Backend-abstracted execution of per-domain work (the DomainExecutor).

The paper's entire scaling story (Figs. 2-3, 96.5% weak-scaling
efficiency) rests on DC domains executing *concurrently*.  This module
defines the narrow contract the DC-MESH hot paths program against:
an order-preserving ``map`` of one picklable task function over
per-domain work items.  Three interchangeable backends implement it
(:mod:`repro.parallel.backends`):

* ``serial`` -- in-process, in-order; bit-identical to the historical
  inline loops and the default everywhere.
* ``thread`` -- a ``concurrent.futures.ThreadPoolExecutor``; wins on
  NumPy-heavy kernels that release the GIL.
* ``process`` -- a spawn-context process pool with
  ``multiprocessing.shared_memory`` transport for large arrays and
  worker-crash retry-on-survivors degradation (escalating to the PR-1
  :class:`~repro.resilience.supervisor.RunSupervisor` via
  :class:`WorkerCrashError` when the crash budget is exhausted).

Equivalence contract (enforced by
``tests/parallel/test_backend_equivalence.py``):

1. ``map(fn, items)`` returns ``[fn(items[0]), fn(items[1]), ...]`` in
   item order, regardless of completion order or worker count.
2. Task functions are **module-level picklable callables** taking one
   argument (a tuple of picklable values) and must return fresh objects,
   never views of their inputs: process workers may hand tasks read-only
   shared-memory views whose lifetime ends with the chunk.
3. Randomness inside a task comes either from seeds carried in the item
   itself (preferred for physics -- placement-independent by
   construction) or from :func:`worker_rng`, which every backend seeds
   identically per ``(executor seed, map call, chunk)`` so worker
   *placement* can never change a random stream.  With the default
   ``chunk_size=1`` the chunk index equals the item index and all three
   backends produce identical streams.

The serial/thread backends run tasks against the caller's live objects,
so in-place task mutations (orbital refinement) need no write-back; the
process backend returns fresh arrays that the caller applies in item
order.  Either way the caller-side apply loop is deterministic, which is
what makes the differential harness a meaningful test.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.resilience.faults import RankFailure

#: The selectable backend names, in increasing isolation order.
BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")


class WorkerCrashError(RankFailure):
    """A process-backend map lost workers beyond its retry budget.

    "Lost" covers both hard crashes (SIGKILL, OOM) and wedged workers
    the heartbeat watchdog terminated -- hangs heal, and escalate,
    exactly like crashes.

    Subclasses :class:`~repro.resilience.faults.RankFailure`, so the
    PR-1 :class:`~repro.resilience.supervisor.RunSupervisor` treats it as
    recoverable: the supervisor restores the newest checkpoint and
    replays the segment while the backend keeps running on the surviving
    workers (retry-on-survivors degradation).  Raised only in the parent
    process, never pickled across a pool boundary.
    """

    def __init__(self, label: str, crashes: int, survivors: int) -> None:
        RuntimeError.__init__(
            self,
            f"process backend lost workers {crashes} time(s) during map "
            f"{label!r}; {survivors} worker(s) surviving",
        )
        self.rank = -1
        self.op = f"executor.map({label!r})"
        self.crashes = int(crashes)
        self.survivors = int(survivors)


_TLS = threading.local()


def set_worker_rng(rng: Optional[np.random.Generator]) -> None:
    """Install the per-task Generator (backend plumbing, not user API).

    Backends call this immediately before running a task (serial/thread)
    or a chunk of tasks (process worker), with a Generator seeded from
    ``SeedSequence((seed, map_index, chunk_index))``.
    """
    _TLS.rng = rng


def worker_rng() -> np.random.Generator:
    """The deterministic Generator of the currently executing task.

    Every backend seeds this identically per (executor seed, map call,
    chunk), so a task drawing from it gets the same stream no matter
    which backend or worker runs it (with the default ``chunk_size=1``).
    Raises ``RuntimeError`` outside a task.
    """
    rng = getattr(_TLS, "rng", None)
    if rng is None:
        raise RuntimeError(
            "worker_rng() is only available inside a task run by "
            "DomainExecutor.map"
        )
    return rng


def chunk_entropy(seed: int, map_index: int, chunk_index: int) -> Tuple[int, int, int]:
    """The SeedSequence entropy key shared by every backend's chunk RNG."""
    return (int(seed), int(map_index), int(chunk_index))


def chunk_rng(seed: int, map_index: int, chunk_index: int) -> np.random.Generator:
    """The deterministic per-chunk Generator (identical across backends)."""
    return np.random.default_rng(
        np.random.SeedSequence(chunk_entropy(seed, map_index, chunk_index))
    )


def chunk_slices(nitems: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Half-open ``[lo, hi)`` chunk boundaries covering ``nitems`` items."""
    if nitems < 0:
        raise ValueError("nitems must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    return [(lo, min(lo + chunk_size, nitems))
            for lo in range(0, nitems, chunk_size)]


def default_workers() -> int:
    """Default worker count: the visible CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


class DomainExecutor:
    """The executor protocol every backend implements.

    Parameters
    ----------
    workers:
        Concurrency of the backend (1 for serial).
    seed:
        Base seed of the :func:`worker_rng` streams; tasks that carry
        their own seeds in the items ignore it entirely.
    """

    #: Backend name as accepted by :func:`make_executor`.
    name: str = "abstract"

    def __init__(self, workers: int = 1, seed: int = 0) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers)
        self.seed = int(seed)
        #: Ordinal of the next map() call; part of the RNG entropy so
        #: consecutive maps draw from distinct (but deterministic) streams.
        self._map_index = 0

    def _next_map_index(self) -> int:
        """Consume and return this call's map ordinal."""
        idx = self._map_index
        self._map_index += 1
        return idx

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        label: str = "tasks",
    ) -> List[Any]:
        """Apply ``fn`` to every item; results in item order."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources (idempotent; executor reusable after)."""

    def __enter__(self) -> "DomainExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the backend down."""
        self.shutdown()


def make_executor(
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    seed: int = 0,
    **kwargs: Any,
) -> DomainExecutor:
    """Build a backend by name (``serial`` / ``thread`` / ``process``).

    ``backend=None`` resolves backend, workers and (for the process
    backend) ``chunk_size`` from the active
    :class:`~repro.tuning.profile.TuningProfile` (the
    ``parallel.executor`` tunable); an explicit backend name leaves the
    caller in full control.  ``workers`` defaults to 1 for serial and
    :func:`default_workers` otherwise; extra keyword arguments
    (``chunk_size``, ``shm_threshold``, ``max_crash_retries``,
    ``hang_timeout``) are forwarded to the process backend.
    """
    if backend is None:
        from repro.tuning.profile import get_active_profile

        params = get_active_profile().params_for("parallel.executor")
        backend = str(params["backend"])
        if workers is None:
            workers = int(params["workers"])  # type: ignore[arg-type]
        if backend == "process":
            kwargs.setdefault("chunk_size", int(params["chunk_size"]))  # type: ignore[arg-type]
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; options: {', '.join(BACKENDS)}"
        )
    # Imported here: the backends subclass DomainExecutor, so importing
    # them at module scope would be circular.
    if backend == "serial":
        from repro.parallel.backends.serial import SerialBackend

        if kwargs:
            raise ValueError(f"serial backend takes no extras: {sorted(kwargs)}")
        return SerialBackend(seed=seed)
    nworkers = workers if workers is not None else default_workers()
    if backend == "thread":
        from repro.parallel.backends.thread import ThreadBackend

        if kwargs:
            raise ValueError(f"thread backend takes no extras: {sorted(kwargs)}")
        return ThreadBackend(workers=nworkers, seed=seed)
    from repro.parallel.backends.process import ProcessBackend

    return ProcessBackend(workers=nworkers, seed=seed, **kwargs)
