"""SimComm: MPI collectives executed serially over real buffers.

Rank-indexed lists play the role of per-rank memory.  Collectives return
exactly what each rank of a real MPI job would hold, so DC-MESH's
global-local SCF recombination can be written SPMD-style and unit-tested
without an MPI runtime.  When a :class:`RankTimeline` is attached, every
call also charges the modeled communication time to every participating
rank.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import trace_span
from repro.parallel.network import NetworkSpec, allreduce_time, bcast_time, point_to_point_time
from repro.parallel.timeline import RankTimeline
from repro.resilience.faults import RankFailure, fault_point


def _nbytes(value: Any) -> int:
    """Approximate payload size of a value (arrays: exact; scalars: 8)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (list, tuple)):
        return sum(_nbytes(v) for v in value)
    return 8


class SimComm:
    """A simulated communicator of ``nranks`` ranks.

    Parameters
    ----------
    nranks:
        World size (must be positive).
    network:
        Optional network spec; with ``timeline`` set, collectives charge
        modeled time.
    timeline:
        Optional per-rank timeline receiving communication costs.
    """

    def __init__(
        self,
        nranks: int,
        network: Optional[NetworkSpec] = None,
        timeline: Optional[RankTimeline] = None,
    ) -> None:
        if nranks < 1:
            raise ValueError("nranks must be positive")
        self.nranks = int(nranks)
        self.network = network
        self.timeline = timeline
        self._mailbox: Dict[Tuple[int, int, int], List[Any]] = {}

    # ------------------------------------------------------------------ #
    def _charge_all(self, t: float, name: str) -> None:
        if self.timeline is not None:
            for r in range(self.nranks):
                self.timeline.add_comm(r, t, name)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")

    def _check_world(self, values: Sequence[Any]) -> None:
        if len(values) != self.nranks:
            raise ValueError(
                f"expected one value per rank ({self.nranks}), got {len(values)}"
            )

    def _maybe_rank_fail(self, op: str) -> None:
        """``comm.rank_fail`` fault site shared by every collective."""
        spec = fault_point("comm.rank_fail")
        if spec is not None:
            raise RankFailure(int(spec.payload.get("rank", 0)), op)

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def bcast(self, value: Any, root: int = 0) -> List[Any]:
        """Broadcast: every rank receives a copy of root's value."""
        with trace_span("comm.bcast", "comm", nranks=self.nranks):
            self._maybe_rank_fail("bcast")
            self._check_rank(root)
            out = []
            for r in range(self.nranks):
                if isinstance(value, np.ndarray):
                    out.append(value if r == root else value.copy())
                else:
                    out.append(value)
            if self.network is not None:
                self._charge_all(bcast_time(_nbytes(value), self.nranks, self.network), "bcast")
            return out

    @staticmethod
    def reduction_schedule(nranks: int) -> Tuple[int, ...]:
        """Rank order in which reductions fold contributions.

        **Reduction-order contract.**  Floating-point addition is not
        associative, so the bitwise result of a reduction depends on the
        order contributions combine.  Real MPI leaves that order
        implementation-defined; :class:`SimComm` pins it so results are
        reproducible and backend-independent: for a given world size the
        fold order is *fixed* -- a linear left-fold in ascending rank
        order ``0, 1, ..., nranks-1``.  Every reduction with the same
        world size and the same per-rank contributions is therefore
        bit-identical, regardless of which executor backend produced the
        contributions or how work was chunked across workers.
        """
        if nranks < 1:
            raise ValueError("nranks must be at least 1")
        return tuple(range(nranks))

    def _ordered_fold(
        self, values: Sequence[Any], op: Callable[[Any, Any], Any]
    ) -> Any:
        """Left-fold the contributions in the pinned schedule order."""
        schedule = self.reduction_schedule(self.nranks)
        total = values[schedule[0]]
        if isinstance(total, np.ndarray):
            total = total.copy()
        for r in schedule[1:]:
            total = op(total, values[r])
        return total

    def allreduce(
        self, values: Sequence[Any], op: Callable[[Any, Any], Any] = np.add
    ) -> List[Any]:
        """All-reduce: every rank receives op-reduction of all contributions.

        The fold order is pinned by :meth:`reduction_schedule`, so for a
        fixed world size the result is bit-identical run to run.  Each
        rank's returned array is an independent copy.
        """
        with trace_span("comm.allreduce", "comm", nranks=self.nranks):
            self._maybe_rank_fail("allreduce")
            self._check_world(values)
            total = self._ordered_fold(values, op)
            out = [total.copy() if isinstance(total, np.ndarray) else total
                   for _ in range(self.nranks)]
            if self.network is not None:
                self._charge_all(
                    allreduce_time(_nbytes(values[0]), self.nranks, self.network), "allreduce"
                )
            return out

    def reduce(
        self, values: Sequence[Any], root: int = 0,
        op: Callable[[Any, Any], Any] = np.add,
    ) -> Any:
        """Reduce to root; other ranks conceptually receive None.

        Uses the same pinned fold order as :meth:`allreduce` (see
        :meth:`reduction_schedule`), so ``reduce`` and ``allreduce`` of
        the same contributions agree bitwise.
        """
        with trace_span("comm.reduce", "comm", nranks=self.nranks):
            self._maybe_rank_fail("reduce")
            self._check_world(values)
            self._check_rank(root)
            total = self._ordered_fold(values, op)
            if self.network is not None:
                self._charge_all(
                    allreduce_time(_nbytes(values[0]), self.nranks, self.network) / 2.0,
                    "reduce",
                )
            return total

    def gather(self, values: Sequence[Any], root: int = 0) -> List[Any]:
        """Gather every rank's value to root (returned as a list)."""
        with trace_span("comm.gather", "comm", nranks=self.nranks):
            self._maybe_rank_fail("gather")
            self._check_world(values)
            self._check_rank(root)
            if self.network is not None:
                nb = max(_nbytes(v) for v in values)
                self._charge_all(
                    point_to_point_time(nb, self.network) * np.log2(max(self.nranks, 2)),
                    "gather",
                )
            return list(values)

    def allgather(self, values: Sequence[Any]) -> List[List[Any]]:
        """All-gather: every rank receives the full list."""
        with trace_span("comm.allgather", "comm", nranks=self.nranks):
            self._maybe_rank_fail("allgather")
            self._check_world(values)
            if self.network is not None:
                nb = sum(_nbytes(v) for v in values)
                self._charge_all(
                    allreduce_time(nb, self.nranks, self.network), "allgather"
                )
            return [list(values) for _ in range(self.nranks)]

    def scatter(self, values: Sequence[Any], root: int = 0) -> List[Any]:
        """Scatter a root-resident list, one element per rank."""
        with trace_span("comm.scatter", "comm", nranks=self.nranks):
            self._maybe_rank_fail("scatter")
            self._check_world(values)
            self._check_rank(root)
            if self.network is not None:
                nb = max(_nbytes(v) for v in values)
                self._charge_all(
                    point_to_point_time(nb, self.network) * np.log2(max(self.nranks, 2)),
                    "scatter",
                )
            return list(values)

    def alltoall(self, matrix: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """All-to-all: matrix[src][dst] -> result[dst][src]."""
        with trace_span("comm.alltoall", "comm", nranks=self.nranks):
            self._maybe_rank_fail("alltoall")
            self._check_world(matrix)
            for row in matrix:
                self._check_world(row)
            out = [[matrix[src][dst] for src in range(self.nranks)]
                   for dst in range(self.nranks)]
            if self.network is not None:
                nb = max(_nbytes(v) for row in matrix for v in row)
                self._charge_all(
                    point_to_point_time(nb, self.network) * (self.nranks - 1), "alltoall"
                )
            return out

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send(self, value: Any, src: int, dst: int, tag: int = 0) -> None:
        """Post a message from src to dst (buffered, FIFO per (src,dst,tag))."""
        with trace_span("comm.send", "comm", nranks=self.nranks):
            self._check_rank(src)
            self._check_rank(dst)
            if fault_point("comm.drop") is not None:
                return  # message lost in flight; recv will fail loudly
            copies = 2 if fault_point("comm.dup") is not None else 1
            for _ in range(copies):
                self._mailbox.setdefault((src, dst, tag), []).append(value)
            if self.network is not None and self.timeline is not None:
                t = point_to_point_time(_nbytes(value), self.network)
                self.timeline.add_comm(src, t, "send")
                self.timeline.add_comm(dst, t, "recv")

    def recv(self, src: int, dst: int, tag: int = 0) -> Any:
        """Receive the oldest pending message for (src, dst, tag)."""
        with trace_span("comm.recv", "comm", nranks=self.nranks):
            key = (src, dst, tag)
            queue = self._mailbox.get(key)
            if not queue:
                raise RuntimeError(f"no pending message for src={src} dst={dst} tag={tag}")
            return queue.pop(0)

    def pending(self) -> int:
        """Number of posted-but-unreceived messages (should be 0 at barrier)."""
        return sum(len(q) for q in self._mailbox.values())

    def barrier(self) -> None:
        """Barrier; raises if messages are still in flight."""
        with trace_span("comm.barrier", "comm", nranks=self.nranks):
            if self.pending():
                raise RuntimeError(f"barrier with {self.pending()} undelivered messages")
            if self.timeline is not None:
                self.timeline.barrier()
