"""Simulated MPI and the Polaris machine model.

The paper's scaling studies run up to 1,024 MPI ranks on Polaris.  This
package provides (i) :class:`SimComm`, a rank-faithful serial executor of
MPI collectives over real NumPy buffers (results are numerically
identical to a real MPI run), and (ii) an event-driven performance model
of Polaris (4 A100 GPUs per node, NVLink intra-node, Slingshot dragonfly
inter-node) that turns per-rank kernel times plus modeled communication
into the weak/strong-scaling efficiencies of Figs. 2-3.
"""

from repro.parallel.comm import SimComm
from repro.parallel.executor import (
    BACKENDS,
    DomainExecutor,
    WorkerCrashError,
    make_executor,
    worker_rng,
)
from repro.parallel.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.parallel.network import (
    NetworkSpec,
    SLINGSHOT,
    NVLINK_NET,
    allreduce_time,
    bcast_time,
    point_to_point_time,
    tree_reduce_time,
)
from repro.parallel.cluster import PolarisModel
from repro.parallel.timeline import RankTimeline
from repro.parallel.decomposition import SpaceBandDecomposition
from repro.parallel.distributed import DistributedDCSolver
from repro.parallel.scaling import (
    DCMeshStepModel,
    ScalingPoint,
    weak_scaling_study,
    strong_scaling_study,
    fit_weak_efficiency_law,
    fit_strong_efficiency_law,
)

__all__ = [
    "SimComm",
    "BACKENDS",
    "DomainExecutor",
    "WorkerCrashError",
    "make_executor",
    "worker_rng",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "NetworkSpec",
    "SLINGSHOT",
    "NVLINK_NET",
    "allreduce_time",
    "bcast_time",
    "point_to_point_time",
    "tree_reduce_time",
    "PolarisModel",
    "RankTimeline",
    "SpaceBandDecomposition",
    "DistributedDCSolver",
    "DCMeshStepModel",
    "ScalingPoint",
    "weak_scaling_study",
    "strong_scaling_study",
    "fit_weak_efficiency_law",
    "fit_strong_efficiency_law",
]
