"""Shared-memory array transport for the process backend.

Pickling a wavefunction block through a pool pipe copies it twice
(serialize + deserialize) per task.  Instead, the parent copies each
large array once into a named ``multiprocessing.shared_memory`` segment
and ships a tiny :class:`ShmArrayRef`; workers attach the segment and
hand the task a zero-copy **read-only** view.  Arrays appearing in many
items (the broadcast global potential) are deduplicated by object
identity, so they cross the process boundary exactly once per map call.

Lifetime protocol:

* the parent owns the segments: it creates them before dispatch and
  closes + unlinks them when the map call ends (:class:`ShmSession`);
* workers attach per chunk via :func:`attached` and close when the chunk
  ends -- so tasks must never return views of their inputs;
* tasks that mutate an input must copy it first (the views are marked
  non-writeable precisely so a forgotten copy fails loudly instead of
  silently diverging between backends).

On Python < 3.13 every ``SharedMemory`` attach registers with the
``resource_tracker`` even for non-owning handles (bpo-39959).  Spawned
pool workers inherit the parent's tracker process, whose name cache is a
set, so the re-registration is idempotent and the parent's unlink is the
single cleanup point; workers must NOT unregister their handles, or they
would strip the parent's own entry from the shared tracker.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

#: Arrays at least this large (bytes) travel via shared memory by default.
DEFAULT_SHM_THRESHOLD = 32768


@dataclass(frozen=True)
class ShmArrayRef:
    """A picklable pointer to an ndarray living in a named shm segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class ShmSession:
    """Parent-side owner of the segments backing one executor map call."""

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._by_id: Dict[int, ShmArrayRef] = {}

    @property
    def nsegments(self) -> int:
        """Number of live segments created by this session."""
        return len(self._segments)

    def share(self, arr: np.ndarray) -> ShmArrayRef:
        """Copy one array into a fresh segment (deduplicated by identity)."""
        ref = self._by_id.get(id(arr))
        if ref is not None:
            return ref
        data = np.ascontiguousarray(arr)
        seg = shared_memory.SharedMemory(create=True, size=data.nbytes)
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
        view[...] = data
        ref = ShmArrayRef(name=seg.name, shape=tuple(data.shape),
                          dtype=np.dtype(data.dtype).str)
        self._segments.append(seg)
        self._by_id[id(arr)] = ref
        return ref

    def pack(self, item: Any, threshold: int = DEFAULT_SHM_THRESHOLD) -> Any:
        """Replace large arrays in a (possibly nested) tuple/list by refs.

        Only tuples and lists are descended; arrays buried inside other
        objects (projector sets, dataclasses) are left for pickle, which
        is the right trade for small per-domain payloads.
        """
        if isinstance(item, np.ndarray):
            if threshold > 0 and item.nbytes >= threshold:
                return self.share(item)
            return item
        if isinstance(item, tuple):
            return tuple(self.pack(v, threshold) for v in item)
        if isinstance(item, list):
            return [self.pack(v, threshold) for v in item]
        return item

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        for seg in self._segments:
            seg.close()
            seg.unlink()
        self._segments.clear()
        self._by_id.clear()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach a non-owning handle to a parent-created segment.

    The attach re-registers the name with the (shared, inherited)
    resource tracker; that is idempotent and must not be undone here --
    the parent's unlink performs the one true unregister.
    """
    return shared_memory.SharedMemory(name=name)


def _resolve(
    item: Any,
    handles: Dict[str, shared_memory.SharedMemory],
) -> Any:
    """Inverse of :meth:`ShmSession.pack`: refs become read-only views."""
    if isinstance(item, ShmArrayRef):
        seg = handles.get(item.name)
        if seg is None:
            seg = _attach(item.name)
            handles[item.name] = seg
        view: np.ndarray = np.ndarray(
            item.shape, dtype=np.dtype(item.dtype), buffer=seg.buf
        )
        view.flags.writeable = False
        return view
    if isinstance(item, tuple):
        return tuple(_resolve(v, handles) for v in item)
    if isinstance(item, list):
        return [_resolve(v, handles) for v in item]
    return item


@contextmanager
def attached(packed: Any) -> Iterator[Any]:
    """Worker-side scope: packed payload in, resolved payload out.

    Segments stay attached for the whole ``with`` body and are closed on
    exit -- which is why tasks must not return views of their inputs.
    """
    handles: Dict[str, shared_memory.SharedMemory] = {}
    try:
        yield _resolve(packed, handles)
    finally:
        for seg in handles.values():
            seg.close()
