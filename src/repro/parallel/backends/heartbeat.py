"""Shared-memory heartbeat board for hang detection in the process pool.

One float64 slot per dispatched chunk, living in a named
``multiprocessing.shared_memory`` segment.  A worker writes
``time.monotonic()`` into its chunk's slot when the chunk starts and
again after every task; the parent-side watchdog scans the board and
declares a chunk *stalled* when its slot has started (non-zero) but has
not advanced for longer than ``hang_timeout``.

``CLOCK_MONOTONIC`` is system-wide on the POSIX platforms the process
backend targets, so parent and worker timestamps are directly
comparable.  Slot writes are aligned 8-byte stores -- atomic on every
platform NumPy supports -- so the watchdog can read without locking;
the worst a racing read could see is one fresh-vs-stale misjudgement
that the next poll corrects.

Lifetime mirrors :class:`~repro.parallel.backends.shm.ShmSession`: the
parent creates and unlinks the segment per map call; workers attach per
chunk and only close (see the bpo-39959 note in ``shm.py`` -- workers
must never unregister the parent's segment).
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory
from typing import Iterable, List

_SLOT = struct.Struct("d")


class HeartbeatBoard:
    """Parent-owned shared-memory array of per-chunk heartbeat stamps."""

    def __init__(self, seg: shared_memory.SharedMemory, nslots: int,
                 owner: bool) -> None:
        self._seg = seg
        self.nslots = int(nslots)
        self._owner = owner

    @property
    def name(self) -> str:
        """The shm segment name workers attach by."""
        return self._seg.name

    @classmethod
    def create(cls, nslots: int) -> "HeartbeatBoard":
        """Parent side: allocate a zeroed board of ``nslots`` stamps."""
        if nslots < 1:
            raise ValueError("nslots must be at least 1")
        seg = shared_memory.SharedMemory(
            create=True, size=nslots * _SLOT.size
        )
        seg.buf[:] = bytes(nslots * _SLOT.size)
        return cls(seg, nslots, owner=True)

    @classmethod
    def attach(cls, name: str, nslots: int) -> "HeartbeatBoard":
        """Worker side: attach an existing board by segment name."""
        return cls(shared_memory.SharedMemory(name=name), nslots, owner=False)

    def beat(self, slot: int) -> None:
        """Stamp ``slot`` with the current monotonic time."""
        _SLOT.pack_into(self._seg.buf, slot * _SLOT.size, time.monotonic())

    def read(self, slot: int) -> float:
        """The last stamp of ``slot`` (0.0 = never started)."""
        return float(_SLOT.unpack_from(self._seg.buf, slot * _SLOT.size)[0])

    def clear(self, slot: int) -> None:
        """Reset ``slot`` to the never-started state.

        The parent clears a chunk's slot before *re*-submitting it after
        a pool break; a stale stamp from the killed round would otherwise
        read as an instant hang.
        """
        _SLOT.pack_into(self._seg.buf, slot * _SLOT.size, 0.0)

    def stalled_slots(
        self, candidates: Iterable[int], hang_timeout: float
    ) -> List[int]:
        """Candidate slots that started but have not beaten recently.

        A slot that never started (stamp 0.0) is *queued*, not stalled --
        its chunk is waiting behind others in the pool's FIFO call queue
        and killing workers for it would be wrong.
        """
        now = time.monotonic()
        out: List[int] = []
        for slot in candidates:
            stamp = self.read(slot)
            if stamp > 0.0 and now - stamp > hang_timeout:
                out.append(slot)
        return out

    def close(self) -> None:
        """Detach (worker side) or detach + unlink (parent side)."""
        self._seg.close()
        if self._owner:
            try:
                self._seg.unlink()
            except FileNotFoundError:  # already unlinked (double close)
                pass
