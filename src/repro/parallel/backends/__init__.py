"""The three DomainExecutor backends (serial / thread / process).

Every backend honors the :mod:`repro.parallel.executor` contract:
order-preserving ``map``, per-chunk deterministic :func:`worker_rng`
seeding, and a ``trace_span("executor.map", "comm", ...)`` around every
dispatch.  ``SerialBackend`` is the default everywhere and bit-identical
to the historical inline loops.
"""

from repro.parallel.backends.process import ProcessBackend
from repro.parallel.backends.serial import SerialBackend
from repro.parallel.backends.thread import ThreadBackend

__all__ = ["SerialBackend", "ThreadBackend", "ProcessBackend"]
