"""ProcessBackend: spawn-context pool with shm transport and crash healing.

The closest stand-in for the paper's one-rank-per-GPU deployment that a
single host can offer: each worker is a separate interpreter (spawn
context, so no inherited state), large arrays travel through
``multiprocessing.shared_memory`` (:mod:`repro.parallel.backends.shm`),
and work is dispatched in deterministic chunks whose results the caller
applies in item order.

Crash handling is *retry-on-survivors*: a worker dying mid-map (real
crash, OOM kill, or the ``executor.worker_crash`` fault site) breaks the
pool; the backend keeps the chunks that already finished, rebuilds the
pool with one fewer worker, and resubmits only the unfinished chunks.
After ``max_crash_retries`` consecutive pool losses in one map call it
raises :class:`~repro.parallel.executor.WorkerCrashError`, which the
PR-1 RunSupervisor treats as a recoverable rank failure (restore the
newest checkpoint, replay the segment on whatever workers survive).

Observability caveat: worker processes carry the null tracer, so
per-kernel spans inside tasks are not recorded; the parent-side
``executor.map`` span absorbs the whole dispatch wall time.
"""

from __future__ import annotations

import os
import signal
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs import trace_span
from repro.parallel.backends.shm import (
    DEFAULT_SHM_THRESHOLD,
    ShmSession,
    attached,
)
from repro.parallel.executor import (
    DomainExecutor,
    WorkerCrashError,
    chunk_rng,
    chunk_slices,
    set_worker_rng,
)
from repro.resilience.faults import fault_point


def _run_chunk(
    fn: Callable[[Any], Any],
    packed_tasks: List[Any],
    entropy: Tuple[int, int, int],
) -> List[Any]:
    """Worker-side chunk body: seed the RNG, attach shm, run the tasks."""
    set_worker_rng(chunk_rng(*entropy))
    try:
        with attached(packed_tasks) as tasks:
            return [fn(t) for t in tasks]
    finally:
        set_worker_rng(None)


def _worker_suicide() -> None:
    """Fault-injection payload: hard-kill the hosting worker (SIGKILL)."""
    os.kill(os.getpid(), signal.SIGKILL)


class ProcessBackend(DomainExecutor):
    """Process-pool execution with shared-memory transport.

    Parameters
    ----------
    workers:
        Pool size at full strength (crashes shrink it, never below 1).
    seed:
        Base seed of the per-chunk worker RNG streams.
    chunk_size:
        Items per dispatched chunk.  The default of 1 keeps the
        ``worker_rng`` streams identical to the serial and thread
        backends; larger chunks amortize dispatch overhead but give each
        chunk one shared stream.
    shm_threshold:
        Minimum array size (bytes) shipped via shared memory; smaller
        arrays ride the pickle path.  0 disables shm entirely.
    max_crash_retries:
        Consecutive pool losses tolerated inside one map call before
        :class:`WorkerCrashError` escalates to the supervisor.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        seed: int = 0,
        chunk_size: int = 1,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        max_crash_retries: int = 2,
    ) -> None:
        super().__init__(workers=workers, seed=seed)
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if shm_threshold < 0:
            raise ValueError("shm_threshold must be non-negative")
        if max_crash_retries < 0:
            raise ValueError("max_crash_retries must be non-negative")
        self.chunk_size = int(chunk_size)
        self.shm_threshold = int(shm_threshold)
        self.max_crash_retries = int(max_crash_retries)
        #: Current pool size after crash degradation (>= 1).
        self.live_workers = self.workers
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Lazily start the spawn-context pool at ``live_workers`` size."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.live_workers,
                mp_context=get_context("spawn"),
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool without waiting on it."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def reset(self) -> None:
        """Restore full strength after degradation (drops the live pool)."""
        self._discard_pool()
        self.live_workers = self.workers

    def shutdown(self) -> None:
        """Terminate the pool; a later map() restarts it lazily."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        label: str = "tasks",
    ) -> List[Any]:
        """Chunked map over the pool; results in item order.

        Raises whatever a task raises (guard errors unpickle cleanly in
        the parent), or :class:`WorkerCrashError` once worker crashes
        exhaust ``max_crash_retries``.
        """
        items = list(items)
        map_index = self._next_map_index()
        with trace_span("executor.map", "comm", backend=self.name,
                        workers=self.live_workers, ntasks=len(items),
                        label=label):
            if not items:
                return []
            session = ShmSession()
            try:
                return self._map_chunks(fn, items, label, map_index, session)
            finally:
                session.close()

    def _map_chunks(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        label: str,
        map_index: int,
        session: ShmSession,
    ) -> List[Any]:
        """Dispatch chunks, healing broken pools on the way."""
        slices = chunk_slices(len(items), self.chunk_size)
        packed = [
            [session.pack(it, self.shm_threshold) for it in items[lo:hi]]
            for lo, hi in slices
        ]
        chunk_results: List[Optional[List[Any]]] = [None] * len(slices)
        pending = list(range(len(slices)))
        crashes = 0
        while pending:
            pool = self._ensure_pool()
            futures: Dict[int, Future] = {}
            for ci in pending:
                spec = fault_point("executor.worker_crash")
                try:
                    futures[ci] = pool.submit(
                        _run_chunk, fn, packed[ci],
                        (self.seed, map_index, ci),
                    )
                    if spec is not None:
                        # Poison every live worker.  The call queue is
                        # FIFO, so chunks dispatched after this point
                        # deterministically fail and get resubmitted.
                        for _ in range(self.live_workers):
                            pool.submit(_worker_suicide)
                except BrokenProcessPool:
                    break  # unsubmitted chunks stay pending for retry
            still_pending: List[int] = []
            for ci in pending:
                fut = futures.get(ci)
                if fut is None:
                    still_pending.append(ci)
                    continue
                try:
                    chunk_results[ci] = fut.result()
                except BrokenProcessPool:
                    still_pending.append(ci)
            pending = still_pending
            if pending:
                crashes += 1
                self._discard_pool()
                self.live_workers = max(1, self.live_workers - 1)
                if crashes > self.max_crash_retries:
                    raise WorkerCrashError(label, crashes, self.live_workers)
        out: List[Any] = []
        for results in chunk_results:
            out.extend(results if results is not None else [])
        return out
