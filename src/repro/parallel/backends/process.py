"""ProcessBackend: spawn-context pool with shm transport, crash healing
and a heartbeat watchdog for wedged workers.

The closest stand-in for the paper's one-rank-per-GPU deployment that a
single host can offer: each worker is a separate interpreter (spawn
context, so no inherited state), large arrays travel through
``multiprocessing.shared_memory`` (:mod:`repro.parallel.backends.shm`),
and work is dispatched in deterministic chunks whose results the caller
applies in item order.

Crash handling is *retry-on-survivors*: a worker dying mid-map (real
crash, OOM kill, or the ``executor.worker_crash`` fault site) breaks the
pool; the backend keeps the chunks that already finished, rebuilds the
pool with one fewer worker, and resubmits only the unfinished chunks.
After ``max_crash_retries`` consecutive pool losses in one map call it
raises :class:`~repro.parallel.executor.WorkerCrashError`, which the
PR-1 RunSupervisor treats as a recoverable rank failure (restore the
newest checkpoint, replay the segment on whatever workers survive).

Hang handling reuses the same path.  With ``hang_timeout`` set, workers
stamp a shared-memory heartbeat board
(:mod:`repro.parallel.backends.heartbeat`) at chunk start and after
every task; a parent-side watchdog thread polls the board and SIGKILLs
the pool the moment any started chunk stops beating for longer than
``hang_timeout``.  The kill surfaces as a broken pool, so a wedged
worker heals exactly like a crashed one -- degraded pool, resubmitted
chunks, :class:`WorkerCrashError` escalation when the budget runs out.
A *slow* worker (the ``executor.slow`` fault site, or a genuinely
overloaded host) keeps beating and is deliberately left alone.  With
``hang_timeout=None`` (the default) no board, no thread and no polling
exist -- the disarmed overhead is gated by ``BENCH_chaos.json``.

Deadline budgets (:mod:`repro.resilience.liveness`) are honoured between
dispatch rounds: an armed :func:`~repro.resilience.liveness.deadline_scope`
turns an over-budget map into a supervisor-recoverable
:class:`~repro.resilience.liveness.DeadlineExceeded` instead of an
unbounded wait.

Observability caveat: worker processes carry the null tracer, so
per-kernel spans inside tasks are not recorded; the parent-side
``executor.map`` span absorbs the whole dispatch wall time, and
watchdog kills emit ``executor.watchdog_kill`` spans.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.obs import trace_span
from repro.parallel.backends.heartbeat import HeartbeatBoard
from repro.parallel.backends.shm import (
    DEFAULT_SHM_THRESHOLD,
    ShmSession,
    attached,
)
from repro.parallel.executor import (
    DomainExecutor,
    WorkerCrashError,
    chunk_rng,
    chunk_slices,
    set_worker_rng,
)
from repro.resilience.faults import fault_point
from repro.resilience.liveness import DeadlineExceeded, check_deadline

#: Worker heartbeat cadence while servicing an injected slow-down.
_SLOW_BEAT_S = 0.05

#: Default wedge duration of the ``executor.hang`` fault site.  Bounded
#: so an armed hang without a watchdog stalls loudly, not forever.
_DEFAULT_HANG_S = 60.0

#: Default lateness of the ``executor.slow`` fault site.
_DEFAULT_SLOW_S = 0.25


def _sleep_beating(board: Optional[HeartbeatBoard], slot: int,
                   seconds: float) -> None:
    """Sleep ``seconds`` while refreshing the heartbeat (a slow, live worker)."""
    end = time.monotonic() + seconds
    while True:
        remaining = end - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(_SLOW_BEAT_S, remaining))
        if board is not None:
            board.beat(slot)


def _run_chunk(
    fn: Callable[[Any], Any],
    packed_tasks: List[Any],
    entropy: Tuple[int, int, int],
    heartbeat: Optional[Tuple[str, int, int]] = None,
    delay: Optional[Tuple[str, float]] = None,
) -> List[Any]:
    """Worker-side chunk body: beat, seed the RNG, attach shm, run tasks.

    ``heartbeat`` is ``(board name, slot, nslots)`` when the watchdog is
    armed.  ``delay`` carries an injected fault: ``("hang", s)`` wedges
    the worker for ``s`` seconds *without* beating (stale heartbeat, the
    watchdog's prey); ``("slow", s)`` sleeps the same way but keeps
    beating (late but alive -- must survive the watchdog).
    """
    board: Optional[HeartbeatBoard] = None
    slot = 0
    try:
        if heartbeat is not None:
            name, slot, nslots = heartbeat
            board = HeartbeatBoard.attach(name, nslots)
            board.beat(slot)
        if delay is not None:
            kind, seconds = delay
            if kind == "hang":
                time.sleep(seconds)  # wedged: no beats until it wakes
            else:
                _sleep_beating(board, slot, seconds)
        set_worker_rng(chunk_rng(*entropy))
        try:
            with attached(packed_tasks) as tasks:
                out: List[Any] = []
                for t in tasks:
                    out.append(fn(t))
                    if board is not None:
                        board.beat(slot)
                return out
        finally:
            set_worker_rng(None)
    finally:
        if board is not None:
            board.close()


def _worker_suicide() -> None:
    """Fault-injection payload: hard-kill the hosting worker (SIGKILL)."""
    os.kill(os.getpid(), signal.SIGKILL)


class _Watchdog(threading.Thread):
    """Parent-side monitor: SIGKILL the pool when a chunk stops beating.

    One watchdog guards one dispatch round.  It polls the heartbeat
    board every ``poll_s``; when any *started, unfinished* chunk has not
    beaten for ``hang_timeout`` seconds it kills every pool process
    (turning the hang into an ordinary broken pool that the crash-heal
    path already handles) and exits.  ``stop()`` always joins with a
    timeout -- the watchdog itself must never become the hang.
    """

    def __init__(
        self,
        pool: ProcessPoolExecutor,
        board: HeartbeatBoard,
        outstanding: Set[int],
        lock: threading.Lock,
        hang_timeout: float,
        poll_s: float,
    ) -> None:
        super().__init__(name="repro-watchdog", daemon=True)
        self._pool = pool
        self._board = board
        self._outstanding = outstanding
        self._lock = lock
        self._hang_timeout = hang_timeout
        self._poll_s = poll_s
        self._stop_event = threading.Event()
        #: Slots the watchdog declared hung (read by the parent after join).
        self.killed_slots: List[int] = []

    def run(self) -> None:
        while not self._stop_event.wait(self._poll_s):
            with self._lock:
                candidates = list(self._outstanding)
            stalled = self._board.stalled_slots(candidates,
                                                self._hang_timeout)
            if stalled:
                self.killed_slots = stalled
                with trace_span("executor.watchdog_kill", "comm",
                                stalled_chunks=len(stalled),
                                hang_timeout_s=self._hang_timeout):
                    _kill_pool_processes(self._pool)
                return

    def stop(self) -> None:
        """Signal and join (bounded -- the watchdog never blocks the parent)."""
        self._stop_event.set()
        self.join(timeout=max(1.0, 4 * self._poll_s))


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every live process of a pool (hang -> broken pool).

    Reaches into ``pool._processes`` (stable since CPython 3.3; guarded
    anyway) because ``shutdown`` only *joins* workers -- a wedged worker
    would never exit and the shutdown itself would hang.
    """
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        pid = getattr(proc, "pid", None)
        if pid is None:
            continue
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            continue


class ProcessBackend(DomainExecutor):
    """Process-pool execution with shared-memory transport.

    Parameters
    ----------
    workers:
        Pool size at full strength (crashes shrink it, never below 1).
    seed:
        Base seed of the per-chunk worker RNG streams.
    chunk_size:
        Items per dispatched chunk.  The default of 1 keeps the
        ``worker_rng`` streams identical to the serial and thread
        backends; larger chunks amortize dispatch overhead but give each
        chunk one shared stream.
    shm_threshold:
        Minimum array size (bytes) shipped via shared memory; smaller
        arrays ride the pickle path.  0 disables shm entirely.
    max_crash_retries:
        Consecutive pool losses tolerated inside one map call before
        :class:`WorkerCrashError` escalates to the supervisor.
    hang_timeout:
        Seconds a started chunk may go without a heartbeat before the
        watchdog declares its worker wedged and kills the pool (healing
        like a crash).  Must comfortably exceed the longest single task.
        ``None`` (default) disarms the watchdog entirely: no heartbeat
        board, no monitor thread, no polling.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        seed: int = 0,
        chunk_size: int = 1,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        max_crash_retries: int = 2,
        hang_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(workers=workers, seed=seed)
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if shm_threshold < 0:
            raise ValueError("shm_threshold must be non-negative")
        if max_crash_retries < 0:
            raise ValueError("max_crash_retries must be non-negative")
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive (or None)")
        self.chunk_size = int(chunk_size)
        self.shm_threshold = int(shm_threshold)
        self.max_crash_retries = int(max_crash_retries)
        self.hang_timeout = (None if hang_timeout is None
                             else float(hang_timeout))
        #: Current pool size after crash degradation (>= 1).
        self.live_workers = self.workers
        #: Wedged workers the watchdog has killed over this backend's life.
        self.hangs_detected = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def _poll_s(self) -> float:
        """Watchdog/gather poll cadence derived from the hang timeout."""
        if self.hang_timeout is None:
            return 0.1
        return min(0.25, max(0.02, self.hang_timeout / 5.0))

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Lazily start the spawn-context pool at ``live_workers`` size."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.live_workers,
                mp_context=get_context("spawn"),
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool without waiting on it."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _abandon_pool(self) -> None:
        """Kill and drop the pool (used when workers may be wedged)."""
        if self._pool is not None:
            _kill_pool_processes(self._pool)
            self._discard_pool()

    def reset(self) -> None:
        """Restore full strength after degradation (drops the live pool)."""
        self._discard_pool()
        self.live_workers = self.workers

    def shutdown(self) -> None:
        """Terminate the pool; a later map() restarts it lazily."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        label: str = "tasks",
    ) -> List[Any]:
        """Chunked map over the pool; results in item order.

        Raises whatever a task raises (guard errors unpickle cleanly in
        the parent), :class:`WorkerCrashError` once worker crashes or
        watchdog-killed hangs exhaust ``max_crash_retries``, or
        :class:`DeadlineExceeded` when an armed deadline scope expires
        mid-map.
        """
        items = list(items)
        map_index = self._next_map_index()
        with trace_span("executor.map", "comm", backend=self.name,
                        workers=self.live_workers, ntasks=len(items),
                        label=label):
            if not items:
                return []
            session = ShmSession()
            board: Optional[HeartbeatBoard] = None
            try:
                nchunks = len(chunk_slices(len(items), self.chunk_size))
                if self.hang_timeout is not None:
                    board = HeartbeatBoard.create(nchunks)
                return self._map_chunks(fn, items, label, map_index,
                                        session, board)
            finally:
                if board is not None:
                    board.close()
                session.close()

    def _submit_round(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable[[Any], Any],
        packed: List[List[Any]],
        pending: List[int],
        map_index: int,
        board: Optional[HeartbeatBoard],
    ) -> Dict[int, "Future[List[Any]]"]:
        """Submit every pending chunk, honouring the executor fault sites."""
        futures: Dict[int, Future[List[Any]]] = {}
        if board is not None:
            # Stale stamps from a killed round would read as instant
            # hangs; resubmitted chunks start over as "queued".
            for ci in pending:
                board.clear(ci)
        for ci in pending:
            crash = fault_point("executor.worker_crash")
            delay: Optional[Tuple[str, float]] = None
            spec = fault_point("executor.hang")
            if spec is not None:
                delay = ("hang",
                         float(spec.payload.get("seconds", _DEFAULT_HANG_S)))
            else:
                spec = fault_point("executor.slow")
                if spec is not None:
                    delay = ("slow", float(
                        spec.payload.get("seconds", _DEFAULT_SLOW_S)))
            heartbeat = (None if board is None
                         else (board.name, ci, board.nslots))
            try:
                futures[ci] = pool.submit(
                    _run_chunk, fn, packed[ci],
                    (self.seed, map_index, ci), heartbeat, delay,
                )
                if crash is not None:
                    # Poison every live worker.  The call queue is
                    # FIFO, so chunks dispatched after this point
                    # deterministically fail and get resubmitted.
                    for _ in range(self.live_workers):
                        pool.submit(_worker_suicide)
            except BrokenProcessPool:
                break  # unsubmitted chunks stay pending for retry
        return futures

    def _gather_round(
        self,
        futures: Dict[int, "Future[List[Any]]"],
        chunk_results: List[Optional[List[Any]]],
        outstanding: Set[int],
        lock: threading.Lock,
        label: str,
    ) -> List[int]:
        """Collect results as they land; returns chunks lost to pool breaks.

        Polls with a bounded timeout so armed deadlines are enforced
        even while every future is stuck behind a wedged worker.
        """
        broken: List[int] = []
        by_future = {fut: ci for ci, fut in futures.items()}
        not_done = set(by_future)
        while not_done:
            check_deadline(f"executor.map({label!r})")
            done, not_done = futures_wait(
                not_done, timeout=self._poll_s,
                return_when=FIRST_COMPLETED,
            )
            for fut in done:
                ci = by_future[fut]
                try:
                    chunk_results[ci] = fut.result(timeout=0)
                except BrokenProcessPool:
                    broken.append(ci)
                finally:
                    with lock:
                        outstanding.discard(ci)
        return broken

    def _map_chunks(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        label: str,
        map_index: int,
        session: ShmSession,
        board: Optional[HeartbeatBoard],
    ) -> List[Any]:
        """Dispatch chunks, healing broken pools (crashes AND hangs)."""
        slices = chunk_slices(len(items), self.chunk_size)
        packed = [
            [session.pack(it, self.shm_threshold) for it in items[lo:hi]]
            for lo, hi in slices
        ]
        chunk_results: List[Optional[List[Any]]] = [None] * len(slices)
        pending = list(range(len(slices)))
        lock = threading.Lock()
        crashes = 0
        while pending:
            pool = self._ensure_pool()
            futures = self._submit_round(pool, fn, packed, pending,
                                         map_index, board)
            outstanding = set(futures)
            watchdog: Optional[_Watchdog] = None
            if board is not None and self.hang_timeout is not None:
                watchdog = _Watchdog(pool, board, outstanding, lock,
                                     self.hang_timeout, self._poll_s)
                watchdog.start()
            try:
                broken = self._gather_round(futures, chunk_results,
                                            outstanding, lock, label)
            except DeadlineExceeded:
                # Workers may be wedged or mid-task; abandon the pool so
                # the supervisor's replay starts from a clean slate.
                if watchdog is not None:
                    watchdog.stop()
                    watchdog = None
                self._abandon_pool()
                raise
            finally:
                if watchdog is not None:
                    watchdog.stop()
                    if watchdog.killed_slots:
                        self.hangs_detected += len(watchdog.killed_slots)
            # Chunks never submitted (submit-time pool break) also retry.
            pending = sorted(set(broken)
                             | (set(pending) - set(futures)))
            if pending:
                crashes += 1
                self._discard_pool()
                self.live_workers = max(1, self.live_workers - 1)
                if crashes > self.max_crash_retries:
                    raise WorkerCrashError(label, crashes, self.live_workers)
        out: List[Any] = []
        for results in chunk_results:
            out.extend(results if results is not None else [])
        return out
