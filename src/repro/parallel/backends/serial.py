"""SerialBackend: in-process, in-order task execution (the default).

Runs every task in the caller's process in submission order, against the
caller's live objects -- the refactored hot paths under this backend are
bit-identical to the historical inline loops (asserted by the golden
trajectory test and the differential equivalence harness).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List

from repro.obs import trace_span
from repro.parallel.executor import DomainExecutor, chunk_rng, set_worker_rng
from repro.resilience.liveness import check_deadline


class SerialBackend(DomainExecutor):
    """In-order serial execution; ``workers`` is fixed at 1."""

    name = "serial"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(workers=1, seed=seed)

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        label: str = "tasks",
    ) -> List[Any]:
        """Apply ``fn`` to every item in order, in the calling thread."""
        items = list(items)
        map_index = self._next_map_index()
        with trace_span("executor.map", "comm", backend=self.name,
                        workers=self.workers, ntasks=len(items), label=label):
            out: List[Any] = []
            try:
                for i, item in enumerate(items):
                    check_deadline(f"executor.map({label!r})")
                    set_worker_rng(chunk_rng(self.seed, map_index, i))
                    out.append(fn(item))
            finally:
                set_worker_rng(None)
            return out
