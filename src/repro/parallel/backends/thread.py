"""ThreadBackend: concurrent.futures threads over the caller's objects.

NumPy kernels release the GIL inside their C loops, so the per-domain
refines and Suzuki-Trotter propagations overlap genuinely on multi-core
hosts while still sharing the caller's address space (no pickling, no
write-back).  Each task runs with a deterministic per-item
:func:`~repro.parallel.executor.worker_rng` installed in its thread, so
thread placement can never change a random stream.

Because the per-domain tasks touch disjoint state (each domain's
orbitals, potential, occupations), running them concurrently performs
exactly the same floating-point operations as the serial backend --
results are bit-identical, which the differential harness asserts.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.obs import trace_span
from repro.parallel.executor import DomainExecutor, chunk_rng, set_worker_rng
from repro.resilience.liveness import active_deadline, check_deadline


class ThreadBackend(DomainExecutor):
    """Thread-pool execution; results are bit-identical to serial."""

    name = "thread"

    def __init__(self, workers: int = 2, seed: int = 0) -> None:
        super().__init__(workers=workers, seed=seed)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """Lazily start the thread pool (restartable after shutdown)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-domain",
            )
        return self._pool

    @staticmethod
    def _run_one(
        fn: Callable[[Any], Any], item: Any, entropy: Tuple[int, int, int]
    ) -> Any:
        """Seed the executing thread's RNG, then run the task."""
        set_worker_rng(chunk_rng(*entropy))
        try:
            return fn(item)
        finally:
            set_worker_rng(None)

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        label: str = "tasks",
    ) -> List[Any]:
        """Submit every item to the pool; collect results in item order."""
        items = list(items)
        map_index = self._next_map_index()
        with trace_span("executor.map", "comm", backend=self.name,
                        workers=self.workers, ntasks=len(items), label=label):
            if not items:
                return []
            pool = self._ensure_pool()
            futures = [
                pool.submit(self._run_one, fn, item,
                            (self.seed, map_index, i))
                for i, item in enumerate(items)
            ]
            # Poll with a bounded timeout only while a deadline scope is
            # armed; threads cannot be cancelled, so expiry abandons the
            # gather (workers finish into discarded futures) and lets
            # the supervisor replay the segment.
            if active_deadline() is not None:
                not_done = set(futures)
                while not_done:
                    check_deadline(f"executor.map({label!r})")
                    _, not_done = futures_wait(not_done, timeout=0.05)
            else:
                futures_wait(futures)
            return [f.result(timeout=0) for f in futures]

    def shutdown(self) -> None:
        """Join and discard the pool; a later map() restarts it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
