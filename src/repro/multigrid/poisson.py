"""V-cycle multigrid Poisson solver on periodic grids.

Solves the Hartree problem

    nabla^2 V_H = -4 pi rho

in O(N) work per solve.  The hierarchy is built by repeated factor-two
coarsening; the coarsest level is solved exactly in Fourier space (it is
a handful of points).  Periodic boundary conditions leave the constant
mode undetermined, so the right-hand side is projected to zero mean and
the returned potential is mean-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy
from repro.grids.grid import Grid3D
from repro.obs import trace_span
from repro.multigrid.smoothers import (
    red_black_gauss_seidel,
    red_black_gauss_seidel_xp,
    residual,
    residual_xp,
    weighted_jacobi,
    weighted_jacobi_xp,
)
from repro.multigrid.transfer import (
    prolong_trilinear,
    prolong_trilinear_xp,
    restrict_full_weighting,
    restrict_full_weighting_xp,
)


def solve_poisson_fft_xp(xp: Any, rho: Any, grid: Grid3D) -> Any:
    """FFT Poisson solve in an arbitrary array-API namespace ``xp``.

    Same discrete-Laplacian spectral division as the native path, spelled
    on the array-API subset (``fft`` extension, ``reshape``, pointwise
    setitem on the null mode).  Takes and returns arrays of ``xp``.
    """
    if tuple(rho.shape) != grid.shape:
        raise ValueError(f"density shape {tuple(rho.shape)} != grid shape {grid.shape}")
    rho = rho - xp.mean(rho)
    rho_k = xp.fft.fftn(rho)
    eig = xp.zeros(grid.shape)
    for axis, (n, h) in enumerate(zip(grid.shape, grid.spacing)):
        k = xp.fft.fftfreq(n) * (2.0 * xp.pi)
        lam = (2.0 * xp.cos(k) - 2.0) / (h * h)  # eigenvalues of 1-D FD Laplacian
        shape = [1, 1, 1]
        shape[axis] = n
        eig = eig + xp.reshape(lam, tuple(shape))
    eig[0, 0, 0] = 1.0  # avoid division by zero on the null mode
    v_k = (-4.0 * xp.pi) * rho_k / eig
    v_k[0, 0, 0] = 0.0
    v = xp.real(xp.fft.ifftn(v_k))
    return v - xp.mean(v)


def solve_poisson_fft(
    rho: np.ndarray,
    grid: Grid3D,
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """Exact periodic Poisson solve via FFT (reference / coarse-level solver).

    Solves nabla^2 V = -4 pi rho with the *discrete* 7-point Laplacian so
    that the result is consistent with the multigrid operator.
    """
    b = get_backend(backend)
    if not b.native:
        xp = b.xp
        x_rho = xp.asarray(np.asarray(rho, dtype=float))
        return to_numpy(solve_poisson_fft_xp(xp, x_rho, grid))
    rho = np.asarray(rho, dtype=float)
    if rho.shape != grid.shape:
        raise ValueError(f"density shape {rho.shape} != grid shape {grid.shape}")
    rho = rho - rho.mean()
    rho_k = np.fft.fftn(rho)
    eig = np.zeros(grid.shape, dtype=float)
    for axis, (n, h) in enumerate(zip(grid.shape, grid.spacing)):
        k = np.fft.fftfreq(n) * 2.0 * np.pi
        lam = (2.0 * np.cos(k) - 2.0) / (h * h)  # eigenvalues of 1-D FD Laplacian
        shape = [1, 1, 1]
        shape[axis] = n
        eig = eig + lam.reshape(shape)
    eig[0, 0, 0] = 1.0  # avoid division by zero on the null mode
    v_k = -4.0 * np.pi * rho_k / eig
    v_k[0, 0, 0] = 0.0
    v = np.real(np.fft.ifftn(v_k))
    return v - v.mean()


@dataclass
class MultigridStats:
    """Convergence record of one multigrid solve."""

    cycles: int = 0
    residual_norms: List[float] = field(default_factory=list)
    converged: bool = False

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("inf")

    @property
    def mean_contraction(self) -> float:
        """Geometric-mean residual contraction factor per V-cycle."""
        r = self.residual_norms
        if len(r) < 2 or r[0] == 0.0:
            return 0.0
        return (r[-1] / r[0]) ** (1.0 / (len(r) - 1))


class PoissonMultigrid:
    """Geometric multigrid solver for the periodic Poisson equation.

    Parameters
    ----------
    grid:
        The finest grid.
    pre_sweeps, post_sweeps:
        Relaxation sweeps before/after coarse-grid correction; None
        resolves from the active
        :class:`~repro.tuning.profile.TuningProfile` (the
        ``multigrid.poisson`` tunable).  Explicit 0 is honoured -- only
        None triggers profile resolution.
    smoother:
        ``"jacobi"`` (damped, omega=2/3) or ``"rbgs"`` (red-black
        Gauss-Seidel; needs even grid sizes, which the hierarchy has by
        construction); None resolves from the active tuning profile.
    min_points:
        Stop coarsening when any axis would drop below this; the coarsest
        level is solved exactly by FFT.
    backend:
        Array-API substrate (name or handle); None resolves from the
        active tuning profile (falling back to ``"numpy"`` for profiles
        persisted before the backend dimension existed).  On a non-native
        substrate the whole V-cycle runs in-namespace -- host data
        crosses the boundary once per solve in each direction.
    """

    def __init__(
        self,
        grid: Grid3D,
        pre_sweeps: int | None = None,
        post_sweeps: int | None = None,
        smoother: str | None = None,
        min_points: int = 4,
        backend: Union[str, ArrayBackend, None] = None,
    ) -> None:
        from repro.tuning.profile import get_active_profile

        params = get_active_profile().params_for("multigrid.poisson")
        if pre_sweeps is None:
            pre_sweeps = int(params["pre_sweeps"])  # type: ignore[arg-type]
        if post_sweeps is None:
            post_sweeps = int(params["post_sweeps"])  # type: ignore[arg-type]
        if smoother is None:
            smoother = str(params["smoother"])
        if backend is None:
            backend = str(params.get("backend", "numpy"))
        if smoother not in ("jacobi", "rbgs"):
            raise ValueError("smoother must be 'jacobi' or 'rbgs'")
        self.pre_sweeps = int(pre_sweeps)
        self.post_sweeps = int(post_sweeps)
        self.smoother = smoother
        self.backend = get_backend(backend)
        self.levels: List[Grid3D] = [grid]
        g = grid
        while all(n % 2 == 0 and n // 2 >= min_points for n in g.shape):
            g = g.coarsen()
            self.levels.append(g)

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    def _smooth(self, u: np.ndarray, f: np.ndarray, grid: Grid3D, sweeps: int) -> np.ndarray:
        if self.smoother == "jacobi":
            return weighted_jacobi(u, f, grid.spacing, sweeps=sweeps)
        return red_black_gauss_seidel(u, f, grid.spacing, sweeps=sweeps)

    def _vcycle(self, u: np.ndarray, f: np.ndarray, level: int) -> np.ndarray:
        grid = self.levels[level]
        if level == self.nlevels - 1:
            # Coarsest level: exact solve of L u = f.  solve_poisson_fft
            # solves L v = -4 pi rho, so pass rho = -f / (4 pi).
            return solve_poisson_fft(-f / (4.0 * np.pi), grid)
        u = self._smooth(u, f, grid, self.pre_sweeps)
        r = residual(u, f, grid.spacing)
        r_coarse = restrict_full_weighting(r)
        e_coarse = self._vcycle(np.zeros_like(r_coarse), r_coarse, level + 1)
        u = u + prolong_trilinear(e_coarse, grid.shape)
        u = self._smooth(u, f, grid, self.post_sweeps)
        return u

    def _smooth_xp(self, xp: Any, u: Any, f: Any, grid: Grid3D, sweeps: int) -> Any:
        if self.smoother == "jacobi":
            return weighted_jacobi_xp(xp, u, f, grid.spacing, sweeps=sweeps)
        return red_black_gauss_seidel_xp(xp, u, f, grid.spacing, sweeps=sweeps)

    def _vcycle_xp(self, xp: Any, u: Any, f: Any, level: int) -> Any:
        """In-namespace V-cycle: identical control flow to :meth:`_vcycle`."""
        grid = self.levels[level]
        if level == self.nlevels - 1:
            return solve_poisson_fft_xp(xp, -f / (4.0 * xp.pi), grid)
        u = self._smooth_xp(xp, u, f, grid, self.pre_sweeps)
        r = residual_xp(xp, u, f, grid.spacing)
        r_coarse = restrict_full_weighting_xp(xp, r)
        e_coarse = self._vcycle_xp(xp, xp.zeros_like(r_coarse), r_coarse, level + 1)
        u = u + prolong_trilinear_xp(xp, e_coarse, grid.shape)
        u = self._smooth_xp(xp, u, f, grid, self.post_sweeps)
        return u

    def solve(
        self,
        rho: np.ndarray,
        tol: float = 1e-8,
        max_cycles: int = 50,
        initial_guess: np.ndarray | None = None,
    ) -> Tuple[np.ndarray, MultigridStats]:
        """Solve nabla^2 V = -4 pi rho to relative residual ``tol``.

        Returns the mean-free potential and a :class:`MultigridStats`
        convergence record.
        """
        grid = self.levels[0]
        rho = np.asarray(rho, dtype=float)
        if rho.shape != grid.shape:
            raise ValueError(f"density shape {rho.shape} != grid shape {grid.shape}")
        if not self.backend.native:
            return self._solve_xp(rho, tol, max_cycles, initial_guess)
        f = -4.0 * np.pi * (rho - rho.mean())
        u = (
            np.zeros(grid.shape)
            if initial_guess is None
            else np.array(initial_guess, dtype=float, copy=True)
        )
        u -= u.mean()
        stats = MultigridStats()
        f_norm = float(np.linalg.norm(f))
        if f_norm == 0.0:
            stats.converged = True
            stats.residual_norms.append(0.0)
            return u, stats
        r0 = float(np.linalg.norm(residual(u, f, grid.spacing)))
        stats.residual_norms.append(r0)
        with trace_span("poisson.solve", "hartree", npoints=grid.npoints,
                        nlevels=self.nlevels, backend=self.backend.name):
            for cycle in range(max_cycles):
                with trace_span("poisson.vcycle", "hartree", cycle=cycle + 1):
                    u = self._vcycle(u, f, 0)
                u -= u.mean()
                r = float(np.linalg.norm(residual(u, f, grid.spacing)))
                stats.cycles = cycle + 1
                stats.residual_norms.append(r)
                if r <= tol * f_norm:
                    stats.converged = True
                    break
        return u, stats

    def _solve_xp(
        self,
        rho: np.ndarray,
        tol: float,
        max_cycles: int,
        initial_guess: np.ndarray | None,
    ) -> Tuple[np.ndarray, MultigridStats]:
        """The in-namespace solve loop of a non-native substrate."""
        grid = self.levels[0]
        xp = self.backend.xp

        def _norm(x: Any) -> float:
            return float(xp.linalg.vector_norm(xp.reshape(x, (-1,))))

        x_rho = xp.asarray(rho)
        f = (-4.0 * xp.pi) * (x_rho - xp.mean(x_rho))
        if initial_guess is None:
            u = xp.zeros(grid.shape)
        else:
            u = xp.asarray(np.asarray(initial_guess, dtype=float), copy=True)
        u = u - xp.mean(u)
        stats = MultigridStats()
        f_norm = _norm(f)
        if f_norm == 0.0:
            stats.converged = True
            stats.residual_norms.append(0.0)
            return to_numpy(u), stats
        stats.residual_norms.append(_norm(residual_xp(xp, u, f, grid.spacing)))
        with trace_span("poisson.solve", "hartree", npoints=grid.npoints,
                        nlevels=self.nlevels, backend=self.backend.name):
            for cycle in range(max_cycles):
                with trace_span("poisson.vcycle", "hartree", cycle=cycle + 1):
                    u = self._vcycle_xp(xp, u, f, 0)
                u = u - xp.mean(u)
                r = _norm(residual_xp(xp, u, f, grid.spacing))
                stats.cycles = cycle + 1
                stats.residual_norms.append(r)
                if r <= tol * f_norm:
                    stats.converged = True
                    break
        return to_numpy(u), stats

    def work_units(self) -> float:
        """Total grid points touched per V-cycle, in units of fine points.

        For a factor-8 coarsening this is bounded by 8/7 ~ 1.14, the
        signature of O(N) complexity.
        """
        fine = self.levels[0].npoints
        return sum(g.npoints for g in self.levels) / fine
