"""Inter-grid transfer operators for the periodic multigrid hierarchy.

Restriction is full weighting (separable [1/4, 1/2, 1/4] per axis followed
by subsampling on even points); prolongation is its adjoint-scaled
trilinear interpolation.  Both assume even grid sizes and periodic wrap,
matching the vertex-centred hierarchy produced by :meth:`Grid3D.coarsen`.

Both operators take a ``backend=`` argument; ``None``/``"numpy"`` keeps
the pre-refactor native code bit-identically, while other namespaces run
the ``_xp`` portable kernels (strided slicing and ``roll`` only -- both
in the array-API subset).  The ``_xp`` kernels stay in-namespace so the
V-cycle can chain them without host round trips.
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy


def _axis_full_weight(f: np.ndarray, axis: int) -> np.ndarray:
    """Apply the 1-D full-weighting filter [1/4, 1/2, 1/4] along ``axis``."""
    return 0.5 * f + 0.25 * (np.roll(f, 1, axis=axis) + np.roll(f, -1, axis=axis))


def restrict_full_weighting_xp(xp: Any, fine: Any) -> Any:
    """Full-weighting restriction in an arbitrary array-API namespace."""
    if len(fine.shape) != 3:
        raise ValueError("expected a 3-D field")
    if any(n % 2 != 0 for n in fine.shape):
        raise ValueError(f"cannot restrict odd-sized field {fine.shape}")
    out = fine
    for axis in range(3):
        out = 0.5 * out + 0.25 * (
            xp.roll(out, 1, axis=axis) + xp.roll(out, -1, axis=axis)
        )
    return xp.asarray(out[::2, ::2, ::2], copy=True)


def prolong_trilinear_xp(xp: Any, coarse: Any, fine_shape) -> Any:
    """Trilinear prolongation in an arbitrary array-API namespace."""
    if len(coarse.shape) != 3:
        raise ValueError("expected a 3-D field")
    if tuple(2 * n for n in coarse.shape) != tuple(fine_shape):
        raise ValueError(
            f"fine shape {fine_shape} is not double the coarse shape {coarse.shape}"
        )
    out = coarse
    for axis in range(3):
        n = out.shape[axis]
        new_shape = list(out.shape)
        new_shape[axis] = 2 * n
        up = xp.empty(tuple(new_shape), dtype=out.dtype)
        even = [slice(None)] * 3
        odd = [slice(None)] * 3
        even[axis] = slice(0, 2 * n, 2)
        odd[axis] = slice(1, 2 * n, 2)
        up[tuple(even)] = out
        up[tuple(odd)] = 0.5 * (out + xp.roll(out, -1, axis=axis))
        out = up
    return out


def restrict_full_weighting(
    fine: np.ndarray, backend: Union[str, ArrayBackend, None] = None
) -> np.ndarray:
    """Restrict a fine-grid field to the next coarser periodic grid.

    The coarse point ``i`` coincides with fine point ``2 i``; its value is
    the 27-point full-weighted average of the fine field around that point.
    """
    b = get_backend(backend)
    if not b.native:
        xp = b.xp
        return to_numpy(restrict_full_weighting_xp(xp, xp.asarray(np.asarray(fine))))
    fine = np.asarray(fine)
    if fine.ndim != 3:
        raise ValueError("expected a 3-D field")
    if any(n % 2 != 0 for n in fine.shape):
        raise ValueError(f"cannot restrict odd-sized field {fine.shape}")
    out = fine
    for axis in range(3):
        out = _axis_full_weight(out, axis)
    return out[::2, ::2, ::2].copy()


def prolong_trilinear(
    coarse: np.ndarray,
    fine_shape: tuple[int, int, int],
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """Trilinear interpolation of a coarse field onto the doubled fine grid.

    Fine even points copy the coarse value, odd points average the two
    flanking coarse points; tensor product over the three axes.
    """
    b = get_backend(backend)
    if not b.native:
        xp = b.xp
        return to_numpy(
            prolong_trilinear_xp(xp, xp.asarray(np.asarray(coarse)), fine_shape)
        )
    coarse = np.asarray(coarse)
    if coarse.ndim != 3:
        raise ValueError("expected a 3-D field")
    if tuple(2 * n for n in coarse.shape) != tuple(fine_shape):
        raise ValueError(
            f"fine shape {fine_shape} is not double the coarse shape {coarse.shape}"
        )
    out = coarse
    for axis in range(3):
        n = out.shape[axis]
        new_shape = list(out.shape)
        new_shape[axis] = 2 * n
        up = np.empty(new_shape, dtype=out.dtype)
        even = [slice(None)] * 3
        odd = [slice(None)] * 3
        even[axis] = slice(0, 2 * n, 2)
        odd[axis] = slice(1, 2 * n, 2)
        up[tuple(even)] = out
        up[tuple(odd)] = 0.5 * (out + np.roll(out, -1, axis=axis))
        out = up
    return out
