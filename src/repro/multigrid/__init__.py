"""O(N) multigrid Poisson solver for the global Hartree potential.

The DC-DFT algorithm computes the mean electrostatic (Hartree) field
globally with a scalable multigrid method while higher-order correlations
are treated locally in each DC domain (Section II of the paper).
"""

from repro.multigrid.transfer import restrict_full_weighting, prolong_trilinear
from repro.multigrid.smoothers import weighted_jacobi, red_black_gauss_seidel, laplacian_periodic
from repro.multigrid.poisson import PoissonMultigrid, solve_poisson_fft, MultigridStats

__all__ = [
    "restrict_full_weighting",
    "prolong_trilinear",
    "weighted_jacobi",
    "red_black_gauss_seidel",
    "laplacian_periodic",
    "PoissonMultigrid",
    "solve_poisson_fft",
    "MultigridStats",
]
