"""Relaxation smoothers for the periodic 7-point Laplacian.

The smoothers operate on the discrete Poisson problem

    L u = f,   (L u)[i,j,k] = sum_d (u[i+1_d] - 2 u + u[i-1_d]) / h_d^2

with periodic boundaries.  Because the periodic Laplacian has a constant
null space, the solvers work in the mean-zero subspace.

Each public smoother takes a ``backend=`` argument selecting the
array-API substrate.  The ``None``/``"numpy"`` path is the pre-refactor
native code, bit for bit; other namespaces run the ``_xp``-suffixed
portable kernels below, which re-spell the same elementwise arithmetic
on the array-API subset (``roll`` neighbours; a parity-mask ``where``
in place of boolean-mask assignment for red-black ordering).  The
portable kernels take and return arrays *of the namespace* so the
V-cycle in :mod:`repro.multigrid.poisson` can stay in-namespace across
a whole solve; the public wrappers convert at the boundary.
"""

from __future__ import annotations

from typing import Any, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend, to_numpy


def laplacian_periodic(u: np.ndarray, spacing: Tuple[float, float, float]) -> np.ndarray:
    """Apply the periodic 7-point Laplacian to a field."""
    u = np.asarray(u)
    out = np.zeros_like(u)
    for axis in range(3):
        h2 = spacing[axis] * spacing[axis]
        out += (np.roll(u, 1, axis=axis) + np.roll(u, -1, axis=axis) - 2.0 * u) / h2
    return out


def _neighbor_sum(u: np.ndarray, spacing: Tuple[float, float, float]) -> np.ndarray:
    """Sum of neighbour values weighted by 1/h_d^2 (Laplacian minus diagonal)."""
    out = np.zeros_like(u)
    for axis in range(3):
        h2 = spacing[axis] * spacing[axis]
        out += (np.roll(u, 1, axis=axis) + np.roll(u, -1, axis=axis)) / h2
    return out


def _diag_coeff(spacing: Tuple[float, float, float]) -> float:
    """Diagonal coefficient of the 7-point Laplacian, -2 sum_d 1/h_d^2."""
    return -2.0 * sum(1.0 / (h * h) for h in spacing)


# --------------------------------------------------------------------- #
# portable array-API kernels (operate on arrays of the namespace ``xp``)
# --------------------------------------------------------------------- #
def laplacian_periodic_xp(xp: Any, u: Any, spacing: Tuple[float, float, float]) -> Any:
    """Periodic 7-point Laplacian in an arbitrary array-API namespace."""
    out = xp.zeros_like(u)
    for axis in range(3):
        h2 = spacing[axis] * spacing[axis]
        out += (xp.roll(u, 1, axis=axis) + xp.roll(u, -1, axis=axis) - 2.0 * u) / h2
    return out


def _neighbor_sum_xp(xp: Any, u: Any, spacing: Tuple[float, float, float]) -> Any:
    out = xp.zeros_like(u)
    for axis in range(3):
        h2 = spacing[axis] * spacing[axis]
        out += (xp.roll(u, 1, axis=axis) + xp.roll(u, -1, axis=axis)) / h2
    return out


def weighted_jacobi_xp(
    xp: Any,
    u: Any,
    f: Any,
    spacing: Tuple[float, float, float],
    sweeps: int = 2,
    omega: float = 2.0 / 3.0,
) -> Any:
    """Damped-Jacobi sweeps on ``L u = f`` in namespace ``xp``."""
    diag = _diag_coeff(spacing)
    u = xp.asarray(u, copy=True)
    for _ in range(sweeps):
        u_new = (f - _neighbor_sum_xp(xp, u, spacing)) / diag
        u = u + omega * (u_new - u)
    return u


def _parity_mask_xp(xp: Any, shape: Tuple[int, int, int]) -> Any:
    """Boolean mask of the red (i+j+k even) sub-lattice, by broadcast."""
    parity = xp.zeros(shape, dtype=xp.int64)
    for axis, n in enumerate(shape):
        idx_shape = [1, 1, 1]
        idx_shape[axis] = n
        parity = parity + xp.reshape(xp.arange(n), tuple(idx_shape))
    return parity % 2 == 0


def red_black_gauss_seidel_xp(
    xp: Any,
    u: Any,
    f: Any,
    spacing: Tuple[float, float, float],
    sweeps: int = 1,
) -> Any:
    """Red-black Gauss-Seidel sweeps on ``L u = f`` in namespace ``xp``.

    Same elementwise arithmetic as the native kernel; the boolean-mask
    assignment ``u[mask] = rhs[mask] / diag`` becomes a ``where`` select
    (the array API has no integer-array indexing, and ``where`` keeps
    the untouched sub-lattice bit-identical).
    """
    if any(n % 2 != 0 for n in u.shape):
        raise ValueError("red-black ordering needs even grid sizes on periodic grids")
    diag = _diag_coeff(spacing)
    red = _parity_mask_xp(xp, tuple(u.shape))
    black = ~red
    for _ in range(sweeps):
        for mask in (red, black):
            rhs = f - _neighbor_sum_xp(xp, u, spacing)
            u = xp.where(mask, rhs / diag, u)
    return u


def residual_xp(
    xp: Any, u: Any, f: Any, spacing: Tuple[float, float, float]
) -> Any:
    """Residual r = f - L u in namespace ``xp``."""
    return f - laplacian_periodic_xp(xp, u, spacing)


# --------------------------------------------------------------------- #
# public smoothers (host NumPy in / host NumPy out)
# --------------------------------------------------------------------- #
def weighted_jacobi(
    u: np.ndarray,
    f: np.ndarray,
    spacing: Tuple[float, float, float],
    sweeps: int = 2,
    omega: float = 2.0 / 3.0,
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """Damped-Jacobi relaxation sweeps on L u = f.

    Returns the relaxed field; the input array is not modified.
    """
    b = get_backend(backend)
    if not b.native:
        xp = b.xp
        out = weighted_jacobi_xp(
            xp, xp.asarray(np.asarray(u, dtype=float)),
            xp.asarray(np.asarray(f, dtype=float)),
            spacing, sweeps=sweeps, omega=omega,
        )
        return to_numpy(out)
    diag = _diag_coeff(spacing)
    u = np.array(u, copy=True)
    for _ in range(sweeps):
        u_new = (f - _neighbor_sum(u, spacing)) / diag
        u += omega * (u_new - u)
    return u


def red_black_gauss_seidel(
    u: np.ndarray,
    f: np.ndarray,
    spacing: Tuple[float, float, float],
    sweeps: int = 1,
    backend: Union[str, ArrayBackend, None] = None,
) -> np.ndarray:
    """Red-black Gauss-Seidel sweeps on L u = f (even grid sizes, periodic).

    Each sweep updates the red sub-lattice (i+j+k even) then the black one,
    which on even-sized periodic grids decouples exactly.
    """
    b = get_backend(backend)
    if not b.native:
        xp = b.xp
        out = red_black_gauss_seidel_xp(
            xp, xp.asarray(np.asarray(u, dtype=float)),
            xp.asarray(np.asarray(f, dtype=float)),
            spacing, sweeps=sweeps,
        )
        return to_numpy(out)
    u = np.array(u, copy=True)
    if any(n % 2 != 0 for n in u.shape):
        raise ValueError("red-black ordering needs even grid sizes on periodic grids")
    diag = _diag_coeff(spacing)
    ii, jj, kk = np.indices(u.shape)
    red = (ii + jj + kk) % 2 == 0
    black = ~red
    for _ in range(sweeps):
        for mask in (red, black):
            rhs = f - _neighbor_sum(u, spacing)
            u[mask] = rhs[mask] / diag
    return u


def residual(
    u: np.ndarray, f: np.ndarray, spacing: Tuple[float, float, float]
) -> np.ndarray:
    """Residual r = f - L u."""
    return f - laplacian_periodic(u, spacing)
