"""Relaxation smoothers for the periodic 7-point Laplacian.

The smoothers operate on the discrete Poisson problem

    L u = f,   (L u)[i,j,k] = sum_d (u[i+1_d] - 2 u + u[i-1_d]) / h_d^2

with periodic boundaries.  Because the periodic Laplacian has a constant
null space, the solvers work in the mean-zero subspace.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def laplacian_periodic(u: np.ndarray, spacing: Tuple[float, float, float]) -> np.ndarray:
    """Apply the periodic 7-point Laplacian to a field."""
    u = np.asarray(u)
    out = np.zeros_like(u)
    for axis in range(3):
        h2 = spacing[axis] * spacing[axis]
        out += (np.roll(u, 1, axis=axis) + np.roll(u, -1, axis=axis) - 2.0 * u) / h2
    return out


def _neighbor_sum(u: np.ndarray, spacing: Tuple[float, float, float]) -> np.ndarray:
    """Sum of neighbour values weighted by 1/h_d^2 (Laplacian minus diagonal)."""
    out = np.zeros_like(u)
    for axis in range(3):
        h2 = spacing[axis] * spacing[axis]
        out += (np.roll(u, 1, axis=axis) + np.roll(u, -1, axis=axis)) / h2
    return out


def _diag_coeff(spacing: Tuple[float, float, float]) -> float:
    """Diagonal coefficient of the 7-point Laplacian, -2 sum_d 1/h_d^2."""
    return -2.0 * sum(1.0 / (h * h) for h in spacing)


def weighted_jacobi(
    u: np.ndarray,
    f: np.ndarray,
    spacing: Tuple[float, float, float],
    sweeps: int = 2,
    omega: float = 2.0 / 3.0,
) -> np.ndarray:
    """Damped-Jacobi relaxation sweeps on L u = f.

    Returns the relaxed field; the input array is not modified.
    """
    diag = _diag_coeff(spacing)
    u = np.array(u, copy=True)
    for _ in range(sweeps):
        u_new = (f - _neighbor_sum(u, spacing)) / diag
        u += omega * (u_new - u)
    return u


def red_black_gauss_seidel(
    u: np.ndarray,
    f: np.ndarray,
    spacing: Tuple[float, float, float],
    sweeps: int = 1,
) -> np.ndarray:
    """Red-black Gauss-Seidel sweeps on L u = f (even grid sizes, periodic).

    Each sweep updates the red sub-lattice (i+j+k even) then the black one,
    which on even-sized periodic grids decouples exactly.
    """
    u = np.array(u, copy=True)
    if any(n % 2 != 0 for n in u.shape):
        raise ValueError("red-black ordering needs even grid sizes on periodic grids")
    diag = _diag_coeff(spacing)
    ii, jj, kk = np.indices(u.shape)
    red = (ii + jj + kk) % 2 == 0
    black = ~red
    for _ in range(sweeps):
        for mask in (red, black):
            rhs = f - _neighbor_sum(u, spacing)
            u[mask] = rhs[mask] / diag
    return u


def residual(
    u: np.ndarray, f: np.ndarray, spacing: Tuple[float, float, float]
) -> np.ndarray:
    """Residual r = f - L u."""
    return f - laplacian_periodic(u, spacing)
