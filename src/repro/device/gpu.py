"""The virtual GPU facade: clock + allocator + transfers + streams + BLAS."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.device.allocator import DeviceAllocator, DeviceArray
from repro.device.blas import DeviceBLAS
from repro.device.clock import SimClock
from repro.device.kernels import KernelLauncher
from repro.device.spec import A100, PCIE_GEN4, DeviceSpec, LinkSpec
from repro.device.streams import Stream
from repro.device.transfer import TransferEngine


class VirtualGPU:
    """One simulated accelerator with a shared clock across subsystems.

    Typical use::

        gpu = VirtualGPU()
        psi_dev = gpu.array(psi_host, pinned=True, tag="psi")   # enter data
        psi_dev.update_to_device()                              # one-time upload
        gpu.launch("kin_prop", flops=..., bytes_moved=..., payload=fn,
                   nowait=True)
        gpu.synchronize()
        print(gpu.elapsed)                                      # modeled seconds
    """

    def __init__(
        self,
        spec: DeviceSpec = A100,
        link: LinkSpec = PCIE_GEN4,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.spec = spec
        self.clock = clock if clock is not None else SimClock()
        self.transfer = TransferEngine(link, self.clock)
        self.allocator = DeviceAllocator(spec, self.clock)
        self.allocator.transfer = self.transfer
        self.launcher = KernelLauncher(spec, self.clock)
        self.stream = Stream(self.clock, name="stream0")
        self.blas = DeviceBLAS(self.launcher, stream=self.stream)

    def array(self, host: np.ndarray, pinned: bool = False, tag: str = "array") -> DeviceArray:
        """Create a persistent device-resident mirror of a host array."""
        return DeviceArray(host, self.allocator, pinned=pinned, tag=tag)

    def launch(self, name: str, flops: float, bytes_moved: float, **kwargs) -> float:
        """Launch a kernel on the default stream (see KernelLauncher.launch)."""
        kwargs.setdefault("stream", self.stream)
        return self.launcher.launch(name, flops, bytes_moved, **kwargs)

    def gemm(self, a: np.ndarray, b: np.ndarray, **kwargs) -> np.ndarray:
        """Timed GEMM on the default stream."""
        return self.blas.gemm(a, b, **kwargs)

    def synchronize(self) -> float:
        """Wait for the default stream; returns the wait charged."""
        return self.stream.synchronize()

    @property
    def elapsed(self) -> float:
        """Modeled wall-clock so far (host timeline)."""
        return self.clock.now

    def reset(self) -> None:
        """Zero the clock/event log (keeps allocations)."""
        self.clock.reset()
        self.stream.busy_until = 0.0
        self.transfer.reset()
        self.launcher.records.clear()
