"""Kernel launch and roofline timing for the virtual device.

A kernel is charged

    t = max( flops / peak_flops(dtype),  bytes / mem_bandwidth )

(the roofline), plus launch latency.  For *scalar* CPU code (the
Algorithm 1 baseline) the flop rate is additionally derated by
``SCALAR_EFFICIENCY`` -- the single documented CPU fudge factor -- because
an un-vectorized, cache-hostile loop nest achieves only a few percent of
peak.  The launcher can optionally *execute* a real NumPy payload so that
the modeled code path also produces the real numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.device.clock import SimClock
from repro.device.spec import DeviceSpec, SCALAR_EFFICIENCY
from repro.device.streams import Stream


@dataclass(frozen=True)
class KernelRecord:
    """One launched kernel."""

    name: str
    flops: float
    bytes_moved: float
    itemsize: int
    modeled_time: float
    asynchronous: bool


class KernelCostModel:
    """Roofline cost model for one device."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec

    def kernel_time(
        self,
        flops: float,
        bytes_moved: float,
        itemsize: int = 8,
        vectorized: bool = True,
        efficiency: float = 1.0,
    ) -> float:
        """Modeled execution time of one kernel body (no launch latency).

        Parameters
        ----------
        flops:
            Real floating-point operations issued.
        bytes_moved:
            Main-memory traffic in bytes.
        itemsize:
            4 for SP, 8 for DP (selects the peak flop rate).
        vectorized:
            False applies the scalar-code derating (baseline kernels).
        efficiency:
            Additional achieved-fraction-of-roofline knob (default 1).
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes must be non-negative")
        if not (0.0 < efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")
        peak = self.spec.peak_flops(itemsize)
        if not vectorized:
            peak *= SCALAR_EFFICIENCY
        t_compute = flops / peak if peak > 0 else 0.0
        t_memory = bytes_moved / self.spec.mem_bandwidth
        return max(t_compute, t_memory) / efficiency

    def arithmetic_intensity_break(self, itemsize: int = 8) -> float:
        """Roofline ridge point (flops/byte) of this device."""
        return self.spec.peak_flops(itemsize) / self.spec.mem_bandwidth


class KernelLauncher:
    """Launches (optionally executes) kernels on a virtual device."""

    def __init__(self, spec: DeviceSpec, clock: Optional[SimClock] = None) -> None:
        self.spec = spec
        self.clock = clock if clock is not None else SimClock()
        self.model = KernelCostModel(spec)
        self.records: List[KernelRecord] = []

    def launch(
        self,
        name: str,
        flops: float,
        bytes_moved: float,
        itemsize: int = 8,
        payload: Optional[Callable[[], None]] = None,
        stream: Optional[Stream] = None,
        nowait: bool = False,
        vectorized: bool = True,
        efficiency: float = 1.0,
        category: str = "kernel",
    ) -> float:
        """Launch one kernel; returns the modeled kernel-body time.

        ``payload`` (if given) is executed immediately on the host so the
        simulated kernel also computes the real result.  With ``nowait``
        and a ``stream``, only the enqueue cost hits the host clock and the
        kernel time accumulates on the stream; otherwise the host is
        charged launch latency + kernel + sync overhead.
        """
        t_kernel = self.model.kernel_time(
            flops, bytes_moved, itemsize=itemsize, vectorized=vectorized,
            efficiency=efficiency,
        )
        if payload is not None:
            payload()
        if nowait:
            if stream is None:
                raise ValueError("nowait launches require a stream")
            stream.enqueue(t_kernel, self.spec.launch_latency, name=name)
        else:
            if stream is not None:
                stream.synchronize(name=f"pre-sync:{name}")
            self.clock.advance(
                self.spec.launch_latency + t_kernel + self.spec.sync_overhead,
                name=name,
                category=category,
            )
        self.records.append(
            KernelRecord(
                name=name,
                flops=flops,
                bytes_moved=bytes_moved,
                itemsize=itemsize,
                modeled_time=t_kernel,
                asynchronous=nowait,
            )
        )
        return t_kernel

    def total_kernel_time(self) -> float:
        """Sum of modeled kernel-body times over all launches."""
        return sum(r.modeled_time for r in self.records)
