"""Timed BLAS-3 on the virtual device (the cuBLAS stand-in).

``DeviceBLAS.gemm`` executes the real matrix product with NumPy while
charging the roofline GEMM cost on the device clock.  GEMM achieves a
high fraction of peak on both cuBLAS and host BLAS; the efficiency
constants below are library-typical values, shared by all experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.device.kernels import KernelLauncher
from repro.device.streams import Stream

#: Fraction of peak a well-shaped complex GEMM achieves (cuBLAS / vendor BLAS).
GEMM_EFFICIENCY = 0.80

#: Fraction of peak for the reference (non-BLAS) per-orbital loop code.
LOOP_EFFICIENCY = 0.30


def gemm_flops(m: int, n: int, k: int, complex_data: bool = True) -> float:
    """Real flops of an (m x k) @ (k x n) product."""
    per_mac = 8.0 if complex_data else 2.0
    return per_mac * m * n * k


def gemm_bytes(m: int, n: int, k: int, itemsize: int) -> float:
    """Streaming memory-traffic estimate of a GEMM (read A, B; write C)."""
    return itemsize * (m * k + k * n + m * n)


class DeviceBLAS:
    """BLAS-3 calls that execute on the host and charge the device clock."""

    def __init__(self, launcher: KernelLauncher, stream: Optional[Stream] = None) -> None:
        self.launcher = launcher
        self.stream = stream

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        conj_a: bool = False,
        nowait: bool = False,
        name: str = "gemm",
    ) -> np.ndarray:
        """C = op(A) @ B with op = conjugate-transpose when ``conj_a``.

        Returns the real product; modeled time is charged to the device.
        """
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("gemm expects 2-D operands")
        op_a = a.conj().T if conj_a else a
        if op_a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch {op_a.shape} @ {b.shape}")
        m, k = op_a.shape
        n = b.shape[1]
        itemsize = max(a.itemsize, b.itemsize)
        complex_data = np.iscomplexobj(a) or np.iscomplexobj(b)
        # complex128 -> itemsize 16 but peak tables are per real word.
        scalar_size = itemsize // 2 if complex_data else itemsize
        out: dict = {}

        def payload() -> None:
            out["c"] = op_a @ b

        self.launcher.launch(
            name=name,
            flops=gemm_flops(m, n, k, complex_data),
            bytes_moved=gemm_bytes(m, n, k, itemsize),
            itemsize=scalar_size,
            payload=payload,
            stream=self.stream,
            nowait=nowait,
            efficiency=GEMM_EFFICIENCY,
        )
        return out["c"]
