"""Simulated clock and event log for the virtual device."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ClockEvent:
    """One charged interval on the simulated timeline."""

    name: str
    category: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class SimClock:
    """A monotonically advancing simulated clock with an event log.

    All modeled costs (kernels, transfers, synchronizations) advance this
    clock; analysis code slices the event log by category to produce the
    per-kernel breakdowns of Table II and Fig. 5.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self.events: List[ClockEvent] = []

    @property
    def now(self) -> float:
        return self._now

    def advance(self, duration: float, name: str = "", category: str = "other") -> ClockEvent:
        """Charge ``duration`` seconds and record the event."""
        if duration < 0.0:
            raise ValueError("cannot advance the clock backwards")
        ev = ClockEvent(name=name, category=category, start=self._now, duration=duration)
        self._now += duration
        self.events.append(ev)
        return ev

    def advance_to(self, t: float, name: str = "", category: str = "wait") -> float:
        """Advance to an absolute time (no-op if already past it).

        Returns the wait duration actually charged.
        """
        if t <= self._now:
            return 0.0
        wait = t - self._now
        self.advance(wait, name=name, category=category)
        return wait

    def total(self, category: str | None = None) -> float:
        """Total charged time, optionally restricted to one category."""
        if category is None:
            return self._now
        return sum(ev.duration for ev in self.events if ev.category == category)

    def by_category(self) -> Dict[str, float]:
        """Charged time per category."""
        out: Dict[str, float] = {}
        for ev in self.events:
            out[ev.category] = out.get(ev.category, 0.0) + ev.duration
        return out

    def by_name(self) -> Dict[str, float]:
        """Charged time per event name."""
        out: Dict[str, float] = {}
        for ev in self.events:
            out[ev.name] = out.get(ev.name, 0.0) + ev.duration
        return out

    def reset(self) -> None:
        """Zero the clock and clear the log."""
        self._now = 0.0
        self.events.clear()
