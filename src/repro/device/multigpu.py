"""Multi-GPU node model: 4 A100s on an NVLink'd HGX board.

One Polaris node hosts four GPUs (one per MPI rank in the paper's
configuration); this module models the node-level picture: independent
per-GPU clocks, NVLink peer-to-peer transfers, and a work scheduler that
maps DC domains onto GPUs and reports the node makespan (max over GPU
timelines) -- the quantity behind Fig. 4's node throughput.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.device.gpu import VirtualGPU
from repro.device.spec import A100, NVLINK, DeviceSpec, LinkSpec, PCIE_GEN4


class MultiGPUNode:
    """A node with ``ngpus`` virtual GPUs and an NVLink fabric.

    Parameters
    ----------
    ngpus:
        GPUs on the board (Polaris: 4).
    spec, host_link, peer_link:
        Hardware models; defaults are the Polaris A100 HGX numbers.
    """

    def __init__(
        self,
        ngpus: int = 4,
        spec: DeviceSpec = A100,
        host_link: LinkSpec = PCIE_GEN4,
        peer_link: LinkSpec = NVLINK,
    ) -> None:
        if ngpus < 1:
            raise ValueError("need at least one GPU")
        self.gpus = [VirtualGPU(spec=spec, link=host_link) for _ in range(ngpus)]
        self.peer_link = peer_link
        self.peer_transfers: List[Tuple[int, int, int, float]] = []

    @property
    def ngpus(self) -> int:
        return len(self.gpus)

    def _check(self, idx: int) -> None:
        if not (0 <= idx < self.ngpus):
            raise ValueError(f"GPU index {idx} out of range [0, {self.ngpus})")

    # ------------------------------------------------------------------ #
    def peer_transfer(self, src: int, dst: int, nbytes: int) -> float:
        """Device-to-device copy over NVLink; charges both GPU clocks."""
        self._check(src)
        self._check(dst)
        if src == dst:
            raise ValueError("source and destination GPU are the same")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        t = self.peer_link.transfer_time(nbytes)
        # Both endpoints participate; the copy completes when both are free.
        start = max(self.gpus[src].clock.now, self.gpus[dst].clock.now)
        for g in (self.gpus[src], self.gpus[dst]):
            g.clock.advance_to(start, name="p2p-wait")
            g.clock.advance(t, name=f"p2p:{src}->{dst}", category="transfer")
        self.peer_transfers.append((src, dst, nbytes, t))
        return t

    # ------------------------------------------------------------------ #
    def schedule_domains(
        self,
        domain_costs: Sequence[Tuple[float, float]],
        itemsize: int = 8,
        payloads: Optional[Sequence[Callable[[], None]]] = None,
    ) -> Dict[int, List[int]]:
        """Assign domain kernels to GPUs (longest-processing-time greedy).

        ``domain_costs`` is a list of (flops, bytes) per domain.  Returns
        the GPU -> domain-indices mapping; kernel times are charged to the
        owning GPU (async + one sync at the end, the steady-state LFD
        pattern).
        """
        if payloads is not None and len(payloads) != len(domain_costs):
            raise ValueError("one payload per domain required")
        # LPT greedy on modeled kernel time.
        times = [
            self.gpus[0].launcher.model.kernel_time(f, b, itemsize=itemsize)
            for f, b in domain_costs
        ]
        order = sorted(range(len(times)), key=lambda i: -times[i])
        assignment: Dict[int, List[int]] = {g: [] for g in range(self.ngpus)}
        loads = [0.0] * self.ngpus
        for i in order:
            g = loads.index(min(loads))
            assignment[g].append(i)
            loads[g] += times[i]
        for g, domains in assignment.items():
            gpu = self.gpus[g]
            for i in domains:
                f, b = domain_costs[i]
                gpu.launch(
                    f"domain{i}", flops=f, bytes_moved=b, itemsize=itemsize,
                    payload=None if payloads is None else payloads[i],
                    nowait=True,
                )
            gpu.synchronize()
        return assignment

    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float:
        """Node completion time: the slowest GPU's clock."""
        return max(g.elapsed for g in self.gpus)

    def load_imbalance(self) -> float:
        """max/mean GPU busy time (1.0 = perfect balance)."""
        times = [g.elapsed for g in self.gpus]
        mean = sum(times) / len(times)
        if mean == 0.0:
            return 1.0
        return max(times) / mean

    def reset(self) -> None:
        """Zero every GPU clock and drop the peer-transfer log."""
        for g in self.gpus:
            g.reset()
        self.peer_transfers.clear()
