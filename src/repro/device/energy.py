"""Energy-to-solution modeling.

The paper targets "ultrafast and ultralow-power" applications; the
HPC-side counterpart is energy-to-solution.  This module attaches TDP
figures to the device specs and converts modeled step times into node
energy, reproducing the standard GPU-era argument: offloading costs more
*power* but much less *energy* because the run finishes so much sooner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.device.spec import (
    A100,
    EPYC_7543_CORE,
    EPYC_7543_SOCKET,
    PVC_MAX_1550,
    DeviceSpec,
)

#: Thermal design power (W) by device name -- datasheet values.
TDP_WATTS: Dict[str, float] = {
    A100.name: 400.0,
    EPYC_7543_CORE.name: 225.0 / 32.0,   # socket share
    EPYC_7543_SOCKET.name: 225.0,
    PVC_MAX_1550.name: 600.0,
}

#: Node-level overhead (DRAM, NICs, fans, VRs) in W.
NODE_OVERHEAD_WATTS = 300.0


def device_power(spec: DeviceSpec) -> float:
    """TDP of a device; raises for devices without a power figure."""
    try:
        return TDP_WATTS[spec.name]
    except KeyError:
        raise KeyError(
            f"no TDP registered for {spec.name!r}; known: {sorted(TDP_WATTS)}"
        ) from None


@dataclass(frozen=True)
class NodeEnergyModel:
    """Power/energy accounting for one node configuration.

    Parameters
    ----------
    ngpus:
        Accelerators per node (0 for the CPU-only configuration).
    gpu:
        Accelerator spec (ignored when ngpus = 0).
    cpu_sockets:
        Host CPU sockets.
    cpu:
        Socket-level CPU spec.
    """

    ngpus: int = 4
    gpu: DeviceSpec = A100
    cpu_sockets: int = 1
    cpu: DeviceSpec = EPYC_7543_SOCKET

    def __post_init__(self) -> None:
        if self.ngpus < 0 or self.cpu_sockets < 1:
            raise ValueError("ngpus must be >= 0 and cpu_sockets >= 1")

    @property
    def node_power(self) -> float:
        """Sustained node power draw (W)."""
        p = self.cpu_sockets * device_power(self.cpu) + NODE_OVERHEAD_WATTS
        if self.ngpus:
            p += self.ngpus * device_power(self.gpu)
        return p

    def energy_to_solution(self, step_time_s: float, nsteps: int = 1) -> float:
        """Node energy (J) for ``nsteps`` MD steps of ``step_time_s`` each."""
        if step_time_s <= 0 or nsteps < 0:
            raise ValueError("step_time_s must be positive, nsteps >= 0")
        return self.node_power * step_time_s * nsteps

    def energy_per_atom_step(self, step_time_s: float, natoms: int) -> float:
        """J per (atom x MD step) -- the energy analogue of the paper's
        'speed' metric."""
        if natoms < 1:
            raise ValueError("natoms must be positive")
        return self.energy_to_solution(step_time_s) / natoms
