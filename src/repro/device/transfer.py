"""Host-device transfer engine with a ledger.

Transfers are the quantity shadow dynamics is designed to eliminate; the
ledger records every modeled copy so tests and benchmarks can assert the
steady-state transfer volume (occupation numbers only) and quantify the
pinned-memory speedup of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.device.clock import SimClock
from repro.device.spec import LinkSpec, PCIE_GEN4


@dataclass(frozen=True)
class TransferRecord:
    """One modeled host-device copy."""

    direction: str  # "h2d" or "d2h"
    nbytes: int
    pinned: bool
    time: float
    tag: str


class TransferEngine:
    """Models copies over one host-device link and keeps a ledger."""

    def __init__(self, link: Optional[LinkSpec] = None, clock: Optional[SimClock] = None) -> None:
        self.link = link if link is not None else PCIE_GEN4
        self.clock = clock if clock is not None else SimClock()
        self.ledger: List[TransferRecord] = []

    def _copy(self, direction: str, nbytes: int, pinned: bool, tag: str) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        t = self.link.transfer_time(nbytes, pinned=pinned)
        self.clock.advance(t, name=f"{direction}:{tag}", category="transfer")
        self.ledger.append(
            TransferRecord(direction=direction, nbytes=nbytes, pinned=pinned, time=t, tag=tag)
        )
        return t

    def h2d(self, nbytes: int, pinned: bool = False, tag: str = "") -> float:
        """Host-to-device copy; returns the modeled time."""
        return self._copy("h2d", nbytes, pinned, tag)

    def d2h(self, nbytes: int, pinned: bool = False, tag: str = "") -> float:
        """Device-to-host copy; returns the modeled time."""
        return self._copy("d2h", nbytes, pinned, tag)

    def total_bytes(self, direction: Optional[str] = None) -> int:
        """Total bytes moved (optionally one direction only)."""
        return sum(
            r.nbytes for r in self.ledger if direction is None or r.direction == direction
        )

    def total_time(self) -> float:
        """Total modeled transfer time."""
        return sum(r.time for r in self.ledger)

    def reset(self) -> None:
        """Clear the transfer ledger."""
        self.ledger.clear()
