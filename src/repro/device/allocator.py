"""GPU-resident arrays with RAII semantics (Algorithm 6, ``OMPallocator``).

The paper keeps the large wave-function matrices Psi(t) and Psi(0)
persistently GPU-resident via a custom allocator whose constructor issues
``#pragma omp target enter data map(alloc)`` and whose destructor issues
``exit data map(delete)``.  :class:`DeviceArray` reproduces that contract:
creation allocates device memory (tracked against capacity), explicit
``update_to_device``/``update_from_device`` calls move data across the
modeled link, and ``free()``/context-manager exit releases the device
allocation.  A transfer ledger lets tests assert the shadow-dynamics
property: *zero* steady-state wave-function traffic.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.device.clock import SimClock
from repro.device.spec import DeviceSpec, LinkSpec
from repro.device.transfer import TransferEngine
from repro.resilience.faults import fault_point


class DeviceMemoryError(RuntimeError):
    """Raised on device out-of-memory, double free or use-after-free."""


class DeviceAllocator:
    """Tracks device-memory allocations against the device capacity."""

    def __init__(self, spec: DeviceSpec, clock: Optional[SimClock] = None,
                 link: Optional[LinkSpec] = None) -> None:
        self.spec = spec
        self.clock = clock if clock is not None else SimClock()
        self.transfer = TransferEngine(link, self.clock) if link is not None else None
        self.bytes_allocated = 0
        self.peak_bytes = 0
        self.total_allocs = 0
        self._live: Set[int] = set()

    def allocate(self, nbytes: int, tag: str = "") -> int:
        """Reserve ``nbytes`` of device memory; returns an allocation id."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if fault_point("device.oom") is not None:
            raise DeviceMemoryError(
                f"injected device OOM on {self.spec.name}: requested {nbytes} "
                f"bytes with {self.bytes_allocated} already allocated"
            )
        if self.bytes_allocated + nbytes > self.spec.mem_capacity:
            raise DeviceMemoryError(
                f"device OOM on {self.spec.name}: requested {nbytes} bytes with "
                f"{self.bytes_allocated} already allocated "
                f"(capacity {self.spec.mem_capacity:.3g})"
            )
        self.total_allocs += 1
        alloc_id = self.total_allocs
        self._live.add(alloc_id)
        self.bytes_allocated += nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_allocated)
        return alloc_id

    def deallocate(self, alloc_id: int, nbytes: int) -> None:
        """Release a previous allocation."""
        if alloc_id not in self._live:
            raise DeviceMemoryError(f"double free or invalid allocation id {alloc_id}")
        self._live.remove(alloc_id)
        self.bytes_allocated -= nbytes

    @property
    def live_allocations(self) -> int:
        return len(self._live)


class DeviceArray:
    """A host array with a persistent device mirror (``OMPallocator`` analogue).

    Parameters
    ----------
    host:
        The host NumPy array; the "device image" is this same storage (we
        have one physical memory), but residency, capacity accounting and
        transfer costs are modeled faithfully.
    allocator:
        The owning :class:`DeviceAllocator`.
    pinned:
        Whether the host buffer is pinned (faster transfers; Table II's
        final row).
    tag:
        Name used in the event log.
    """

    def __init__(
        self,
        host: np.ndarray,
        allocator: DeviceAllocator,
        pinned: bool = False,
        tag: str = "array",
    ) -> None:
        self.host = host
        self.allocator = allocator
        self.pinned = bool(pinned)
        self.tag = tag
        self.h2d_count = 0
        self.d2h_count = 0
        self._alloc_id: Optional[int] = allocator.allocate(host.nbytes, tag=tag)

    # -- residency ------------------------------------------------------ #
    @property
    def on_device(self) -> bool:
        return self._alloc_id is not None

    def _require_live(self) -> None:
        if self._alloc_id is None:
            raise DeviceMemoryError(f"use after free of device array {self.tag!r}")

    @property
    def data(self) -> np.ndarray:
        """The device-resident data (kernels operate on this)."""
        self._require_live()
        return self.host

    @property
    def nbytes(self) -> int:
        return self.host.nbytes

    # -- transfers (``omp target update``) ------------------------------ #
    def update_to_device(self) -> float:
        """Model a host-to-device update of the full buffer; returns time."""
        self._require_live()
        self.h2d_count += 1
        if self.allocator.transfer is None:
            return 0.0
        return self.allocator.transfer.h2d(self.host.nbytes, pinned=self.pinned,
                                           tag=self.tag)

    def update_from_device(self) -> float:
        """Model a device-to-host update of the full buffer; returns time."""
        self._require_live()
        self.d2h_count += 1
        if self.allocator.transfer is None:
            return 0.0
        return self.allocator.transfer.d2h(self.host.nbytes, pinned=self.pinned,
                                           tag=self.tag)

    # -- lifetime (``enter/exit data``) ---------------------------------- #
    def free(self) -> None:
        """Release the device mirror (the destructor of Algorithm 6)."""
        self._require_live()
        self.allocator.deallocate(self._alloc_id, self.host.nbytes)
        self._alloc_id = None

    def __enter__(self) -> "DeviceArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._alloc_id is not None:
            self.free()
