"""Virtual GPU substrate.

The paper runs the LFD subprogram on Nvidia A100 GPUs via OpenMP target
offload.  This container has no GPU, so the device package provides a
*virtual GPU*: it executes the identical NumPy kernel payloads (so every
offloaded code path is exercised for real) while charging wall-clock time
on a simulated clock from a roofline cost model built from datasheet
numbers (HBM2 bandwidth, SP/DP peak throughput, kernel-launch latency,
PCIe pageable/pinned transfer rates, stream overlap).  DESIGN.md section 2
documents this substitution.
"""

from repro.device.spec import (
    DeviceSpec,
    LinkSpec,
    A100,
    A100_PCIE,
    EPYC_7543_CORE,
    EPYC_7543_SOCKET,
    PCIE_GEN4,
)
from repro.device.clock import SimClock, ClockEvent
from repro.device.allocator import DeviceAllocator, DeviceArray, DeviceMemoryError
from repro.device.transfer import TransferEngine, TransferRecord
from repro.device.streams import Stream
from repro.device.kernels import KernelCostModel, KernelLauncher, KernelRecord
from repro.device.blas import DeviceBLAS
from repro.device.gpu import VirtualGPU

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "A100",
    "A100_PCIE",
    "EPYC_7543_CORE",
    "EPYC_7543_SOCKET",
    "PCIE_GEN4",
    "SimClock",
    "ClockEvent",
    "DeviceAllocator",
    "DeviceArray",
    "DeviceMemoryError",
    "TransferEngine",
    "TransferRecord",
    "Stream",
    "KernelCostModel",
    "KernelLauncher",
    "KernelRecord",
    "DeviceBLAS",
    "VirtualGPU",
]
