"""Hardware specifications of the Polaris node components.

All numbers are datasheet / paper values (Section IV), not fitted:

* Nvidia A100 (HGX, 40 GB PCIe variant also listed): 9.7 DP / 19.5 SP
  TFLOP/s, 1,555 GB/s HBM2 bandwidth.
* AMD EPYC Milan 7543P: 32 cores at 2.8 GHz; one core sustains roughly
  2.8 GHz x 16 DP flops/cycle = 44.8 GFLOP/s DP peak and ~20 GB/s of
  the shared DDR4 bandwidth.
* PCIe Gen4 x16: 64 GB/s bidirectional peak (paper's number); sustained
  pageable copies reach ~40% of peak, pinned ~70%.

One documented fudge factor exists: ``SCALAR_EFFICIENCY`` models how far
below peak a *scalar, layout-hostile* loop nest runs (the Algorithm 1
baseline); vectorized kernels are charged via the roofline directly.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Efficiency of un-vectorized, cache-hostile scalar code relative to the
#: core's peak flop rate.  This is the single CPU-side fudge factor; it is
#: shared by every modeled table (not tuned per experiment).
SCALAR_EFFICIENCY = 0.04


@dataclass(frozen=True)
class DeviceSpec:
    """A compute device (GPU or CPU core/socket) for the roofline model.

    Attributes
    ----------
    name:
        Human-readable device name.
    peak_flops_sp, peak_flops_dp:
        Peak single/double-precision throughput (flop/s).
    mem_bandwidth:
        Sustained main-memory bandwidth (bytes/s).
    mem_capacity:
        Device memory capacity (bytes).
    launch_latency:
        Per-kernel launch latency (s); zero for host execution.
    sync_overhead:
        Extra host-side cost of a blocking (synchronous) launch (s).
    is_gpu:
        True for accelerator devices.
    """

    name: str
    peak_flops_sp: float
    peak_flops_dp: float
    mem_bandwidth: float
    mem_capacity: float
    launch_latency: float = 0.0
    sync_overhead: float = 0.0
    is_gpu: bool = False

    def peak_flops(self, itemsize: int) -> float:
        """Peak flop rate for a given scalar size (4 -> SP, 8 -> DP)."""
        return self.peak_flops_sp if itemsize <= 4 else self.peak_flops_dp


@dataclass(frozen=True)
class LinkSpec:
    """A host-device (or device-device) link.

    ``bandwidth_pageable``/``bandwidth_pinned`` are the sustained copy
    rates for pageable and pinned host buffers; ``latency`` is the
    per-transfer setup cost.
    """

    name: str
    bandwidth_pageable: float
    bandwidth_pinned: float
    latency: float

    def transfer_time(self, nbytes: float, pinned: bool = False) -> float:
        """Modeled time of one transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bw = self.bandwidth_pinned if pinned else self.bandwidth_pageable
        return self.latency + nbytes / bw


#: Nvidia A100 on the HGX baseboard (Polaris): 60 GB HBM2 variant.
A100 = DeviceSpec(
    name="NVIDIA A100 (HGX)",
    peak_flops_sp=19.5e12,
    peak_flops_dp=9.7e12,
    mem_bandwidth=1.555e12,
    mem_capacity=60e9,
    launch_latency=6e-6,
    sync_overhead=4e-6,
    is_gpu=True,
)

#: Nvidia A100 PCIe variant (40 GB).
A100_PCIE = DeviceSpec(
    name="NVIDIA A100 (PCIe)",
    peak_flops_sp=19.5e12,
    peak_flops_dp=9.7e12,
    mem_bandwidth=1.555e12,
    mem_capacity=40e9,
    launch_latency=6e-6,
    sync_overhead=4e-6,
    is_gpu=True,
)

#: One core of the AMD EPYC Milan 7543P (paper's single-thread CPU baseline).
EPYC_7543_CORE = DeviceSpec(
    name="AMD EPYC 7543P (1 core)",
    peak_flops_sp=89.6e9,
    peak_flops_dp=44.8e9,
    mem_bandwidth=20e9,
    mem_capacity=512e9,
)

#: The full 32-core EPYC 7543P socket (for node-level comparisons, Fig. 4).
EPYC_7543_SOCKET = DeviceSpec(
    name="AMD EPYC 7543P (32 cores)",
    peak_flops_sp=2.87e12,
    peak_flops_dp=1.43e12,
    mem_bandwidth=204.8e9,
    mem_capacity=512e9,
)

#: PCIe Gen4 x16 host-device link (paper: 64 GB/s peak).
PCIE_GEN4 = LinkSpec(
    name="PCIe Gen4 x16",
    bandwidth_pageable=0.40 * 64e9 / 2.0,  # one direction, pageable sustained
    bandwidth_pinned=0.70 * 64e9 / 2.0,    # one direction, pinned sustained
    latency=10e-6,
)

#: NVLink between A100s on the HGX baseboard (600 GB/s aggregate).
NVLINK = LinkSpec(
    name="NVLink (A100 HGX)",
    bandwidth_pageable=600e9 / 2.0,
    bandwidth_pinned=600e9 / 2.0,
    latency=2e-6,
)


#: Intel Data Center GPU Max 1550 ("Ponte Vecchio"), the Aurora GPU the
#: paper's conclusion reports porting to (datasheet values; 2 stacks).
PVC_MAX_1550 = DeviceSpec(
    name="Intel Max 1550 (PVC)",
    peak_flops_sp=104e12,
    peak_flops_dp=52e12,
    mem_bandwidth=3.2768e12,
    mem_capacity=128e9,
    launch_latency=8e-6,
    sync_overhead=5e-6,
    is_gpu=True,
)

#: One core of the Aurora Xeon Max 9470 host CPU.
XEON_MAX_CORE = DeviceSpec(
    name="Intel Xeon Max 9470 (1 core)",
    peak_flops_sp=76.8e9,
    peak_flops_dp=38.4e9,
    mem_bandwidth=25e9,
    mem_capacity=512e9,
)
