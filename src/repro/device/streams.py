"""Execution streams for asynchronous kernel launches.

Models the ``nowait`` ablation of Table I: a synchronous launch makes the
host wait for launch latency + kernel + sync overhead per kernel, while an
asynchronous launch only pays a small enqueue cost on the host and lets
consecutive kernels pipeline on the device; the host pays the remaining
device time at the next synchronization point.
"""

from __future__ import annotations

from repro.device.clock import SimClock


#: Host-side cost of enqueuing an asynchronous kernel (s).
ENQUEUE_COST = 1.5e-6


class Stream:
    """One in-order device execution stream."""

    def __init__(self, clock: SimClock, name: str = "stream0") -> None:
        self.clock = clock
        self.name = name
        self.busy_until = 0.0
        self.kernels_enqueued = 0

    def enqueue(self, duration: float, launch_latency: float, name: str = "") -> None:
        """Enqueue a kernel of modeled ``duration`` without blocking the host.

        The host clock advances only by the enqueue cost; the device-side
        completion time accumulates on ``busy_until``.
        """
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        self.clock.advance(ENQUEUE_COST, name=f"enqueue:{name}", category="launch")
        start = max(self.busy_until, self.clock.now + launch_latency)
        self.busy_until = start + duration
        self.kernels_enqueued += 1

    def synchronize(self, name: str = "sync") -> float:
        """Block the host until all enqueued work completes.

        Returns the wait time charged.
        """
        return self.clock.advance_to(self.busy_until, name=name, category="sync")

    @property
    def idle(self) -> bool:
        return self.clock.now >= self.busy_until
