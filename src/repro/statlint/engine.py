"""dclint engine: parse modules, run rules, apply suppressions.

One :class:`ModuleContext` is built per file: the AST plus the shared
derived facts every rule needs (numpy import aliases, parent links,
enclosing-function qualnames, loop ancestry, per-line suppressions).
Rules are pure functions of a context producing raw findings; the engine
stamps severities, drops suppressed findings, and fingerprints the rest
so the baseline survives line-number drift.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.statlint.config import LintConfig

_SUPPRESS_RE = re.compile(r"#\s*dclint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*dclint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          # POSIX-style path as reported
    line: int          # 1-based
    col: int           # 0-based
    message: str
    severity: str      # "error" | "warning" | "note"
    context: str       # enclosing function qualname, or "<module>"
    snippet: str       # stripped source line
    fingerprint: str   # stable across line drift
    occurrence: int    # disambiguates identical (rule, context, snippet)

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.fingerprint, self.rule, self.occurrence)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "context": self.context,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "occurrence": self.occurrence,
        }


class ModuleContext:
    """Parsed module plus the shared facts dclint rules consume."""

    def __init__(self, relpath: str, source: str, config: LintConfig) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.config = config
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.relpath)
        self.parents: Dict[int, ast.AST] = {}
        self.qualnames: Dict[int, str] = {}
        self._index_tree()
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.from_numpy_names: Dict[str, str] = {}
        self._collect_imports()
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        self._collect_suppressions()

    # ------------------------------------------------------------- #
    # tree indexing
    # ------------------------------------------------------------- #
    def _index_tree(self) -> None:
        def visit(node: ast.AST, parent: Optional[ast.AST], qual: str) -> None:
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node
                child_qual = qual
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_qual = f"{qual}.{child.name}" if qual else child.name
                elif isinstance(child, ast.ClassDef):
                    child_qual = f"{qual}.{child.name}" if qual else child.name
                self.qualnames[id(child)] = child_qual or "<module>"
                visit(child, node, child_qual)

        self.qualnames[id(self.tree)] = "<module>"
        visit(self.tree, None, "")

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module root)."""
        return self.parents.get(id(node))

    def qualname(self, node: ast.AST) -> str:
        """Dotted function/class qualname enclosing ``node``."""
        return self.qualnames.get(id(node), "<module>")

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from the node's parent up to the module root."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        """The innermost function definition containing ``node``, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def loop_depth(self, node: ast.AST) -> int:
        """``for``/``while`` ancestors between the node and its function."""
        depth = 0
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
                depth += 1
            elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return depth

    def statement_of(self, node: ast.AST) -> ast.AST:
        """The nearest statement ancestor (or the node itself)."""
        cur: ast.AST = node
        while not isinstance(cur, ast.stmt):
            parent = self.parent(cur)
            if parent is None:
                return cur
            cur = parent
        return cur

    # ------------------------------------------------------------- #
    # numpy alias resolution
    # ------------------------------------------------------------- #
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy.random" and alias.asname:
                        # ``import numpy.random as nr``: nr IS the random
                        # module.  Plain ``import numpy.random`` binds
                        # "numpy" (the package), handled below.
                        self.numpy_random_aliases.add(alias.asname)
                    elif alias.name == "numpy" or alias.name.startswith("numpy."):
                        self.numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if alias.name == "random":
                            self.numpy_random_aliases.add(local)
                        else:
                            self.from_numpy_names[local] = alias.name
                elif node.module == "numpy.random":
                    for alias in node.names:
                        local = alias.asname or alias.name
                        self.from_numpy_names[local] = f"random.{alias.name}"

    def numpy_call_name(self, func: ast.expr) -> Optional[str]:
        """Resolve a call's func to its numpy name ("zeros", "random.rand").

        Returns ``None`` when the callee is not (recognizably) numpy.
        """
        if isinstance(func, ast.Name):
            return self.from_numpy_names.get(func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id in self.numpy_aliases:
                    return func.attr
                if value.id in self.numpy_random_aliases:
                    return f"random.{func.attr}"
            elif isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
                # np.random.<fn>, np.fft.<fn>, ...
                if value.value.id in self.numpy_aliases:
                    return f"{value.attr}.{func.attr}"
        return None

    # ------------------------------------------------------------- #
    # suppressions
    # ------------------------------------------------------------- #
    def _collect_suppressions(self) -> None:
        import io

        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.source).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_FILE_RE.search(tok.string)
            if m:
                self.file_suppressions.update(_parse_codes(m.group(1)))
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m:
                codes = _parse_codes(m.group(1))
                self.line_suppressions.setdefault(tok.start[0], set()).update(codes)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether an inline/file suppression covers ``code`` at ``line``."""
        if code in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        for probe in (line, line - 1):
            codes = self.line_suppressions.get(probe)
            if codes and (code in codes or "ALL" in codes):
                return True
        return False

    def source_line(self, line: int) -> str:
        """Stripped source text of a 1-based line ("" out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _parse_codes(raw: str) -> Set[str]:
    return {c.strip().upper() for c in raw.split(",") if c.strip()}


@dataclass
class LintResult:
    """All findings of one run, split against an optional baseline."""

    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)  # fingerprints
    errors: List[str] = field(default_factory=list)          # unparsable files

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        if any(f.severity == "error" for f in self.new_findings):
            return 1
        return 0


def _fingerprint(rule: str, relpath: str, context: str, snippet: str) -> str:
    payload = f"{rule}|{relpath}|{context}|{snippet}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def lint_source(
    source: str,
    relpath: str,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run every enabled per-module rule over one module's source text."""
    config = config or LintConfig()
    ctx = ModuleContext(relpath, source, config)
    return _lint_module(ctx, config)


def _lint_module(ctx: ModuleContext, config: LintConfig) -> List[Finding]:
    """Per-module rules over a prebuilt context."""
    from repro.statlint.rules import ALL_RULES

    raw: List[Tuple[str, int, int, str]] = []
    for rule in ALL_RULES:
        if not config.rule_enabled(rule.code):
            continue
        if not rule.applies_to(ctx.relpath, config):
            continue
        for line, col, message in rule.check(ctx):
            raw.append((rule.code, line, col, message))
    return _finalize_raw(ctx, config, raw)


def _finalize_raw(
    ctx: ModuleContext,
    config: LintConfig,
    raw: List[Tuple[str, int, int, str]],
) -> List[Finding]:
    """Order, suppress, fingerprint and severity-stamp raw findings.

    Occurrence numbers disambiguate identical (rule, context, snippet)
    triples within one file; module and project rules have disjoint
    codes, so their fingerprint spaces never collide.
    """
    raw.sort(key=lambda item: (item[1], item[2], item[0]))
    counts: Dict[str, int] = {}
    findings: List[Finding] = []
    for code, line, col, message in raw:
        if ctx.is_suppressed(code, line):
            continue
        snippet = ctx.source_line(line)
        context = _context_at(ctx, line)
        fp = _fingerprint(code, ctx.relpath, context, snippet)
        occ = counts.get(fp, 0)
        counts[fp] = occ + 1
        findings.append(
            Finding(
                rule=code,
                path=ctx.relpath,
                line=line,
                col=col,
                message=message,
                severity=config.severity_for(code),
                context=context,
                snippet=snippet,
                fingerprint=fp,
                occurrence=occ,
            )
        )
    return findings


def finding_from_dict(data: Dict[str, object]) -> Finding:
    """Rebuild a Finding from its ``to_dict`` form (cache reload path)."""
    return Finding(
        rule=str(data["rule"]),
        path=str(data["path"]),
        line=int(data["line"]),        # type: ignore[call-overload]
        col=int(data["col"]),          # type: ignore[call-overload]
        message=str(data["message"]),
        severity=str(data["severity"]),
        context=str(data["context"]),
        snippet=str(data["snippet"]),
        fingerprint=str(data["fingerprint"]),
        occurrence=int(data["occurrence"]),  # type: ignore[call-overload]
    )


def lint_project(
    contexts: Sequence[ModuleContext], config: LintConfig
) -> List[Finding]:
    """Run the enabled project-scope rules over all parsed modules."""
    from repro.statlint.project import build_project
    from repro.statlint.project_rules import PROJECT_RULES

    enabled = [r for r in PROJECT_RULES if config.rule_enabled(r.code)]
    if not enabled or not contexts:
        return []
    pctx = build_project(contexts, config)
    by_file: Dict[str, List[Tuple[str, int, int, str]]] = {}
    for rule in enabled:
        for relpath, line, col, message in rule.check_project(pctx):
            by_file.setdefault(relpath, []).append(
                (rule.code, line, col, message)
            )
    ctx_map = {ctx.relpath: ctx for ctx in contexts}
    findings: List[Finding] = []
    for relpath in sorted(by_file):
        ctx = ctx_map.get(relpath)
        if ctx is None:  # pragma: no cover - rules only cite indexed files
            continue
        findings.extend(_finalize_raw(ctx, config, by_file[relpath]))
    return findings


def _context_at(ctx: ModuleContext, line: int) -> str:
    """Qualname of the innermost function/class whose span covers ``line``."""
    best = "<module>"
    best_span = None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if node.lineno <= line <= end:
            span = end - node.lineno
            if best_span is None or span <= best_span:
                best_span = span
                best = ctx.qualname(node)
    return best


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield .py files under the given files/directories, sorted."""
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            rc = c.resolve()
            if rc not in seen:
                seen.add(rc)
                yield c


def display_path(path: Path, root: Optional[Path] = None) -> str:
    """Path as reported in findings: relative to root/cwd when possible."""
    root = root or Path.cwd()
    try:
        rel = path.resolve().relative_to(root.resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def _finding_sort_key(f: Finding) -> Tuple[str, int, int, str, int]:
    return (f.path, f.line, f.col, f.rule, f.occurrence)


def _lint_file_worker(
    task: Tuple[str, str, LintConfig],
) -> Tuple[str, Optional[List[Finding]], Optional[str]]:
    """Process-pool worker: per-module lint of one already-read source."""
    relpath, source, config = task
    try:
        return relpath, lint_source(source, relpath, config), None
    except SyntaxError as exc:
        return relpath, None, f"{relpath}: syntax error ({exc.msg} @ {exc.lineno})"


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
    jobs: Optional[int] = None,
    cache_path: Optional[Union[str, Path]] = None,
) -> LintResult:
    """Lint every python file under ``paths``; no baseline applied yet.

    Runs the per-module rules over each file, then the project-scope
    rules (DCL012-DCL015) over all of them together.  ``jobs`` > 1
    fans the per-module pass out over a process pool; ``cache_path``
    enables the content-fingerprint incremental cache.  Both knobs are
    observationally pure: serial/parallel and cold/warm runs produce
    identical findings (the final ordering is a global deterministic
    sort, independent of completion order).
    """
    config = config or LintConfig()
    if jobs is None:
        jobs = config.jobs
    if cache_path is None and config.cache:
        cache_path = config.cache
    result = LintResult()

    # -- read every file once; fingerprint what we could read -------- #
    sources: Dict[str, str] = {}
    file_fps: Dict[str, str] = {}
    errors_map: Dict[str, str] = {}
    read_errors: Dict[str, str] = {}
    order: List[str] = []
    for path in iter_python_files(paths):
        relpath = display_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            read_errors[relpath] = f"{relpath}: unreadable ({exc})"
            continue
        from repro.statlint.cache import source_fingerprint

        order.append(relpath)
        sources[relpath] = source
        file_fps[relpath] = source_fingerprint(source)

    cache = None
    if cache_path is not None:
        from repro.statlint.cache import LintCache

        cache = LintCache(Path(cache_path), config)

    # -- full hit: rebuild everything from the cache, zero parsing --- #
    if cache is not None and cache.full_hit(file_fps):
        findings: List[Finding] = []
        for relpath in order:
            entry = cache.files[relpath]
            err = entry.get("error")
            if err is not None:
                errors_map[relpath] = str(err)
                continue
            stored = entry.get("findings")
            if isinstance(stored, list):
                findings.extend(
                    finding_from_dict(d) for d in stored if isinstance(d, dict)
                )
        stored_project = cache.project.get("findings")
        if isinstance(stored_project, list):
            findings.extend(
                finding_from_dict(d)
                for d in stored_project
                if isinstance(d, dict)
            )
        return _assemble(result, findings, errors_map, read_errors)

    # -- per-module pass: cache hits reused, the rest (re)linted ----- #
    module_findings: Dict[str, List[Finding]] = {}
    contexts: Dict[str, ModuleContext] = {}
    need_lint: List[str] = []
    for relpath in order:
        entry = cache.file_entry(relpath, file_fps[relpath]) if cache else None
        if entry is None:
            need_lint.append(relpath)
            continue
        err = entry.get("error")
        if err is not None:
            errors_map[relpath] = str(err)
            continue
        stored = entry.get("findings")
        module_findings[relpath] = [
            finding_from_dict(d)
            for d in (stored if isinstance(stored, list) else [])
            if isinstance(d, dict)
        ]

    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and len(need_lint) > 1:
        from concurrent.futures import ProcessPoolExecutor

        tasks = [(rel, sources[rel], config) for rel in need_lint]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for relpath, found, err in pool.map(_lint_file_worker, tasks):
                if err is not None:
                    errors_map[relpath] = err
                else:
                    module_findings[relpath] = found or []
    else:
        for relpath in need_lint:
            try:
                ctx = ModuleContext(relpath, sources[relpath], config)
            except SyntaxError as exc:
                errors_map[relpath] = (
                    f"{relpath}: syntax error ({exc.msg} @ {exc.lineno})"
                )
                continue
            contexts[relpath] = ctx
            module_findings[relpath] = _lint_module(ctx, config)

    # -- project pass needs a context for every parseable module ----- #
    project_findings: List[Finding] = []
    if _project_rules_enabled(config):
        for relpath in order:
            if relpath in contexts or relpath in errors_map:
                continue
            if relpath not in module_findings:
                continue  # unreadable
            try:
                contexts[relpath] = ModuleContext(
                    relpath, sources[relpath], config
                )
            except SyntaxError:  # pragma: no cover - caught above
                continue
        ordered = [contexts[r] for r in order if r in contexts]
        project_findings = lint_project(ordered, config)

    if cache is not None:
        cache.store(
            file_fps,
            {
                rel: [f.to_dict() for f in found]
                for rel, found in module_findings.items()
            },
            errors_map,
            [f.to_dict() for f in project_findings],
        )
        cache.save()

    all_findings = [
        f for rel in order for f in module_findings.get(rel, [])
    ] + project_findings
    return _assemble(result, all_findings, errors_map, read_errors)


def _project_rules_enabled(config: LintConfig) -> bool:
    from repro.statlint.project_rules import PROJECT_RULES

    return any(config.rule_enabled(r.code) for r in PROJECT_RULES)


def _assemble(
    result: LintResult,
    findings: List[Finding],
    errors_map: Dict[str, str],
    read_errors: Dict[str, str],
) -> LintResult:
    result.findings = sorted(findings, key=_finding_sort_key)
    result.new_findings = list(result.findings)
    merged = dict(errors_map)
    merged.update(read_errors)
    result.errors = [merged[rel] for rel in sorted(merged)]
    return result
