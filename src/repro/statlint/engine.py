"""dclint engine: parse modules, run rules, apply suppressions.

One :class:`ModuleContext` is built per file: the AST plus the shared
derived facts every rule needs (numpy import aliases, parent links,
enclosing-function qualnames, loop ancestry, per-line suppressions).
Rules are pure functions of a context producing raw findings; the engine
stamps severities, drops suppressed findings, and fingerprints the rest
so the baseline survives line-number drift.
"""

from __future__ import annotations

import ast
import hashlib
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.statlint.config import LintConfig

_SUPPRESS_RE = re.compile(r"#\s*dclint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*dclint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          # POSIX-style path as reported
    line: int          # 1-based
    col: int           # 0-based
    message: str
    severity: str      # "error" | "warning" | "note"
    context: str       # enclosing function qualname, or "<module>"
    snippet: str       # stripped source line
    fingerprint: str   # stable across line drift
    occurrence: int    # disambiguates identical (rule, context, snippet)

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.fingerprint, self.rule, self.occurrence)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "context": self.context,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "occurrence": self.occurrence,
        }


class ModuleContext:
    """Parsed module plus the shared facts dclint rules consume."""

    def __init__(self, relpath: str, source: str, config: LintConfig) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.config = config
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.relpath)
        self.parents: Dict[int, ast.AST] = {}
        self.qualnames: Dict[int, str] = {}
        self._index_tree()
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.from_numpy_names: Dict[str, str] = {}
        self._collect_imports()
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        self._collect_suppressions()

    # ------------------------------------------------------------- #
    # tree indexing
    # ------------------------------------------------------------- #
    def _index_tree(self) -> None:
        def visit(node: ast.AST, parent: Optional[ast.AST], qual: str) -> None:
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node
                child_qual = qual
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_qual = f"{qual}.{child.name}" if qual else child.name
                elif isinstance(child, ast.ClassDef):
                    child_qual = f"{qual}.{child.name}" if qual else child.name
                self.qualnames[id(child)] = child_qual or "<module>"
                visit(child, node, child_qual)

        self.qualnames[id(self.tree)] = "<module>"
        visit(self.tree, None, "")

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module root)."""
        return self.parents.get(id(node))

    def qualname(self, node: ast.AST) -> str:
        """Dotted function/class qualname enclosing ``node``."""
        return self.qualnames.get(id(node), "<module>")

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from the node's parent up to the module root."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        """The innermost function definition containing ``node``, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def loop_depth(self, node: ast.AST) -> int:
        """``for``/``while`` ancestors between the node and its function."""
        depth = 0
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
                depth += 1
            elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return depth

    def statement_of(self, node: ast.AST) -> ast.AST:
        """The nearest statement ancestor (or the node itself)."""
        cur: ast.AST = node
        while not isinstance(cur, ast.stmt):
            parent = self.parent(cur)
            if parent is None:
                return cur
            cur = parent
        return cur

    # ------------------------------------------------------------- #
    # numpy alias resolution
    # ------------------------------------------------------------- #
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy.random" and alias.asname:
                        # ``import numpy.random as nr``: nr IS the random
                        # module.  Plain ``import numpy.random`` binds
                        # "numpy" (the package), handled below.
                        self.numpy_random_aliases.add(alias.asname)
                    elif alias.name == "numpy" or alias.name.startswith("numpy."):
                        self.numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if alias.name == "random":
                            self.numpy_random_aliases.add(local)
                        else:
                            self.from_numpy_names[local] = alias.name
                elif node.module == "numpy.random":
                    for alias in node.names:
                        local = alias.asname or alias.name
                        self.from_numpy_names[local] = f"random.{alias.name}"

    def numpy_call_name(self, func: ast.expr) -> Optional[str]:
        """Resolve a call's func to its numpy name ("zeros", "random.rand").

        Returns ``None`` when the callee is not (recognizably) numpy.
        """
        if isinstance(func, ast.Name):
            return self.from_numpy_names.get(func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id in self.numpy_aliases:
                    return func.attr
                if value.id in self.numpy_random_aliases:
                    return f"random.{func.attr}"
            elif isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
                # np.random.<fn>, np.fft.<fn>, ...
                if value.value.id in self.numpy_aliases:
                    return f"{value.attr}.{func.attr}"
        return None

    # ------------------------------------------------------------- #
    # suppressions
    # ------------------------------------------------------------- #
    def _collect_suppressions(self) -> None:
        import io

        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.source).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_FILE_RE.search(tok.string)
            if m:
                self.file_suppressions.update(_parse_codes(m.group(1)))
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m:
                codes = _parse_codes(m.group(1))
                self.line_suppressions.setdefault(tok.start[0], set()).update(codes)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether an inline/file suppression covers ``code`` at ``line``."""
        if code in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        for probe in (line, line - 1):
            codes = self.line_suppressions.get(probe)
            if codes and (code in codes or "ALL" in codes):
                return True
        return False

    def source_line(self, line: int) -> str:
        """Stripped source text of a 1-based line ("" out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _parse_codes(raw: str) -> Set[str]:
    return {c.strip().upper() for c in raw.split(",") if c.strip()}


@dataclass
class LintResult:
    """All findings of one run, split against an optional baseline."""

    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)  # fingerprints
    errors: List[str] = field(default_factory=list)          # unparsable files

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        if any(f.severity == "error" for f in self.new_findings):
            return 1
        return 0


def _fingerprint(rule: str, relpath: str, context: str, snippet: str) -> str:
    payload = f"{rule}|{relpath}|{context}|{snippet}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def lint_source(
    source: str,
    relpath: str,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run every enabled rule over one module's source text."""
    from repro.statlint.rules import ALL_RULES

    config = config or LintConfig()
    ctx = ModuleContext(relpath, source, config)
    raw: List[Tuple[str, int, int, str]] = []
    for rule in ALL_RULES:
        if not config.rule_enabled(rule.code):
            continue
        if not rule.applies_to(ctx.relpath, config):
            continue
        for line, col, message in rule.check(ctx):
            raw.append((rule.code, line, col, message))

    # Stable ordering, then occurrence-number duplicates that share a
    # fingerprint (identical snippet in the same function).
    raw.sort(key=lambda item: (item[1], item[2], item[0]))
    counts: Dict[str, int] = {}
    findings: List[Finding] = []
    for code, line, col, message in raw:
        if ctx.is_suppressed(code, line):
            continue
        snippet = ctx.source_line(line)
        context = _context_at(ctx, line)
        fp = _fingerprint(code, ctx.relpath, context, snippet)
        occ = counts.get(fp, 0)
        counts[fp] = occ + 1
        findings.append(
            Finding(
                rule=code,
                path=ctx.relpath,
                line=line,
                col=col,
                message=message,
                severity=config.severity_for(code),
                context=context,
                snippet=snippet,
                fingerprint=fp,
                occurrence=occ,
            )
        )
    return findings


def _context_at(ctx: ModuleContext, line: int) -> str:
    """Qualname of the innermost function/class whose span covers ``line``."""
    best = "<module>"
    best_span = None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if node.lineno <= line <= end:
            span = end - node.lineno
            if best_span is None or span <= best_span:
                best_span = span
                best = ctx.qualname(node)
    return best


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield .py files under the given files/directories, sorted."""
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            rc = c.resolve()
            if rc not in seen:
                seen.add(rc)
                yield c


def display_path(path: Path, root: Optional[Path] = None) -> str:
    """Path as reported in findings: relative to root/cwd when possible."""
    root = root or Path.cwd()
    try:
        rel = path.resolve().relative_to(root.resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint every python file under ``paths``; no baseline applied yet."""
    config = config or LintConfig()
    result = LintResult()
    for path in iter_python_files(paths):
        relpath = display_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.errors.append(f"{relpath}: unreadable ({exc})")
            continue
        try:
            findings = lint_source(source, relpath, config)
        except SyntaxError as exc:
            result.errors.append(f"{relpath}: syntax error ({exc.msg} @ {exc.lineno})")
            continue
        result.findings.extend(findings)
    result.new_findings = list(result.findings)
    return result
