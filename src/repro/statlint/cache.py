"""Content-fingerprint incremental cache for the lint engine.

The cache keys every stored result on three fingerprints:

* a **tool fingerprint** -- a hash over the statlint package's own
  source files, so editing any rule or the engine invalidates
  everything;
* a **config fingerprint** -- a hash of every behavior-affecting
  :class:`~repro.statlint.config.LintConfig` field (selection, severity
  overrides, path scopes), so changing what the lint *means* also
  invalidates;
* per-file **content fingerprints** (sha256 of the source text), plus a
  **project fingerprint** derived from all of them, because the
  interprocedural rules (DCL012-DCL015) can change their verdict about
  file A when only file B changed.

On a full hit -- every file fingerprint unchanged -- findings are
reconstructed from the stored dicts without parsing a single module,
which is what makes a warm full-repo lint land well under half the cold
wall time.  On a partial hit, unchanged files reuse their per-module
findings and only the project pass re-runs.  Writes are atomic
(tmp + rename) so an interrupted lint never tears the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.statlint.config import LintConfig

CACHE_VERSION = 1

_tool_fp_memo: Optional[str] = None


def tool_fingerprint() -> str:
    """Hash of the statlint package's own sources (memoized per process)."""
    global _tool_fp_memo
    if _tool_fp_memo is None:
        digest = hashlib.sha256()
        pkg_dir = Path(__file__).resolve().parent
        for src in sorted(pkg_dir.glob("*.py")):
            digest.update(src.name.encode())
            try:
                digest.update(src.read_bytes())
            except OSError:  # pragma: no cover
                digest.update(b"?")
        _tool_fp_memo = digest.hexdigest()[:16]
    return _tool_fp_memo


def config_fingerprint(config: LintConfig) -> str:
    """Hash of every behavior-affecting config field."""
    payload = json.dumps(config.fingerprint_payload(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def source_fingerprint(source: str) -> str:
    """Content hash of one module's source text."""
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()[:16]


def project_fingerprint(file_fps: Mapping[str, str]) -> str:
    """Combined hash over every (relpath, content-fingerprint) pair."""
    digest = hashlib.sha256()
    for relpath in sorted(file_fps):
        digest.update(f"{relpath}:{file_fps[relpath]}\n".encode())
    return digest.hexdigest()[:16]


class LintCache:
    """One on-disk cache file, loaded leniently and saved atomically."""

    def __init__(self, path: Path, config: LintConfig) -> None:
        self.path = path
        self.tool_fp = tool_fingerprint()
        self.config_fp = config_fingerprint(config)
        #: relpath -> {"fp": str, "findings": [dict]} | {"fp": str, "error": str}
        self.files: Dict[str, Dict[str, object]] = {}
        #: {"fp": str, "findings": [dict]}
        self.project: Dict[str, object] = {}
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("version") != CACHE_VERSION:
            return
        if raw.get("tool") != self.tool_fp or raw.get("config") != self.config_fp:
            return
        files = raw.get("files")
        project = raw.get("project")
        if isinstance(files, dict):
            self.files = {
                str(k): v for k, v in files.items() if isinstance(v, dict)
            }
        if isinstance(project, dict):
            self.project = project

    # ------------------------------------------------------------- #
    def file_entry(self, relpath: str, fp: str) -> Optional[Dict[str, object]]:
        """The stored entry for ``relpath`` iff its content still matches."""
        entry = self.files.get(relpath)
        if entry is not None and entry.get("fp") == fp:
            return entry
        return None

    def full_hit(self, file_fps: Mapping[str, str]) -> bool:
        """Whether *every* file (and the file set itself) is unchanged."""
        if set(self.files) != set(file_fps):
            return False
        if any(
            self.files[rel].get("fp") != fp for rel, fp in file_fps.items()
        ):
            return False
        return self.project.get("fp") == project_fingerprint(file_fps)

    def store(
        self,
        file_fps: Mapping[str, str],
        module_findings: Mapping[str, List[Dict[str, object]]],
        errors: Mapping[str, str],
        project_findings: List[Dict[str, object]],
    ) -> None:
        """Replace the cache contents with this run's results."""
        self.files = {}
        for relpath, fp in file_fps.items():
            entry: Dict[str, object] = {"fp": fp}
            if relpath in errors:
                entry["error"] = errors[relpath]
            else:
                entry["findings"] = module_findings.get(relpath, [])
            self.files[relpath] = entry
        self.project = {
            "fp": project_fingerprint(file_fps),
            "findings": project_findings,
        }

    def save(self) -> None:
        """Atomically persist the cache (best effort; failures ignored)."""
        payload = {
            "version": CACHE_VERSION,
            "tool": self.tool_fp,
            "config": self.config_fp,
            "files": self.files,
            "project": self.project,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, sort_keys=True)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:  # pragma: no cover - cache is best effort
            pass
