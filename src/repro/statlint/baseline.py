"""Committed finding baseline: legacy/intentional findings don't fail CI.

The baseline is a JSON document keyed by content fingerprints (rule +
path + enclosing function + normalized source line) rather than line
numbers, so unrelated edits above a finding do not invalidate it.  Each
entry may carry a human ``justification`` explaining why the finding is
intentionally kept -- re-baselining preserves justifications of entries
that survive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.statlint.engine import Finding, LintResult

BASELINE_VERSION = 1


@dataclass
class BaselineEntry:
    """One accepted finding, addressed by fingerprint + occurrence."""

    fingerprint: str
    rule: str
    path: str
    context: str
    snippet: str
    occurrence: int = 0
    line: int = 0                # informational; not used for matching
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.fingerprint, self.rule, self.occurrence)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form of this entry."""
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
            "snippet": self.snippet,
            "occurrence": self.occurrence,
            "line": self.line,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The full set of accepted findings."""

    entries: List[BaselineEntry] = field(default_factory=list)

    def __contains__(self, finding: Finding) -> bool:
        return finding.key in self._index()

    def _index(self) -> Dict[Tuple[str, str, int], BaselineEntry]:
        return {e.key: e for e in self.entries}

    def justification_for(self, finding: Finding) -> str:
        """The stored justification for a baselined finding ("" if none)."""
        entry = self._index().get(finding.key)
        return entry.justification if entry else ""

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        previous: "Baseline" | None = None,
        covered_rules: Iterable[str] | None = None,
    ) -> "Baseline":
        """Baseline the given findings, keeping surviving justifications.

        ``covered_rules`` names the rule codes this run actually
        executed.  Previous entries for rules *outside* that set are
        preserved verbatim: re-baselining with ``--select DCL012`` (the
        new-rule adoption path) must not silently drop the DCL001-011
        entries -- and their justifications -- that the selective run
        never re-checked.  ``None`` means every rule ran (the
        historical behavior: the new findings replace everything).

        Justifications match by exact key first, then fall back to
        (rule, path, snippet) so a finding whose enclosing function was
        renamed keeps its explanation instead of silently losing it.
        """
        prev_just: Dict[Tuple[str, str, int], str] = {}
        prev_fuzzy: Dict[Tuple[str, str, str], str] = {}
        if previous is not None:
            prev_just = {e.key: e.justification for e in previous.entries}
            for e in previous.entries:
                if e.justification:
                    prev_fuzzy.setdefault(
                        (e.rule, e.path, e.snippet), e.justification
                    )
        entries = [
            BaselineEntry(
                fingerprint=f.fingerprint,
                rule=f.rule,
                path=f.path,
                context=f.context,
                snippet=f.snippet,
                occurrence=f.occurrence,
                line=f.line,
                justification=prev_just.get(f.key)
                or prev_fuzzy.get((f.rule, f.path, f.snippet), ""),
            )
            for f in findings
        ]
        if previous is not None and covered_rules is not None:
            covered = {c.strip().upper() for c in covered_rules}
            current_keys = {e.key for e in entries}
            for e in previous.entries:
                if e.rule.upper() not in covered and e.key not in current_keys:
                    entries.append(e)
        entries.sort(key=lambda e: (e.path, e.line, e.rule, e.occurrence))
        return cls(entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read and validate a baseline JSON document."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        version = doc.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = []
        for raw in doc.get("findings", []):
            entries.append(
                BaselineEntry(
                    fingerprint=str(raw["fingerprint"]),
                    rule=str(raw["rule"]),
                    path=str(raw.get("path", "")),
                    context=str(raw.get("context", "")),
                    snippet=str(raw.get("snippet", "")),
                    occurrence=int(raw.get("occurrence", 0)),
                    line=int(raw.get("line", 0)),
                    justification=str(raw.get("justification", "")),
                )
            )
        return cls(entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline document (version, tool, findings) as JSON."""
        doc = {
            "version": BASELINE_VERSION,
            "tool": "dclint",
            "findings": [e.to_dict() for e in self.entries],
        }
        Path(path).write_text(
            json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )


def apply_baseline(result: LintResult, baseline: Baseline) -> LintResult:
    """Split a result's findings into new vs baselined; note stale entries."""
    seen_keys = {f.key for f in result.findings}
    result.new_findings = [f for f in result.findings if f not in baseline]
    result.baselined = [f for f in result.findings if f in baseline]
    result.stale_baseline = [
        e.fingerprint for e in baseline.entries if e.key not in seen_keys
    ]
    return result
