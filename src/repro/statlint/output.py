"""Finding renderers: human text, machine JSON, and SARIF 2.1.0.

SARIF output follows the OASIS sarif-2.1.0 schema closely enough for
GitHub code-scanning upload: one run, one driver with the full DCL rule
metadata, one result per *new* finding (baselined findings are emitted
with ``"baselineState": "unchanged"`` so dashboards can still see them).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.statlint.baseline import Baseline
from repro.statlint.engine import Finding, LintResult
from repro.statlint.rules import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "dclint"
TOOL_VERSION = "1.0.0"

_SARIF_LEVEL = {"error": "error", "warning": "warning", "note": "note"}


def render_text(result: LintResult, baseline: Optional[Baseline] = None) -> str:
    """Grep-friendly ``path:line:col: CODE message`` report + summary."""
    out: List[str] = []
    for f in result.new_findings:
        out.append(
            f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.severity}] {f.message}"
        )
        if f.snippet:
            out.append(f"    {f.snippet}")
    if result.baselined:
        out.append("")
        out.append(f"{len(result.baselined)} baselined finding(s) suppressed:")
        for f in result.baselined:
            just = baseline.justification_for(f) if baseline else ""
            suffix = f"  -- {just}" if just else ""
            out.append(f"    {f.path}:{f.line}: {f.rule} ({f.context}){suffix}")
    if result.stale_baseline:
        out.append("")
        out.append(
            f"note: {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} no longer "
            f"match any finding (re-baseline to prune)"
        )
    for err in result.errors:
        out.append(f"ERROR: {err}")
    out.append("")
    new_errors = sum(1 for f in result.new_findings if f.severity == "error")
    new_warn = len(result.new_findings) - new_errors
    out.append(
        f"dclint: {new_errors} new error(s), {new_warn} new warning/note(s), "
        f"{len(result.baselined)} baselined"
    )
    return "\n".join(out)


def render_json(result: LintResult, baseline: Optional[Baseline] = None) -> str:
    """Machine-readable JSON report (new + baselined findings, exit code)."""
    doc = {
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "new_findings": [f.to_dict() for f in result.new_findings],
        "baselined": [
            dict(
                f.to_dict(),
                justification=(baseline.justification_for(f) if baseline else ""),
            )
            for f in result.baselined
        ],
        "stale_baseline": list(result.stale_baseline),
        "errors": list(result.errors),
        "exit_code": result.exit_code,
    }
    return json.dumps(doc, indent=2)


def _sarif_rules() -> List[Dict[str, object]]:
    rules = []
    for r in all_rules():
        rules.append(
            {
                "id": r.code,
                "name": r.name,
                "shortDescription": {"text": r.summary},
                "fullDescription": {
                    "text": (r.__doc__ or r.summary).strip().splitlines()[0]
                },
                "help": {"text": f"Protects: {r.paper_ref}"},
                "properties": {"paperRef": r.paper_ref},
            }
        )
    return rules


def _sarif_result(f: Finding, baseline_state: str) -> Dict[str, object]:
    return {
        "ruleId": f.rule,
        "level": _SARIF_LEVEL.get(f.severity, "warning"),
        "message": {"text": f.message},
        "baselineState": baseline_state,
        "partialFingerprints": {"dclint/v1": f"{f.fingerprint}:{f.occurrence}"},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path, "uriBaseId": "SRCROOT"},
                    "region": {
                        "startLine": f.line,
                        "startColumn": f.col + 1,
                        "snippet": {"text": f.snippet},
                    },
                },
                "logicalLocations": [
                    {"fullyQualifiedName": f.context, "kind": "function"}
                ],
            }
        ],
    }


def render_sarif(result: LintResult, baseline: Optional[Baseline] = None) -> str:
    """SARIF 2.1.0 report suitable for GitHub code-scanning upload."""
    results = [_sarif_result(f, "new") for f in result.new_findings]
    results += [_sarif_result(f, "unchanged") for f in result.baselined]
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://example.invalid/dclint",
                        "rules": _sarif_rules(),
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
                "invocations": [
                    {
                        "executionSuccessful": not result.errors,
                        "exitCode": result.exit_code,
                    }
                ],
            }
        ],
    }
    return json.dumps(doc, indent=2)
