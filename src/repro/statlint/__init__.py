"""dclint: repo-specific static analysis for numerical-kernel discipline.

The paper's speedup story (Table I, Algorithms 1-6) depends on kernel
discipline that ordinary linters cannot see: fixed dtypes, preallocated
buffers reused across the Suzuki-Trotter hot loop, seeded randomness for
deterministic replay, traced kernels for the paper-taxonomy breakdown,
and volume-weighted inner products.  ``dclint`` encodes those contracts
as AST-level rules with per-rule severity, inline
``# dclint: disable=DCLnnn`` suppressions, a committed baseline file so
legacy findings do not block CI, and text/JSON/SARIF output.

Rules come in two tiers: the per-module rules (DCL001-DCL011, DCL016) inspect
one file at a time, while the project-wide rules (DCL012-DCL015) build
a cross-module symbol index, call graph and forward dataflow (reaching
definitions + a dtype lattice) over *all* linted files together, so
they catch hazards -- unpicklable executor tasks, entropy-seeded RNGs,
complex128 truncation, unresolved tunables -- that only exist across
module boundaries.  ``--jobs N`` fans the per-module pass over worker
processes and ``--cache FILE`` keys results on content fingerprints;
both are observationally pure (byte-identical reports).

Run it as ``python -m repro.statlint src/ --baseline statlint-baseline.json``.
"""

from repro.statlint.baseline import Baseline, BaselineEntry
from repro.statlint.config import LintConfig
from repro.statlint.engine import Finding, LintResult, lint_paths, lint_source
from repro.statlint.output import render_json, render_sarif, render_text
from repro.statlint.rules import ALL_RULES, Rule, all_rules, get_rule, rule_codes

__all__ = [
    "ALL_RULES",
    "all_rules",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "get_rule",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_codes",
]
