"""dclint: repo-specific static analysis for numerical-kernel discipline.

The paper's speedup story (Table I, Algorithms 1-6) depends on kernel
discipline that ordinary linters cannot see: fixed dtypes, preallocated
buffers reused across the Suzuki-Trotter hot loop, seeded randomness for
deterministic replay, traced kernels for the paper-taxonomy breakdown,
and volume-weighted inner products.  ``dclint`` encodes those contracts
as AST-level rules (DCL001-DCL010) with per-rule severity, inline
``# dclint: disable=DCLnnn`` suppressions, a committed baseline file so
legacy findings do not block CI, and text/JSON/SARIF output.

Run it as ``python -m repro.statlint src/ --baseline statlint-baseline.json``.
"""

from repro.statlint.baseline import Baseline, BaselineEntry
from repro.statlint.config import LintConfig
from repro.statlint.engine import Finding, LintResult, lint_paths, lint_source
from repro.statlint.output import render_json, render_sarif, render_text
from repro.statlint.rules import ALL_RULES, Rule, get_rule, rule_codes

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "get_rule",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_codes",
]
