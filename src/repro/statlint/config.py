"""Rule scoping and severity configuration for dclint.

Path scopes are substring patterns against the POSIX-style path of each
linted file (relative to the lint root when possible).  They encode the
repo's layer map: which modules are *hot-loop* kernels (Algorithm 2
memory reuse applies), which are *kernel modules* (fixed-dtype
contract), and which are *phase modules* (every public kernel must open
a paper-taxonomy tracer span).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

#: Modules whose loops are Suzuki-Trotter / multigrid / CG hot paths: no
#: hidden array construction inside ``for``/``while`` (paper Alg. 2).
HOT_LOOP_PATHS: Tuple[str, ...] = (
    "repro/lfd/",
    "repro/multigrid/",
    "repro/qxmd/cg.py",
)

#: Modules under the fixed-dtype contract: no implicit narrowing casts.
KERNEL_DTYPE_PATHS: Tuple[str, ...] = (
    "repro/lfd/",
    "repro/multigrid/",
    "repro/qxmd/",
    "repro/grids/",
    "repro/device/",
)

#: Phase modules of the paper kernel taxonomy (cf. repro/obs/phases.py):
#: public module-level kernels here must open a tracer span so Table I/II
#: style breakdowns stay complete.
TRACED_PHASE_PATHS: Tuple[str, ...] = (
    "repro/lfd/kin_prop.py",
    "repro/lfd/pot_prop.py",
    "repro/lfd/nonlocal_corr.py",
    "repro/qxmd/hartree.py",
)

#: Modules where conjugate-contraction reductions are grid inner products
#: and must carry the volume element ``dvol``.
DVOL_PATHS: Tuple[str, ...] = (
    "repro/lfd/",
    "repro/qxmd/",
)

#: Modules whose per-domain hot paths must dispatch through the
#: DomainExecutor abstraction: constructing a DomainSolver or
#: QDPropagator inside a loop there bypasses the backend-selectable
#: executor (and its crash healing, tracing and RNG discipline).
EXECUTOR_PATHS: Tuple[str, ...] = (
    "repro/parallel/distributed.py",
    "repro/qxmd/dftsolver.py",
    "repro/core/mesh.py",
)

#: Modules that *consume* tuning-managed parameters: call sites here
#: must not pin a tuned block/chunk shape to an integer literal --
#: that bypasses the TuningProfile (repro.tuning) and the persisted,
#: machine-fingerprinted winner never takes effect.  The tuning
#: subsystem itself and the benchmark ablation sweeps are deliberately
#: out of scope (they enumerate candidate values by design).
TUNING_LITERAL_PATHS: Tuple[str, ...] = (
    "repro/lfd/",
    "repro/qxmd/",
    "repro/core/",
    "repro/resilience/",
    "repro/parallel/distributed.py",
)

#: Keyword arguments owned by the tuning subsystem: pinning one of
#: these to an int literal at a call site bypasses the TuningProfile.
TUNED_LITERAL_KWARGS: Tuple[str, ...] = (
    "block_size",
    "chunk_size",
    "orb_block",
)

#: Modules under the bounded-waiting contract (PR-6 hang-aware
#: execution): every potentially blocking primitive call must carry a
#: timeout so a wedged worker can never block the parent forever --
#: waits poll with a bound and re-check the armed deadline scope.
LIVENESS_PATHS: Tuple[str, ...] = (
    "repro/parallel/backends/",
    "repro/parallel/executor.py",
    "repro/resilience/liveness.py",
    "repro/resilience/supervisor.py",
)

#: Modules holding namespace-generic (array-API) kernels: functions
#: whose first parameter is the namespace handle ``xp`` promise to run
#: on *any* standard-conforming array library, so a bare ``np.*`` call
#: inside one silently pins the kernel back to host NumPy (and breaks
#: outright under a non-NumPy substrate, whose arrays NumPy rejects).
XP_KERNEL_PATHS: Tuple[str, ...] = (
    "repro/lfd/",
    "repro/multigrid/",
    "repro/qxmd/",
    "repro/ensemble/",
)

#: numpy names an xp-first kernel may still call: the sanctioned
#: ``asarray`` boundary conversion, plus dtype constants -- dtype
#: objects are plain metadata the array-API namespace accepts in
#: ``dtype=`` position, never a computation on the wrong substrate.
XP_KERNEL_NUMPY_OK: Tuple[str, ...] = (
    "asarray",
    "float64",
    "float32",
    "complex128",
    "complex64",
    "int64",
    "int32",
    "bool_",
)

#: Modules hosting asyncio event-loop code (the serving daemon): a
#: blocking call lexically inside an ``async def`` here stalls every
#: connected client at once, so all compute and file I/O must route
#: through ``run_in_executor`` (DCL017).
ASYNC_PATHS: Tuple[str, ...] = (
    "repro/serve/",
)

#: Call names that block the calling thread: module-level functions
#: (``time.sleep``, ``subprocess.run``, ...) keyed as (module, attr).
BLOCKING_MODULE_CALLS: Tuple[Tuple[str, str], ...] = (
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("os", "system"),
    ("os", "popen"),
    ("shutil", "rmtree"),
    ("shutil", "copytree"),
)

#: Method names that block (socket ops without a timeout path, eager
#: pathlib file I/O).  Matched lexically on the attribute name alone;
#: awaited calls are exempt, so asyncio's own stream methods never trip.
BLOCKING_METHODS: Tuple[str, ...] = (
    "recv",
    "recvfrom",
    "send",
    "sendall",
    "accept",
    "connect",
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
)

#: Narrowing dtype names: casting *to* one of these inside a kernel
#: module silently loses precision (complex128 -> complex64, 64 -> 32).
NARROWING_DTYPES: Tuple[str, ...] = (
    "float32",
    "float16",
    "complex64",
    "single",
    "csingle",
    "half",
    "int32",
    "int16",
    "int8",
    "uint32",
    "uint16",
    "uint8",
)

#: Modules whose functions sit on the executor/ensemble/swarm fan-out
#: paths: RNG values used here must derive from the deterministic
#: ``worker_rng`` / ``chunk_rng`` / ``trajectory_rng`` streams (DCL013),
#: and executor task callables dispatched from here must be picklable
#: module-level functions (DCL012).
RNG_SCOPE_PATHS: Tuple[str, ...] = (
    "repro/parallel/",
    "repro/ensemble/",
    "repro/qxmd/scf.py",
)

#: The blessed deterministic RNG provenance functions: a Generator on an
#: executor path must come from one of these (or from an explicitly
#: seeded ``default_rng(seed)`` whose seed rides in the task item).
RNG_PROVENANCE_FUNCS: Tuple[str, ...] = (
    "worker_rng",
    "chunk_rng",
    "trajectory_rng",
)

#: Identifiers that mark a TuningProfile resolution point: an
#: ``is None``-guarded tunable assignment must route through one of
#: these, otherwise the persisted tuned winner is silently bypassed.
TUNING_RESOLUTION_MARKERS: Tuple[str, ...] = (
    "get_active_profile",
    "params_for",
    "resolve_tunable",
)

#: Real-valued cast targets: complex128 flowing into one of these loses
#: its imaginary part with no runtime error on the ndarray path.
REAL_SINK_DTYPES: Tuple[str, ...] = (
    "float64",
    "double",
    "float",
    "float_",
    "float32",
    "single",
    "float16",
    "half",
)

#: numpy.random attributes that are legitimate (seeded-Generator plumbing).
SEEDED_RNG_OK: Tuple[str, ...] = (
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
)

#: numpy array constructors whose call inside a hot loop allocates.
ARRAY_CONSTRUCTORS: Tuple[str, ...] = (
    "empty",
    "zeros",
    "ones",
    "full",
    "empty_like",
    "zeros_like",
    "ones_like",
    "full_like",
    "array",
    "asarray",
    "ascontiguousarray",
    "asfortranarray",
    "copy",
    "arange",
    "linspace",
    "identity",
    "eye",
    "tile",
    "repeat",
    "concatenate",
    "stack",
    "vstack",
    "hstack",
    "dstack",
    "meshgrid",
)

#: Non-elementwise numpy ops where ``out=`` aliasing an input is a
#: read-after-write hazard (elementwise ufuncs alias safely).
NON_ELEMENTWISE_OUT_OPS: Tuple[str, ...] = (
    "matmul",
    "dot",
    "einsum",
    "tensordot",
    "inner",
    "outer",
    "cross",
    "convolve",
    "correlate",
    "roll",
    "cumsum",
    "cumprod",
    "sort",
    "take",
    "mean",
    "sum",
)

DEFAULT_SEVERITIES: Mapping[str, str] = {
    "DCL001": "error",
    "DCL002": "error",
    "DCL003": "error",
    "DCL004": "error",
    "DCL005": "error",
    "DCL006": "error",
    "DCL007": "error",
    "DCL008": "error",
    "DCL009": "error",
    "DCL010": "error",
    "DCL011": "error",
    "DCL012": "error",
    "DCL013": "error",
    "DCL014": "error",
    "DCL015": "error",
    "DCL016": "error",
    "DCL017": "error",
}

_VALID_SEVERITIES = ("error", "warning", "note")


@dataclass
class LintConfig:
    """Which rules run, at what severity, over which path scopes."""

    select: Tuple[str, ...] = ()       # empty = all rules
    ignore: Tuple[str, ...] = ()
    severities: Dict[str, str] = field(default_factory=dict)
    hot_loop_paths: Tuple[str, ...] = HOT_LOOP_PATHS
    kernel_dtype_paths: Tuple[str, ...] = KERNEL_DTYPE_PATHS
    traced_phase_paths: Tuple[str, ...] = TRACED_PHASE_PATHS
    dvol_paths: Tuple[str, ...] = DVOL_PATHS
    executor_paths: Tuple[str, ...] = EXECUTOR_PATHS
    tuning_literal_paths: Tuple[str, ...] = TUNING_LITERAL_PATHS
    liveness_paths: Tuple[str, ...] = LIVENESS_PATHS
    rng_scope_paths: Tuple[str, ...] = RNG_SCOPE_PATHS
    xp_kernel_paths: Tuple[str, ...] = XP_KERNEL_PATHS
    async_paths: Tuple[str, ...] = ASYNC_PATHS
    #: Parallel parse/lint workers; 1 = serial, 0 = one per CPU.
    jobs: int = 1
    #: Incremental-cache path; None disables caching.
    cache: Optional[str] = None
    #: Default baseline path applied when the CLI gets no --baseline.
    baseline: Optional[str] = None

    def fingerprint_payload(self) -> str:
        """Stable text of every behavior-affecting field, for cache keys.

        ``jobs`` and ``cache`` are excluded on purpose: they change how
        the lint runs, never what it finds.
        """
        skip = ("jobs", "cache", "baseline")
        parts = []
        for f in sorted(fields(self), key=lambda f: f.name):
            if f.name in skip:
                continue
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value = tuple(sorted(value.items()))
            parts.append(f"{f.name}={value!r}")
        return ";".join(parts)

    def severity_for(self, code: str) -> str:
        """Effective severity of a rule after CLI overrides."""
        return self.severities.get(code, DEFAULT_SEVERITIES.get(code, "error"))

    def rule_enabled(self, code: str) -> bool:
        """Whether --select/--ignore leave this rule active."""
        if self.select and code not in self.select:
            return False
        return code not in self.ignore

    @staticmethod
    def parse_severity_overrides(specs: Iterable[str]) -> Dict[str, str]:
        """Parse ``DCLnnn=warning`` CLI specs into a severity map."""
        out: Dict[str, str] = {}
        for spec in specs:
            code, sep, level = spec.partition("=")
            code = code.strip().upper()
            level = level.strip().lower()
            if not sep or level not in _VALID_SEVERITIES:
                raise ValueError(
                    f"bad severity spec {spec!r}; expected DCLnnn="
                    f"{'|'.join(_VALID_SEVERITIES)}"
                )
            out[code] = level
        return out


def path_matches(relpath: str, patterns: Iterable[str]) -> bool:
    """True when the POSIX relpath falls under any substring pattern."""
    posix = relpath.replace("\\", "/")
    return any(pat in posix for pat in patterns)


def find_pyproject(paths: Sequence[str]) -> Optional[Path]:
    """The nearest pyproject.toml at or above the first lint path.

    Discovery anchors on the *linted tree*, not the process cwd, so the
    same invocation behaves identically from any directory and temp
    trees in tests never inherit the repo's configuration.
    """
    if not paths:
        return None
    start = Path(paths[0]).resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_pyproject_settings(pyproject: Path) -> Dict[str, object]:
    """The raw ``[tool.statlint]`` table of a pyproject.toml (or {})."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - python < 3.11
        return {}
    try:
        doc = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return {}
    tool = doc.get("tool")
    if not isinstance(tool, dict):
        return {}
    table = tool.get("statlint")
    return dict(table) if isinstance(table, dict) else {}


def config_from_settings(settings: Mapping[str, object]) -> Dict[str, object]:
    """Validated LintConfig keyword overrides from a settings table.

    Recognized keys: ``select``, ``ignore`` (lists of rule codes),
    ``severity`` (table of code -> level), ``jobs`` (int), ``cache``
    and ``baseline`` (paths).  Unknown keys are ignored so a newer
    config file degrades gracefully on an older linter.
    """
    out: Dict[str, object] = {}
    for key in ("select", "ignore"):
        raw = settings.get(key)
        if isinstance(raw, (list, tuple)):
            out[key] = tuple(str(c).strip().upper() for c in raw if str(c).strip())
        elif isinstance(raw, str):
            out[key] = tuple(
                c.strip().upper() for c in raw.split(",") if c.strip()
            )
    severity = settings.get("severity")
    if isinstance(severity, dict):
        parsed: Dict[str, str] = {}
        for code, level in severity.items():
            level_s = str(level).strip().lower()
            if level_s not in _VALID_SEVERITIES:
                raise ValueError(
                    f"[tool.statlint] severity.{code}: {level!r} is not one "
                    f"of {'/'.join(_VALID_SEVERITIES)}"
                )
            parsed[str(code).strip().upper()] = level_s
        out["severities"] = parsed
    jobs = settings.get("jobs")
    if isinstance(jobs, int) and not isinstance(jobs, bool):
        if jobs < 0:
            raise ValueError("[tool.statlint] jobs must be >= 0")
        out["jobs"] = jobs
    for key in ("cache", "baseline"):
        raw = settings.get(key)
        if isinstance(raw, str) and raw.strip():
            out[key] = raw.strip()
    return out
