"""Entry point for ``python -m repro.statlint``."""

import os
import sys

from repro.statlint.cli import main

if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
