"""The interprocedural rule family DCL012-DCL015.

These rules see the whole project at once through a
:class:`~repro.statlint.project.ProjectContext` -- symbol index, call
graph, and cross-module dtype summaries -- so they can enforce the
invariants that no single-module AST pass can check: executor tasks
must be picklable module-level functions wherever they are *defined*,
RNG provenance must hold through helper calls, complex128 values keep
their imaginary part across module boundaries, and ``None``-default
tunables must pass through the TuningProfile resolution point before
any kernel arithmetic consumes them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.statlint.config import (
    REAL_SINK_DTYPES,
    RNG_PROVENANCE_FUNCS,
    SEEDED_RNG_OK,
    TUNED_LITERAL_KWARGS,
    TUNING_RESOLUTION_MARKERS,
    path_matches,
)
from repro.statlint.dataflow import none_default_params
from repro.statlint.engine import ModuleContext
from repro.statlint.project import (
    FunctionRecord,
    ModuleInfo,
    ProjectContext,
    dotted_name,
)
from repro.statlint.rules import Rule

#: A raw project finding: (relpath, line, col, message).
ProjectRawFinding = Tuple[str, int, int, str]

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


class ProjectRule(Rule):
    """Base class for rules that need the whole-project context."""

    #: marks the rule for the engine's project pass
    project = True

    def check_project(
        self, pctx: ProjectContext
    ) -> Iterator[ProjectRawFinding]:  # pragma: no cover
        """Yield ``(relpath, line, col, message)`` across the project."""
        raise NotImplementedError

    def check(self, ctx: ModuleContext) -> Iterator[Tuple[int, int, str]]:
        """Project rules never run in the per-module pass."""
        return iter(())


class PickleUnsafeTask(ProjectRule):
    """DCL012: executor task that cannot cross a process boundary.

    The DomainExecutor contract (PR 4) requires every task dispatched
    through ``executor.map`` / ``scf_solve_batch`` / the EnsembleRun
    batch path to be a module-level picklable function: the process
    backend ships tasks to spawn-context workers by pickle, and the
    serial/thread backends must stay drop-in interchangeable with it.
    A lambda, a closure (nested def), a factory-made closure, or a
    bound method works on the serial backend and then fails -- or
    silently diverges -- the moment the tuner or a CLI flag switches
    the backend.  The rule resolves the task argument through local
    assignments, imports, ``functools.partial`` and, when the task
    arrives as a *parameter*, back through every caller in the call
    graph.
    """

    code = "DCL012"
    name = "pickle-unsafe-task"
    summary = "executor task is not a picklable module-level function"
    paper_ref = "Figs. 2-3 process-pool dispatch (PR-4 executor contract)"
    scope_attr = None

    _MAX_DEPTH = 4

    def check_project(self, pctx: ProjectContext) -> Iterator[ProjectRawFinding]:
        seen: Set[Tuple[str, int, int, str]] = set()
        for site in pctx.dispatch_sites():
            task = site.call.args[0]
            for problem in self._resolve_task(
                pctx, site.module, site.enclosing, task, 0, set()
            ):
                key = problem
                if key not in seen:
                    seen.add(key)
                    yield problem

    # ------------------------------------------------------------- #
    def _resolve_task(
        self,
        pctx: ProjectContext,
        info: ModuleInfo,
        fn: Optional[ast.AST],
        expr: ast.expr,
        depth: int,
        visiting: Set[int],
    ) -> List[ProjectRawFinding]:
        if depth > self._MAX_DEPTH or id(expr) in visiting:
            return []
        visiting = visiting | {id(expr)}
        if isinstance(expr, ast.Lambda):
            return [self._problem(info, expr, "a lambda")]
        if isinstance(expr, ast.Name):
            return self._resolve_name_task(pctx, info, fn, expr, depth, visiting)
        if isinstance(expr, ast.Attribute):
            return self._resolve_attr_task(pctx, info, expr)
        if isinstance(expr, ast.Call):
            return self._resolve_call_task(pctx, info, fn, expr, depth, visiting)
        return []

    def _resolve_name_task(
        self,
        pctx: ProjectContext,
        info: ModuleInfo,
        fn: Optional[ast.AST],
        expr: ast.Name,
        depth: int,
        visiting: Set[int],
    ) -> List[ProjectRawFinding]:
        name = expr.id
        if fn is not None and isinstance(fn, _FuncDef):
            nested = _find_nested_def(fn, name)
            if nested is not None:
                return [
                    self._problem(
                        info,
                        nested,
                        f"the nested function {name}() (a closure)",
                    )
                ]
            bound = _last_local_assign(fn, name)
            if bound is not None:
                return self._resolve_task(pctx, info, fn, bound, depth + 1, visiting)
            if name in _param_names(fn):
                return self._trace_parameter(pctx, info, fn, name, depth, visiting)
        rec = pctx.index.lookup_function(pctx.index.resolve_name(info, name))
        if rec is not None:
            return self._check_record(rec)
        if name in info.assigns:
            return self._resolve_task(
                pctx, info, None, info.assigns[name], depth + 1, visiting
            )
        return []

    def _resolve_attr_task(
        self, pctx: ProjectContext, info: ModuleInfo, expr: ast.Attribute
    ) -> List[ProjectRawFinding]:
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return [
                self._problem(
                    info, expr, f"the bound method self.{expr.attr}"
                )
            ]
        name = dotted_name(expr)
        if name is not None:
            fq = pctx.index.resolve_name(info, name)
            rec = pctx.index.lookup_function(fq)
            if rec is not None:
                # Class.method accessed through the class is a plain
                # function found by qualname; pickle handles it.
                return self._check_record(rec)
            head = name.split(".", 1)[0]
            if head in info.imports:
                return []  # attribute of an unindexed module: assume fine
        if isinstance(expr.value, ast.Name):
            return [
                self._problem(
                    info,
                    expr,
                    f"the bound method {expr.value.id}.{expr.attr}",
                )
            ]
        return []

    def _resolve_call_task(
        self,
        pctx: ProjectContext,
        info: ModuleInfo,
        fn: Optional[ast.AST],
        expr: ast.Call,
        depth: int,
        visiting: Set[int],
    ) -> List[ProjectRawFinding]:
        callee_name = dotted_name(expr.func) or ""
        if callee_name.rpartition(".")[2] == "partial" and expr.args:
            # functools.partial is picklable iff its payload is.
            return self._resolve_task(
                pctx, info, fn, expr.args[0], depth + 1, visiting
            )
        rec = pctx.index.lookup_function(
            pctx.index.resolve_name(info, callee_name) if callee_name else None
        )
        if rec is None:
            return []
        problems: List[ProjectRawFinding] = []
        for ret in ast.walk(rec.node):
            if not isinstance(ret, ast.Return) or ret.value is None:
                continue
            value = ret.value
            if isinstance(value, ast.Lambda):
                problems.append(
                    self._problem(
                        rec.module,
                        value,
                        f"a lambda returned by the factory {rec.qualname}()",
                    )
                )
            elif isinstance(value, ast.Name):
                nested = _find_nested_def(rec.node, value.id)
                if nested is not None:
                    problems.append(
                        self._problem(
                            rec.module,
                            nested,
                            f"the closure {value.id}() returned by the "
                            f"factory {rec.qualname}()",
                        )
                    )
        return problems

    def _trace_parameter(
        self,
        pctx: ProjectContext,
        info: ModuleInfo,
        fn: ast.AST,
        pname: str,
        depth: int,
        visiting: Set[int],
    ) -> List[ProjectRawFinding]:
        assert isinstance(fn, _FuncDef)
        qual = info.ctx.qualname(fn.body[0]) if fn.body else fn.name
        fq = f"{info.modname}.{qual}" if qual != "<module>" else info.modname
        problems: List[ProjectRawFinding] = []
        for caller_info, caller_fn, call in pctx.index.callers.get(fq, ()):
            actual = _actual_for_param(fn, pname, call)
            if actual is None:
                continue
            problems.extend(
                self._resolve_task(
                    pctx, caller_info, caller_fn, actual, depth + 1, visiting
                )
            )
        return problems

    def _check_record(self, rec: FunctionRecord) -> List[ProjectRawFinding]:
        problems: List[ProjectRawFinding] = []
        args = rec.node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, ast.Lambda):
                problems.append(
                    self._problem(
                        rec.module,
                        default,
                        f"a lambda default of the task {rec.qualname}()",
                    )
                )
        return problems

    def _problem(
        self, info: ModuleInfo, node: ast.AST, what: str
    ) -> ProjectRawFinding:
        return (
            info.relpath,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            f"{what} reaches executor.map as a task; the process backend "
            f"ships tasks by pickle, so tasks must be module-level "
            f"functions with picklable defaults ({self.paper_ref})",
        )


class RngProvenance(ProjectRule):
    """DCL013: RNG on an executor path without deterministic provenance.

    Bit-reproducible ensembles (PR 7: per-trajectory ``(seed, i)``
    streams) and the serial/process differential guarantee (PR 4) both
    require every random draw on an executor/ensemble/swarm path to
    derive from ``worker_rng`` / ``chunk_rng`` / ``trajectory_rng`` or
    an explicitly seeded Generator carried in the task item.  An
    entropy-seeded ``np.random.default_rng()`` is invisible to the
    per-module global-RNG rule (``default_rng`` is whitelisted there)
    but destroys replay the moment it runs inside a task -- including
    transitively, through helpers in modules far from any executor.
    The rule walks the call graph from every dispatched task function
    and also flags entropy-seeded Generators *passed into* scope-path
    functions from outside.
    """

    code = "DCL013"
    name = "rng-provenance"
    summary = "executor-path RNG not derived from worker/chunk/trajectory_rng"
    paper_ref = "PR-4/PR-7 deterministic per-chunk and per-trajectory streams"
    scope_attr = "rng_scope_paths"

    def check_project(self, pctx: ProjectContext) -> Iterator[ProjectRawFinding]:
        index = pctx.index
        config = pctx.config
        task_fqs = pctx.task_function_fqs()
        reachable = index.reachable_from(sorted(task_fqs))
        checked: List[Tuple[ModuleInfo, Optional[FunctionRecord]]] = []
        checked_fqs: Set[str] = set()
        for info in index.modules.values():
            in_scope = path_matches(info.relpath, config.rng_scope_paths)
            if in_scope:
                checked.append((info, None))  # module top level
            for rec in info.functions.values():
                if in_scope or rec.fq in reachable:
                    checked.append((info, rec))
                    checked_fqs.add(rec.fq)
        for info, rec in checked:
            yield from self._check_body(info, rec)
        yield from self._check_flows(pctx, checked_fqs)

    def _check_body(
        self, info: ModuleInfo, rec: Optional[FunctionRecord]
    ) -> Iterator[ProjectRawFinding]:
        ctx = info.ctx
        if rec is None:
            nodes: Iterator[ast.AST] = iter(
                n
                for stmt in ctx.tree.body
                if not isinstance(stmt, (*_FuncDef, ast.ClassDef))
                for n in ast.walk(stmt)
            )
        else:
            nodes = ast.walk(rec.node)
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            np_name = ctx.numpy_call_name(node.func)
            if np_name is None:
                continue
            where = f"{rec.qualname}()" if rec is not None else "module scope"
            if np_name == "random.default_rng" and _entropy_seeded(node):
                yield (
                    info.relpath,
                    node.lineno,
                    node.col_offset,
                    f"entropy-seeded default_rng() in {where} is on an "
                    f"executor path; derive the stream from "
                    f"{'/'.join(RNG_PROVENANCE_FUNCS)} or a seed carried "
                    f"in the task item ({self.paper_ref})",
                )
            elif (
                np_name.startswith("random.")
                and np_name.split(".", 1)[1] not in SEEDED_RNG_OK
            ):
                yield (
                    info.relpath,
                    node.lineno,
                    node.col_offset,
                    f"np.{np_name}() uses global RNG state in {where} on an "
                    f"executor path; route randomness through "
                    f"{'/'.join(RNG_PROVENANCE_FUNCS)} ({self.paper_ref})",
                )

    def _check_flows(
        self, pctx: ProjectContext, checked_fqs: Set[str]
    ) -> Iterator[ProjectRawFinding]:
        """Entropy Generators handed into scope-path callees from outside."""
        index = pctx.index
        config = pctx.config
        for info in index.modules.values():
            for rec in info.functions.values():
                if rec.fq in checked_fqs:
                    continue  # creation sites there are flagged directly
                tainted = _entropy_rng_names(info.ctx, rec.node)
                if not tainted:
                    continue
                qual = rec.qualname
                for node in ast.walk(rec.node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = index.resolve_call_target(
                        info, node.func, qual.rsplit(".", 1)[0] if "." in qual else None
                    )
                    if callee is None:
                        continue
                    if not path_matches(
                        callee.module.relpath, config.rng_scope_paths
                    ):
                        continue
                    passed = [
                        a.id
                        for a in (*node.args, *(kw.value for kw in node.keywords))
                        if isinstance(a, ast.Name) and a.id in tainted
                    ]
                    for name in passed:
                        yield (
                            info.relpath,
                            node.lineno,
                            node.col_offset,
                            f"{name} is an entropy-seeded Generator passed "
                            f"into the executor-path function "
                            f"{callee.qualname}(); derive it from "
                            f"{'/'.join(RNG_PROVENANCE_FUNCS)} or an "
                            f"explicit seed ({self.paper_ref})",
                        )


class DtypeFlowTruncation(ProjectRule):
    """DCL014: complex128 silently truncated to a real dtype.

    The kernel dtype contract keeps all propagation state complex128;
    numpy's ``astype(float64)`` on a complex array *discards the
    imaginary part* with only a runtime ComplexWarning, and a
    float32-narrowing constructor halves precision on top.  The
    per-module narrowing rule (DCL002) sees only textually narrow
    targets; this rule runs the dtype dataflow -- with cross-module
    return summaries -- so a complex value produced three calls away in
    another module is still known to be complex when it hits a real
    sink in a kernel module.  Take ``.real`` explicitly (and justify)
    when the truncation is intended.
    """

    code = "DCL014"
    name = "dtype-flow-truncation"
    summary = "complex128 value flows into a real-dtype sink on a kernel path"
    paper_ref = "fixed-dtype kernel contract (Table I reproducibility)"
    scope_attr = "kernel_dtype_paths"

    def check_project(self, pctx: ProjectContext) -> Iterator[ProjectRawFinding]:
        for info in pctx.index.modules.values():
            if not path_matches(info.relpath, pctx.config.kernel_dtype_paths):
                continue
            types = dict(pctx.module_flow(info).types)
            for rec in info.functions.values():
                types.update(pctx.function_flow(rec).types)
            yield from self._check_module(info, types)

    def _check_module(
        self, info: ModuleInfo, types: Dict[int, str]
    ) -> Iterator[ProjectRawFinding]:
        ctx = info.ctx

        def dtype_of(node: ast.expr) -> str:
            return types.get(id(node), "unknown")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = self._real_target(ctx, node)
                if target is None:
                    continue
                source = self._source_expr(ctx, node)
                if source is not None and dtype_of(source) == "complex128":
                    yield (
                        info.relpath,
                        node.lineno,
                        node.col_offset,
                        f"complex128 value cast to {target} drops the "
                        f"imaginary part silently; take .real explicitly "
                        f"or keep complex128 ({self.paper_ref})",
                    )
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if not isinstance(tgt, ast.Subscript):
                        continue
                    base_dt = dtype_of(tgt.value)
                    if (
                        base_dt in ("float64", "float32")
                        and dtype_of(node.value) == "complex128"
                    ):
                        yield (
                            info.relpath,
                            node.lineno,
                            node.col_offset,
                            f"storing a complex128 value into a {base_dt} "
                            f"array truncates the imaginary part; take "
                            f".real explicitly or widen the buffer "
                            f"({self.paper_ref})",
                        )

    def _real_target(self, ctx: ModuleContext, node: ast.Call) -> Optional[str]:
        """The textual real dtype this call casts to, if it is a cast."""
        from repro.statlint.project import _dtype_namer

        target: Optional[ast.expr] = None
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            if node.args:
                target = node.args[0]
        np_name = ctx.numpy_call_name(node.func)
        for kw in node.keywords:
            if kw.arg == "dtype" and np_name is not None:
                target = kw.value
        if target is not None:
            name = _dtype_namer(ctx, target)
            return name if name in REAL_SINK_DTYPES else None
        if np_name in REAL_SINK_DTYPES and node.args:
            return np_name  # np.float64(x) scalar/array constructor
        return None

    def _source_expr(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Optional[ast.expr]:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            return node.func.value
        return node.args[0] if node.args else None


class UnresolvedTunable(ProjectRule):
    """DCL015: None-default tunable reaching a kernel use unresolved.

    Tunable parameters (``block_size`` / ``chunk_size`` / ``orb_block``)
    default to ``None`` so the active :class:`TuningProfile` can supply
    the persisted, machine-fingerprinted winner.  A function that lets
    the ``None`` reach arithmetic, ``range()``, an index, or a required
    callee parameter either crashes (TypeError on None) or -- worse --
    resolves the tunable to a hard-coded literal inside the ``is None``
    guard, silently bypassing the tuning cache.  The noneness dataflow
    (with ``is None`` branch narrowing) proves which uses are reachable
    while still-maybe-None; callee summaries extend the check across
    calls, so forwarding the unresolved value into a helper that does
    arithmetic on it is flagged at the forwarding site.
    """

    code = "DCL015"
    name = "unresolved-tunable"
    summary = "None-default tunable used before TuningProfile resolution"
    paper_ref = "Tables I-II block-shape selection (repro.tuning ownership)"
    scope_attr = "tuning_literal_paths"

    _ARITH_BUILTINS = ("range", "len", "min", "max", "divmod", "abs")

    def check_project(self, pctx: ProjectContext) -> Iterator[ProjectRawFinding]:
        for info in pctx.index.modules.values():
            if not path_matches(info.relpath, pctx.config.tuning_literal_paths):
                continue
            for rec in info.functions.values():
                yield from self._check_function(pctx, info, rec)

    def _check_function(
        self, pctx: ProjectContext, info: ModuleInfo, rec: FunctionRecord
    ) -> Iterator[ProjectRawFinding]:
        yield from self._check_literal_defaults(info, rec)
        params = none_default_params(rec.node, TUNED_LITERAL_KWARGS)
        if not params:
            return
        flow = pctx.function_flow(rec, tracked_none_params=params)
        for pname, stmt in flow.literal_narrowings:
            if pname not in params:
                continue
            yield (
                info.relpath,
                stmt.lineno,
                stmt.col_offset,
                f"{pname} is resolved to a hard-coded literal instead of "
                f"the active TuningProfile; route the default through "
                f"get_active_profile().params_for(...) ({self.paper_ref})",
            )
        for node in ast.walk(rec.node):
            if not (isinstance(node, ast.Name) and node.id in params):
                continue
            noneness = flow.noneness.get(id(node))
            if noneness is None or noneness == "notnone":
                continue
            hit = self._unsafe_use(pctx, info, rec, node)
            if hit is not None:
                yield (
                    info.relpath,
                    node.lineno,
                    node.col_offset,
                    f"{node.id} may still be None (unresolved tunable) when "
                    f"it reaches {hit}; resolve it via the active "
                    f"TuningProfile first ({self.paper_ref})",
                )

    def _check_literal_defaults(
        self, info: ModuleInfo, rec: FunctionRecord
    ) -> Iterator[ProjectRawFinding]:
        """A tunable param defaulting to a bare int literal bypasses the
        profile for every caller that relies on the default -- the
        signature-level twin of the in-body literal-narrowing case."""
        literals = _int_literal_default_params(rec.node, TUNED_LITERAL_KWARGS)
        if not literals or _mentions_resolution(rec.node):
            return
        for pname, default in literals:
            yield (
                info.relpath,
                default.lineno,
                default.col_offset,
                f"tunable parameter {pname} defaults to the hard-coded "
                f"literal {ast.unparse(default)}, so default callers "
                f"bypass the active TuningProfile; default it to None "
                f"and resolve via get_active_profile().params_for(...) "
                f"({self.paper_ref})",
            )

    def _unsafe_use(
        self,
        pctx: ProjectContext,
        info: ModuleInfo,
        rec: FunctionRecord,
        node: ast.Name,
    ) -> Optional[str]:
        """Describe the unsafe consuming context, or None when safe."""
        parent = info.ctx.parent(node)
        if parent is None:
            return None
        if isinstance(parent, ast.Compare):
            if any(
                isinstance(c, ast.Constant) and c.value is None
                for c in parent.comparators
            ):
                return None  # the `is None` guard itself
            return "a numeric comparison"
        if isinstance(parent, (ast.BinOp, ast.UnaryOp)):
            return "arithmetic"
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            return "an index expression"
        if isinstance(parent, ast.Slice):
            return "a slice bound"
        if isinstance(parent, ast.keyword):
            call = info.ctx.parent(parent)
            if isinstance(call, ast.Call):
                return self._unsafe_call_arg(pctx, info, rec, call, node, parent.arg)
            return None
        if isinstance(parent, ast.Call) and node in parent.args:
            return self._unsafe_call_arg(pctx, info, rec, parent, node, None)
        return None

    def _unsafe_call_arg(
        self,
        pctx: ProjectContext,
        info: ModuleInfo,
        rec: FunctionRecord,
        call: ast.Call,
        node: ast.Name,
        kwarg: Optional[str],
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self._ARITH_BUILTINS:
            return f"{func.id}()"
        enclosing_class = (
            rec.qualname.rsplit(".", 1)[0] if "." in rec.qualname else None
        )
        callee = pctx.index.resolve_call_target(info, func, enclosing_class)
        if callee is None:
            return None  # unresolvable callee: assume safe forwarding
        pname = kwarg or _positional_param_name(callee, call, node)
        if pname is None:
            return None
        if pname in none_default_params(callee.node, (pname,)):
            return None  # callee accepts None and is checked on its own
        if self._callee_uses_unsafely(pctx, callee, pname):
            return (
                f"{callee.qualname}(), which does arithmetic on "
                f"{pname} without resolving it"
            )
        return None

    def _callee_uses_unsafely(
        self, pctx: ProjectContext, callee: FunctionRecord, pname: str
    ) -> bool:
        if pname not in _param_names(callee.node):
            return False
        flow = pctx.function_flow(callee, tracked_none_params=[pname])
        info = callee.module
        for node in ast.walk(callee.node):
            if not (isinstance(node, ast.Name) and node.id == pname):
                continue
            noneness = flow.noneness.get(id(node))
            if noneness is None or noneness == "notnone":
                continue
            parent = info.ctx.parent(node)
            if isinstance(parent, (ast.BinOp, ast.UnaryOp, ast.Slice)):
                return True
            if isinstance(parent, ast.Subscript) and parent.slice is node:
                return True
            if isinstance(parent, ast.Compare) and not any(
                isinstance(c, ast.Constant) and c.value is None
                for c in parent.comparators
            ):
                return True
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in self._ARITH_BUILTINS
            ):
                return True
        return False


# --------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------- #
def _entropy_seeded(node: ast.Call) -> bool:
    """Whether a default_rng call has no explicit seed."""
    if node.keywords:
        return False
    if not node.args:
        return True
    return isinstance(node.args[0], ast.Constant) and node.args[0].value is None


def _entropy_rng_names(ctx: ModuleContext, fn: ast.AST) -> Set[str]:
    """Local names bound to an entropy-seeded default_rng() in ``fn``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        if (
            ctx.numpy_call_name(value.func) == "random.default_rng"
            and _entropy_seeded(value)
        ):
            out.add(target.id)
    return out


def _int_literal_default_params(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef", names: Sequence[str]
) -> List[Tuple[str, ast.expr]]:
    """(param, default-node) pairs whose default is a bare int literal."""
    args = fn.args
    out: List[Tuple[str, ast.expr]] = []

    def is_int_literal(node: Optional[ast.expr]) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool)
        )

    positional = list(args.posonlyargs) + list(args.args)
    for arg, default in zip(
        positional[len(positional) - len(args.defaults):], args.defaults
    ):
        if arg.arg in names and is_int_literal(default):
            out.append((arg.arg, default))
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg in names and is_int_literal(kw_default):
            assert kw_default is not None
            out.append((arg.arg, kw_default))
    return out


def _mentions_resolution(fn: ast.AST) -> bool:
    """Whether a function body touches the TuningProfile resolution API."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in TUNING_RESOLUTION_MARKERS:
            return True
        if (
            isinstance(node, ast.Attribute)
            and node.attr in TUNING_RESOLUTION_MARKERS
        ):
            return True
    return False


def _find_nested_def(
    fn: ast.AST, name: str
) -> Optional["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in ast.walk(fn):
        if isinstance(node, _FuncDef) and node is not fn and node.name == name:
            return node
    return None


def _last_local_assign(fn: ast.AST, name: str) -> Optional[ast.expr]:
    found: Optional[ast.expr] = None
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == name:
                found = node.value
    return found


def _param_names(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[str]:
    args = fn.args
    return [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]


def _actual_for_param(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef", pname: str, call: ast.Call
) -> Optional[ast.expr]:
    """The argument expression a call binds to ``fn``'s parameter."""
    for kw in call.keywords:
        if kw.arg == pname:
            return kw.value
    positional = list(fn.args.posonlyargs) + list(fn.args.args)
    names = [a.arg for a in positional]
    if pname not in names:
        return None
    index = names.index(pname)
    if names and names[0] == "self" and isinstance(call.func, ast.Attribute):
        index -= 1  # bound-call: self is implicit
    if 0 <= index < len(call.args):
        arg = call.args[index]
        return None if isinstance(arg, ast.Starred) else arg
    return None


def _positional_param_name(
    callee: FunctionRecord, call: ast.Call, node: ast.expr
) -> Optional[str]:
    """Which callee parameter a positional argument lands on."""
    try:
        pos = call.args.index(node)
    except ValueError:
        return None
    positional = list(callee.node.args.posonlyargs) + list(callee.node.args.args)
    names = [a.arg for a in positional]
    if names and names[0] == "self" and isinstance(call.func, ast.Attribute):
        pos += 1
    return names[pos] if pos < len(names) else None


#: The project-scope rule set, in DCL code order.
PROJECT_RULES: Tuple[ProjectRule, ...] = (
    PickleUnsafeTask(),
    RngProvenance(),
    DtypeFlowTruncation(),
    UnresolvedTunable(),
)
