"""The per-module rule set (DCL001-DCL011, DCL016-DCL017).

Each rule is an AST check over one :class:`~repro.statlint.engine.ModuleContext`
yielding ``(line, col, message)`` triples.  Rules carry the paper
constraint they protect (``paper_ref``) so reports and SARIF output can
explain *why* a finding matters, not just where it is.  The
interprocedural family (DCL012-DCL015) lives in
:mod:`repro.statlint.project_rules` and runs over a whole-project
context instead; :func:`all_rules` exposes both registries together.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.statlint.config import (
    ARRAY_CONSTRUCTORS,
    BLOCKING_METHODS,
    BLOCKING_MODULE_CALLS,
    NARROWING_DTYPES,
    NON_ELEMENTWISE_OUT_OPS,
    SEEDED_RNG_OK,
    TUNED_LITERAL_KWARGS,
    XP_KERNEL_NUMPY_OK,
    LintConfig,
    path_matches,
)
from repro.statlint.engine import ModuleContext

RawFinding = Tuple[int, int, str]


class Rule:
    """Base class: path scoping plus the per-module check."""

    code: str = "DCL000"
    name: str = "base"
    summary: str = ""
    paper_ref: str = ""
    #: name of the LintConfig path-scope attribute, or None for all files
    scope_attr: Optional[str] = None

    def applies_to(self, relpath: str, config: LintConfig) -> bool:
        """Whether this rule's path scope covers ``relpath``."""
        if self.scope_attr is None:
            return True
        return path_matches(relpath, getattr(config, self.scope_attr))

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:  # pragma: no cover
        """Yield ``(line, col, message)`` violations found in ``ctx``."""
        raise NotImplementedError


def _dtype_name(node: ast.expr, ctx: ModuleContext) -> Optional[str]:
    """Textual dtype a cast targets: np.float32 / "float32" / float32."""
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id in ctx.numpy_aliases:
            return node.attr
        return None
    if isinstance(node, ast.Name):
        resolved = ctx.from_numpy_names.get(node.id)
        return resolved or node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip()
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class HotLoopAllocation(Rule):
    """DCL001: array construction inside a hot-path loop.

    The paper's Algorithm 2 replaces the O(M^D) per-pass work array with
    in-place pair updates; Algorithm 6 keeps buffers persistent across
    the N_QD sub-steps.  A ``np.zeros``/``astype``/``copy`` inside a
    ``for``/``while`` of an LFD/multigrid/CG kernel re-pays allocation
    and page-fault cost every iteration -- use a preallocated workspace
    or the ``out=`` form.
    """

    code = "DCL001"
    name = "hot-loop-allocation"
    summary = "array constructor / astype / copy inside a hot-path loop"
    paper_ref = "Alg. 2 (in-place pair update), Alg. 6 (persistent buffers)"
    scope_attr = "hot_loop_paths"

    _METHODS = ("astype", "copy")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.loop_depth(node) == 0:
                continue
            np_name = ctx.numpy_call_name(node.func)
            if np_name in ARRAY_CONSTRUCTORS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"np.{np_name}() allocates inside a hot loop; hoist it or "
                    f"reuse a preallocated workspace (paper {self.paper_ref})",
                )
                continue
            if (
                np_name is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._METHODS
                and not _is_copy_false(node)
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f".{node.func.attr}() copies inside a hot loop; hoist the "
                    f"conversion out of the loop or reuse a workspace buffer "
                    f"(paper {self.paper_ref})",
                )


def _is_copy_false(call: ast.Call) -> bool:
    """astype(..., copy=False) may be allocation-free; don't flag it."""
    for kw in call.keywords:
        if kw.arg == "copy" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


class DtypePromotionHazard(Rule):
    """DCL002: explicit narrowing cast in a kernel module.

    All propagation state is complex128/float64 by contract; a stray
    ``astype(np.complex64)`` or ``dtype=np.float32`` silently halves
    precision and breaks the <1e-12/step unitarity budget the
    property-based suite enforces.
    """

    code = "DCL002"
    name = "dtype-narrowing"
    summary = "explicit narrowing dtype cast (complex->real or 64->32)"
    paper_ref = "fixed-dtype kernel contract (Table I reproducibility)"
    scope_attr = "kernel_dtype_paths"

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # .astype(narrow) / np.asarray(..., dtype=narrow) / np.zeros(.., narrow)
            targets: List[ast.expr] = []
            if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                if node.args:
                    targets.append(node.args[0])
            np_name = ctx.numpy_call_name(node.func)
            if np_name in ARRAY_CONSTRUCTORS or np_name == "astype":
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        targets.append(kw.value)
            if np_name in NARROWING_DTYPES:
                # direct scalar constructor: np.float32(x)
                yield (
                    node.lineno,
                    node.col_offset,
                    f"np.{np_name}() constructs a narrowed scalar/array in a "
                    f"kernel module; keep complex128/float64 "
                    f"({self.paper_ref})",
                )
                continue
            for target in targets:
                dname = _dtype_name(target, ctx)
                if dname in NARROWING_DTYPES:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"cast to {dname} narrows the kernel dtype contract "
                        f"(complex128/float64); if intentional, keep it at "
                        f"construction time and suppress ({self.paper_ref})",
                    )


class GlobalRNG(Rule):
    """DCL003: legacy global-state ``np.random.*`` call.

    PR-1's deterministic replay (bit-identical recovery after a fault)
    requires every random draw to flow through a seeded
    ``np.random.default_rng`` Generator that is part of checkpointed
    state.  Global RNG calls are invisible to the replay machinery.
    """

    code = "DCL003"
    name = "global-rng"
    summary = "np.random.* global-state call outside default_rng"
    paper_ref = "PR-1 deterministic replay / seeded fault injection"

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            np_name = ctx.numpy_call_name(node.func)
            if np_name is None or not np_name.startswith("random."):
                continue
            fn = np_name.split(".", 1)[1]
            if fn in SEEDED_RNG_OK:
                continue
            yield (
                node.lineno,
                node.col_offset,
                f"np.random.{fn}() uses global RNG state; route randomness "
                f"through a seeded np.random.default_rng Generator "
                f"({self.paper_ref})",
            )


class BroadExcept(Rule):
    """DCL004: bare/broad ``except`` that can swallow health guards.

    The PR-1 numerical health guards signal NaN/overflow/divergence by
    raising typed exceptions; an ``except:`` or ``except Exception:``
    between a kernel and the supervisor converts a detected corruption
    into silent wrong numbers.  Re-raising handlers are exempt.
    """

    code = "DCL004"
    name = "broad-except"
    summary = "bare or broad except without re-raise"
    paper_ref = "PR-1 numerical health guards (supervisor fault path)"

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or self._is_broad(node.type)
            if not broad:
                continue
            if any(isinstance(n, ast.Raise) for n in ast.walk(node)):
                continue
            label = "bare except" if node.type is None else "except Exception"
            yield (
                node.lineno,
                node.col_offset,
                f"{label} swallows typed guard exceptions; catch the specific "
                f"error or re-raise ({self.paper_ref})",
            )

    def _is_broad(self, t: ast.expr) -> bool:
        names: Iterable[ast.expr]
        names = t.elts if isinstance(t, ast.Tuple) else [t]
        for n in names:
            if isinstance(n, ast.Name) and n.id in self._BROAD:
                return True
        return False


class MutableDefaultArg(Rule):
    """DCL005: mutable default argument.

    A shared-across-calls list/dict/set/array default is hidden global
    state -- the same class of replay hazard as global RNG.
    """

    code = "DCL005"
    name = "mutable-default"
    summary = "mutable default argument (list/dict/set/np.array)"
    paper_ref = "PR-1 determinism (no hidden cross-call state)"

    _CTORS = ("list", "dict", "set", "bytearray")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for d in defaults:
                bad = None
                if isinstance(d, (ast.List, ast.Dict, ast.Set)):
                    bad = type(d).__name__.lower() + " literal"
                elif isinstance(d, ast.Call):
                    if isinstance(d.func, ast.Name) and d.func.id in self._CTORS:
                        bad = f"{d.func.id}() call"
                    else:
                        np_name = ctx.numpy_call_name(d.func)
                        if np_name in ARRAY_CONSTRUCTORS:
                            bad = f"np.{np_name}() call"
                if bad is not None:
                    yield (
                        d.lineno,
                        d.col_offset,
                        f"mutable default ({bad}) in {node.name}() is shared "
                        f"across calls; default to None and construct inside "
                        f"({self.paper_ref})",
                    )


class UntracedPublicKernel(Rule):
    """DCL006: public kernel in a phase module without a tracer span.

    The paper-taxonomy phase breakdown (Tables I-II, Fig. 5) is only
    trustworthy if every public kernel entry point in the phase modules
    opens a ``trace_span``; an untraced kernel shows up as missing time.
    Inner per-variant kernels timed by their public wrapper should carry
    an inline suppression naming the wrapper.
    """

    code = "DCL006"
    name = "untraced-kernel"
    summary = "public phase-module kernel without a trace_span"
    paper_ref = "paper kernel taxonomy (Tables I-II, Fig. 5 completeness)"
    scope_attr = "traced_phase_paths"

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                bodies = [
                    n
                    for n in node.body
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and not n.name.startswith("_")
                ]
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                bodies = [node]
            else:
                continue
            for fn in bodies:
                if self._opens_span(fn):
                    continue
                if self._is_trivial(fn, ctx):
                    continue
                yield (
                    fn.lineno,
                    fn.col_offset,
                    f"public kernel {fn.name}() in a phase module never opens "
                    f"a trace_span; wrap the hot region or suppress naming "
                    f"the traced wrapper ({self.paper_ref})",
                )

    @staticmethod
    def _opens_span(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                f = node.func
                if isinstance(f, ast.Name) and f.id == "trace_span":
                    return True
                if isinstance(f, ast.Attribute) and f.attr in ("trace_span", "span"):
                    return True
        return False

    @staticmethod
    def _is_trivial(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> bool:
        """Helpers that can't be hot are exempt: no loops, and either no
        numpy calls at all (cost models, validators) or a tiny
        expression body (phase-field one-liners cached by the wrapper)."""
        has_loop = any(
            isinstance(n, (ast.For, ast.While, ast.AsyncFor)) for n in ast.walk(fn)
        )
        if has_loop:
            return False
        uses_numpy = any(
            isinstance(n, ast.Call) and ctx.numpy_call_name(n.func) is not None
            for n in ast.walk(fn)
        )
        body = [
            n
            for n in fn.body
            if not (isinstance(n, ast.Expr) and isinstance(n.value, ast.Constant))
            and not isinstance(n, ast.Pass)
        ]
        return not uses_numpy or len(body) <= 2


class OutAliasing(Rule):
    """DCL007: ``out=`` aliases an input of a non-elementwise op.

    ``np.matmul(a, b, out=a)`` reads ``a`` after it has started writing
    it; unlike elementwise ufuncs, reductions/contractions give silently
    wrong results.  Use a distinct preallocated output buffer.
    """

    code = "DCL007"
    name = "out-aliases-input"
    summary = "out= aliases an input of a non-elementwise op"
    paper_ref = "Alg. 2 in-place update correctness (read-after-write)"

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            np_name = ctx.numpy_call_name(node.func)
            if np_name not in NON_ELEMENTWISE_OUT_OPS:
                continue
            out_kw = next((kw for kw in node.keywords if kw.arg == "out"), None)
            if out_kw is None or not isinstance(out_kw.value, ast.Name):
                continue
            out_name = out_kw.value.id
            input_names: Set[str] = set()
            for arg in node.args:
                input_names |= _names_in(arg)
            if out_name in input_names:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"out={out_name!r} aliases an input of np.{np_name}(), "
                    f"which reads inputs after writing out; use a separate "
                    f"workspace buffer ({self.paper_ref})",
                )


class MissingDvolWeight(Rule):
    """DCL008: grid inner product without the volume element.

    On the real-space mesh, <a|b> = sum conj(a)*b * dvol; a ``np.vdot``
    or conjugate-contraction ``einsum`` whose statement never touches
    ``dvol`` is (almost always) an unnormalized reduction -- energies and
    overlaps come out scaled by 1/dvol.  Statements that mention dvol
    anywhere (including via ``grid.dvol``) pass.
    """

    code = "DCL008"
    name = "missing-dvol"
    summary = "vdot/conjugate einsum not weighted by the volume element"
    paper_ref = "Eq. 5-9 mesh inner products (dvol weighting)"
    scope_attr = "dvol_paths"

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            np_name = ctx.numpy_call_name(node.func)
            is_vdot = np_name == "vdot"
            is_conj_einsum = np_name == "einsum" and self._has_conj_operand(node)
            if not (is_vdot or is_conj_einsum):
                continue
            stmt = ctx.statement_of(node)
            if self._mentions_dvol(stmt):
                continue
            op = "np.vdot" if is_vdot else "conjugate np.einsum"
            yield (
                node.lineno,
                node.col_offset,
                f"{op} reduction is not weighted by dvol in this statement; "
                f"mesh inner products need the volume element "
                f"({self.paper_ref})",
            )

    @staticmethod
    def _has_conj_operand(call: ast.Call) -> bool:
        for arg in call.args:
            for node in ast.walk(arg):
                if isinstance(node, ast.Call):
                    f = node.func
                    if isinstance(f, ast.Attribute) and f.attr in ("conj", "conjugate"):
                        return True
                    if isinstance(f, ast.Name) and f.id in ("conj", "conjugate"):
                        return True
        return False

    @staticmethod
    def _mentions_dvol(stmt: ast.AST) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and "dvol" in node.id:
                return True
            if isinstance(node, ast.Attribute) and "dvol" in node.attr:
                return True
        return False


class SerialRankLoop(Rule):
    """DCL009: per-domain solver constructed inside a loop.

    The rank/domain hot paths dispatch per-domain work through the
    DomainExecutor abstraction (``executor.map`` over a module-level
    task), which is what makes the serial/thread/process backends
    interchangeable and gives the crash-healing, tracing and worker-RNG
    discipline for free.  Building a ``DomainSolver`` or ``QDPropagator``
    directly inside a ``for``/``while`` loop in these modules reverts to
    the old inline iteration and silently bypasses all of that.
    """

    code = "DCL009"
    name = "executor-bypass"
    summary = "rank/domain loop builds DomainSolver/QDPropagator inline"
    paper_ref = "Figs. 2-3 per-rank parallel structure"
    scope_attr = "executor_paths"

    _SOLVERS = ("DomainSolver", "QDPropagator")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                called = func.id
            elif isinstance(func, ast.Attribute):
                called = func.attr
            else:
                continue
            if called not in self._SOLVERS:
                continue
            if ctx.loop_depth(node) < 1:
                continue
            yield (
                node.lineno,
                node.col_offset,
                f"{called}() constructed inside a loop bypasses the "
                f"DomainExecutor; move the per-domain body into a "
                f"module-level task and dispatch it with executor.map "
                f"({self.paper_ref})",
            )


class UntunedLiteral(Rule):
    """DCL010: tuned parameter pinned to an int literal at a call site.

    The tuning subsystem (``repro.tuning``) owns block/chunk-shape
    selection: kernels resolve ``block_size`` / ``orb_block`` /
    ``chunk_size`` from the active :class:`TuningProfile` when the
    caller leaves them unset (``None``).  A call site on a
    tuning-managed path that pins one of these keywords to an integer
    literal silently bypasses the persisted, machine-fingerprinted
    cache -- the tuned winner never takes effect on that path.  Pass
    ``None`` (profile resolution) or a value read from the profile.
    The tuning subsystem itself and the benchmark ablation sweeps
    enumerate candidate values by design and are out of scope.
    """

    code = "DCL010"
    name = "untuned-literal"
    summary = "tuned block/chunk parameter pinned to an int literal"
    paper_ref = "Tables I-II block-shape selection (repro.tuning ownership)"
    scope_attr = "tuning_literal_paths"

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg not in TUNED_LITERAL_KWARGS:
                    continue
                v = kw.value
                if (
                    isinstance(v, ast.Constant)
                    and isinstance(v.value, int)
                    and not isinstance(v.value, bool)
                ):
                    yield (
                        v.lineno,
                        v.col_offset,
                        f"{kw.arg}={v.value} hard-codes a tuning-managed "
                        f"parameter at the call site, bypassing the active "
                        f"TuningProfile; pass None (profile resolution) or "
                        f"read it from the profile ({self.paper_ref})",
                    )


class UnboundedBlocking(Rule):
    """DCL011: blocking primitive call with no timeout on a liveness path.

    The hang-aware execution layer (heartbeat watchdog, deadline
    scopes) only works if the parent never parks itself in an
    *unbounded* kernel wait: a bare ``future.result()`` /
    ``queue.get()`` / ``thread.join()`` / ``event.wait()`` /
    ``lock.acquire()`` behind a wedged worker blocks forever and no
    watchdog can preempt it.  On the executor/supervisor/liveness
    paths every such call must carry a bound (``timeout=`` or a
    positional argument) and poll, re-checking the armed deadline
    scope between rounds.  A ``while True:`` loop with no ``break`` or
    ``return`` in its body is flagged for the same reason.
    """

    code = "DCL011"
    name = "unbounded-blocking"
    summary = "blocking call without a timeout (or while-True with no exit)"
    paper_ref = "hang-aware execution: slow/stuck ranks dominate at scale"
    scope_attr = "liveness_paths"

    #: Method names that park the calling thread until an external
    #: event.  Attribute calls only -- and only with *no* positional
    #: arguments, which keeps ``d.get(key)`` / ``", ".join(xs)`` out.
    _BLOCKING = ("acquire", "get", "join", "recv", "result", "wait")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._BLOCKING
                    and not node.args
                    and not any(kw.arg == "timeout" for kw in node.keywords)
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f".{func.attr}() with no timeout blocks forever "
                        f"behind a wedged worker; pass timeout= and poll, "
                        f"re-checking check_deadline() between rounds "
                        f"({self.paper_ref})",
                    )
            elif isinstance(node, ast.While):
                test = node.test
                if not (isinstance(test, ast.Constant) and test.value is True):
                    continue
                body_nodes = [
                    n for stmt in node.body for n in ast.walk(stmt)
                ]
                if any(isinstance(n, (ast.Break, ast.Return))
                       for n in body_nodes):
                    continue
                yield (
                    node.lineno,
                    node.col_offset,
                    f"while True: with no break/return never terminates "
                    f"on its own; bound the loop on a deadline, stop "
                    f"event or retry budget ({self.paper_ref})",
                )


class BareNumpyInXpKernel(Rule):
    """DCL016: bare ``np.*`` call inside a namespace-generic kernel.

    The array-API substrate layer (repro.backend) makes hot kernels
    accept the namespace handle ``xp`` as their first parameter and
    promises they run unmodified on any standard-conforming array
    library -- that is the whole GPU-portability story.  A ``np.*``
    call inside such a kernel breaks the promise twice over: on a
    non-NumPy substrate it raises (strict-mode arrays refuse NumPy
    ufuncs), and where NumPy *happens* to accept the array it silently
    round-trips through the host, defeating the dispatch.  The only
    sanctioned numpy touches are the ``asarray`` boundary conversion
    and dtype constants (plain metadata every namespace accepts).
    """

    code = "DCL016"
    name = "bare-numpy-in-xp-kernel"
    summary = "np.* call inside an xp-first (namespace-generic) kernel"
    paper_ref = "Sec. IV kernel offload: one kernel source, any substrate"
    scope_attr = "xp_kernel_paths"

    @staticmethod
    def _is_xp_kernel(fn: ast.AST) -> bool:
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        args = fn.args.posonlyargs + fn.args.args
        return bool(args) and args[0].arg == "xp"

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = ctx.enclosing_function(node)
            if fn is None or not self._is_xp_kernel(fn):
                continue
            np_name = ctx.numpy_call_name(node.func)
            if np_name is None or np_name in XP_KERNEL_NUMPY_OK:
                continue
            yield (
                node.lineno,
                node.col_offset,
                f"np.{np_name}() inside xp-kernel {fn.name}() pins the "
                f"kernel to host NumPy; call xp.{np_name.split('.')[-1]} "
                f"(or hoist the numpy work outside the xp-first function) "
                f"so the substrate stays dispatchable ({self.paper_ref})",
            )


class EventLoopBlocker(Rule):
    """DCL017: blocking call lexically inside an ``async def``.

    The serving daemon multiplexes every client over one asyncio event
    loop; a single blocking call inside an ``async def`` -- a
    ``time.sleep``, an un-awaited socket op, eager file I/O, a
    subprocess wait -- freezes *all* connections and the batching
    scheduler for its full duration, silently destroying the tail
    latencies the serve benchmarks gate.  Compute and file I/O must
    hop to a worker thread via ``run_in_executor`` (a nested plain
    ``def`` is the sanctioned carrier and is exempt: only the nearest
    enclosing function matters).  Awaited calls are exempt too, so
    asyncio's own ``sleep``/stream/socket coroutines never trip.
    """

    code = "DCL017"
    name = "event-loop-blocker"
    summary = "blocking call lexically inside an async def on a serve path"
    paper_ref = "serving-layer latency contract (BENCH_serve p99 gates)"
    scope_attr = "async_paths"

    _BUILTINS = ("open", "input")

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = ctx.enclosing_function(node)
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            if isinstance(ctx.parent(node), ast.Await):
                continue
            blocked = self._blocking_name(node.func)
            if blocked is None:
                continue
            yield (
                node.lineno,
                node.col_offset,
                f"{blocked} blocks the event loop inside async "
                f"{fn.name}(); every connected client stalls for its "
                f"full duration -- run it on the worker thread via "
                f"run_in_executor (or await the asyncio equivalent) "
                f"({self.paper_ref})",
            )

    def _blocking_name(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in self._BUILTINS:
            return f"{func.id}()"
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if isinstance(value, ast.Name):
            if (value.id, func.attr) in BLOCKING_MODULE_CALLS:
                return f"{value.id}.{func.attr}()"
        if func.attr in BLOCKING_METHODS:
            return f".{func.attr}()"
        return None


ALL_RULES: Tuple[Rule, ...] = (
    HotLoopAllocation(),
    DtypePromotionHazard(),
    GlobalRNG(),
    BroadExcept(),
    MutableDefaultArg(),
    UntracedPublicKernel(),
    OutAliasing(),
    MissingDvolWeight(),
    SerialRankLoop(),
    UntunedLiteral(),
    UnboundedBlocking(),
    BareNumpyInXpKernel(),
    EventLoopBlocker(),
)


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule: per-module (DCL001-011, 016) + project (DCL012-015).

    Imported lazily because the project rules build on top of this
    module's :class:`Rule` base.
    """
    from repro.statlint.project_rules import PROJECT_RULES

    return ALL_RULES + PROJECT_RULES


def rule_codes() -> Tuple[str, ...]:
    """All registered rule codes, in DCL number order."""
    return tuple(sorted(r.code for r in all_rules()))


def get_rule(code: str) -> Rule:
    """Look up one rule by its DCLnnn code (KeyError when unknown)."""
    for r in all_rules():
        if r.code == code.upper():
            return r
    raise KeyError(f"unknown rule {code!r}; known: {', '.join(rule_codes())}")
