"""Forward dataflow for the project-wide statlint rules.

Two abstract domains are propagated through each function body in
program order, with joins at control-flow merges:

* a **dtype lattice** ``{complex128, float64, float32, int, unknown}``
  mirroring the repo's kernel dtype contract.  Values are inferred from
  constants, numpy constructors (``np.zeros(..., dtype=...)``),
  ``astype`` casts, arithmetic promotion, and -- through the optional
  ``call_resolver`` hook the project layer supplies -- the inferred
  return dtype of cross-module calls.  DCL014 reads the per-expression
  results to find complex128 values flowing into real-dtype sinks.

* a **noneness domain** ``{none, notnone, maybe}`` with ``is None`` /
  ``is not None`` branch narrowing, used by DCL015 to decide whether a
  ``None``-default tunable parameter can reach a kernel use without
  passing through the TuningProfile resolution point.

The analysis is deliberately flow-sensitive but path-insensitive: loop
bodies are interpreted once and joined with the pre-loop environment,
which is sound for the "may reach" questions the rules ask.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

#: The dtype lattice, narrowest to widest; ``unknown`` is top.
DTYPE_VALUES: Tuple[str, ...] = ("int", "float32", "float64", "complex128", "unknown")

_RANK: Dict[str, int] = {"int": 0, "float32": 1, "float64": 2, "complex128": 3}

#: Textual numpy dtype names folded onto the lattice.  ``complex64`` has
#: no lattice point (the rules treat it as a *sink*, never a source), so
#: it maps to unknown.
_DTYPE_NAMES: Dict[str, str] = {
    "complex128": "complex128",
    "cdouble": "complex128",
    "complex": "complex128",
    "complex_": "complex128",
    "float64": "float64",
    "double": "float64",
    "float": "float64",
    "float_": "float64",
    "float32": "float32",
    "single": "float32",
    "float16": "float32",
    "half": "float32",
    "int": "int",
    "int8": "int",
    "int16": "int",
    "int32": "int",
    "int64": "int",
    "intp": "int",
    "uint8": "int",
    "uint16": "int",
    "uint32": "int",
    "uint64": "int",
    "bool_": "int",
    "bool": "int",
}

#: ndarray methods that preserve the receiver's dtype.
_DTYPE_PRESERVING_METHODS: Tuple[str, ...] = (
    "copy",
    "reshape",
    "ravel",
    "flatten",
    "transpose",
    "squeeze",
    "conj",
    "conjugate",
    "sum",
    "mean",
    "cumsum",
    "take",
    "clip",
    "view",
)

#: numpy functions returning the promotion of their array arguments.
_PROMOTING_FUNCS: Tuple[str, ...] = (
    "add",
    "subtract",
    "multiply",
    "divide",
    "vdot",
    "dot",
    "matmul",
    "einsum",
    "tensordot",
    "inner",
    "outer",
    "sum",
    "mean",
    "trace",
    "conj",
    "conjugate",
    "where",
    "concatenate",
    "stack",
    "roll",
)

#: Transcendental numpy functions: integer inputs promote to float64.
_TRANSCENDENTAL_FUNCS: Tuple[str, ...] = (
    "exp",
    "expm1",
    "log",
    "log2",
    "log10",
    "sqrt",
    "sin",
    "cos",
    "tan",
    "sinh",
    "cosh",
    "tanh",
    "arcsin",
    "arccos",
    "arctan",
    "power",
)

#: numpy functions whose result is real even for complex input.
_REALIZING_FUNCS: Tuple[str, ...] = ("abs", "absolute", "real", "imag", "angle")

#: Array constructors that default to float64 when no dtype is given.
_FLOAT_DEFAULT_CTORS: Tuple[str, ...] = ("zeros", "ones", "empty", "linspace")

#: Constructors inferring dtype from their first (array) argument.
_INFERRING_CTORS: Tuple[str, ...] = (
    "array",
    "asarray",
    "ascontiguousarray",
    "asfortranarray",
    "copy",
    "zeros_like",
    "ones_like",
    "empty_like",
    "full_like",
)


def promote(a: str, b: str) -> str:
    """Numpy-style binary promotion on the lattice; unknown poisons."""
    if a == "unknown" or b == "unknown":
        return "unknown"
    return a if _RANK[a] >= _RANK[b] else b


def join(a: str, b: str) -> str:
    """Control-flow join: agreeing facts survive, disagreements widen."""
    return a if a == b else "unknown"


def real_of(d: str) -> str:
    """The dtype of ``x.real`` / ``abs(x)`` for a value of dtype ``d``."""
    return "float64" if d == "complex128" else d


def lattice_of_dtype_name(name: Optional[str]) -> str:
    """Fold a textual dtype name ("float32", "np.cdouble") to the lattice."""
    if name is None:
        return "unknown"
    return _DTYPE_NAMES.get(name.strip(), "unknown")


def join_noneness(a: str, b: str) -> str:
    """Join in the ``{none, notnone, maybe}`` noneness domain."""
    return a if a == b else "maybe"


#: Resolver hook signature: given a Call node, return the inferred
#: lattice dtype of its result, or None to fall back to local inference.
CallResolver = Callable[[ast.Call], Optional[str]]

#: Dtype-name resolver: maps an AST dtype expression (``np.float32``,
#: ``"float32"``, ``float32``) to its textual dtype name, or None.
DtypeNamer = Callable[[ast.expr], Optional[str]]


class FunctionDataflow:
    """One forward pass over a statement list, recording per-node facts.

    After :meth:`run`, ``types`` maps ``id(expr-node)`` to the inferred
    lattice dtype of every visited expression, and ``noneness`` maps
    ``id(Name-load-node)`` to the noneness of that variable at that
    program point.  ``literal_narrowings`` records ``is None``-guarded
    assignments of tracked names to bare int literals (the DCL015
    profile-bypass case).
    """

    def __init__(
        self,
        body: Sequence[ast.stmt],
        dtype_namer: Optional[DtypeNamer] = None,
        call_resolver: Optional[CallResolver] = None,
        param_noneness: Optional[Dict[str, str]] = None,
        param_dtypes: Optional[Dict[str, str]] = None,
    ) -> None:
        self.body = list(body)
        self._dtype_namer = dtype_namer
        self._call_resolver = call_resolver
        self.types: Dict[int, str] = {}
        self.noneness: Dict[int, str] = {}
        #: (name, assignment node) pairs: tracked name narrowed from a
        #: possible None straight to an int literal.
        self.literal_narrowings: List[Tuple[str, ast.stmt]] = []
        self.return_dtype: str = "unknown"
        self._returns: List[str] = []
        self._env: Dict[str, str] = dict(param_dtypes or {})
        self._none_env: Dict[str, str] = dict(param_noneness or {})
        #: Names whose noneness is tracked (DCL015 params); only these
        #: get per-load noneness records and literal-narrowing records.
        self._tracked: Set[str] = set(param_noneness or {})

    # ------------------------------------------------------------- #
    # driver
    # ------------------------------------------------------------- #
    def run(self) -> "FunctionDataflow":
        """Interpret the body; returns self for chaining."""
        self._exec_block(self.body)
        if self._returns:
            out = self._returns[0]
            for r in self._returns[1:]:
                out = join(out, r)
            self.return_dtype = out
        return self

    # ------------------------------------------------------------- #
    # statements
    # ------------------------------------------------------------- #
    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            dt = self._eval(stmt.value)
            nn = self._noneness_of_expr(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, dt, nn, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                dt = self._eval(stmt.value)
                nn = self._noneness_of_expr(stmt.value)
                self._assign_target(stmt.target, dt, nn, stmt)
        elif isinstance(stmt, ast.AugAssign):
            dt = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                cur = self._env.get(stmt.target.id, "unknown")
                self._env[stmt.target.id] = promote(cur, dt)
                self._set_noneness(stmt.target.id, "notnone", stmt)
            else:
                self._eval(stmt.target)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_dt = self._eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self._env[stmt.target.id] = iter_dt
                self._none_env[stmt.target.id] = "notnone"
            pre_env, pre_none = dict(self._env), dict(self._none_env)
            self._exec_block(stmt.body)
            self._join_envs(pre_env, pre_none)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            pre_env, pre_none = dict(self._env), dict(self._none_env)
            self._exec_block(stmt.body)
            self._join_envs(pre_env, pre_none)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self._env[item.optional_vars.id] = "unknown"
                    self._none_env[item.optional_vars.id] = "notnone"
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            pre_env, pre_none = dict(self._env), dict(self._none_env)
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                env_snap, none_snap = dict(self._env), dict(self._none_env)
                self._env, self._none_env = dict(pre_env), dict(pre_none)
                self._exec_block(handler.body)
                self._join_envs(env_snap, none_snap)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._returns.append(self._eval(stmt.value))
            else:
                self._returns.append("unknown")
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are opaque values; their bodies are not entered.
            self._env[stmt.name] = "unknown"
            self._none_env[stmt.name] = "notnone"
        # Import/Global/Pass/Break/Continue/ClassDef: no dataflow effect.

    def _assign_target(
        self, target: ast.expr, dt: str, nn: str, stmt: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            self._env[target.id] = dt
            self._set_noneness(target.id, nn, stmt)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, "unknown", "maybe", stmt)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # Evaluate the store target's base so sink rules can query
            # the dtype of ``out`` in ``out[i] = z``.
            self._eval(target.value)
            if isinstance(target, ast.Subscript):
                self._eval(target.slice)

    def _noneness_of_expr(self, node: ast.expr) -> str:
        """Noneness of an assigned value expression.

        Deliberately optimistic for calls and other opaque expressions
        ("notnone"): DCL015 asks whether the *declared-None default*
        can still be None, and any reassignment through a resolver call
        is exactly the sanctioned fix.
        """
        if isinstance(node, ast.Constant):
            return "none" if node.value is None else "notnone"
        if isinstance(node, ast.Name):
            return self._none_env.get(node.id, "notnone")
        if isinstance(node, ast.IfExp):
            return join_noneness(
                self._noneness_of_expr(node.body),
                self._noneness_of_expr(node.orelse),
            )
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            # ``x or 32``: the result is None only if the last arm is.
            return self._noneness_of_expr(node.values[-1])
        return "notnone"

    def _set_noneness(self, name: str, nn: str, stmt: ast.stmt) -> None:
        was = self._none_env.get(name)
        self._none_env[name] = nn
        if (
            name in self._tracked
            and was in ("none", "maybe")
            and isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
            and not isinstance(stmt.value.value, bool)
        ):
            self.literal_narrowings.append((name, stmt))

    def _exec_if(self, stmt: ast.If) -> None:
        self._eval(stmt.test)
        narrowed = _none_test(stmt.test)
        body_env, body_none = dict(self._env), dict(self._none_env)
        else_env, else_none = dict(self._env), dict(self._none_env)
        if narrowed is not None:
            name, is_none = narrowed
            body_none[name] = "none" if is_none else "notnone"
            else_none[name] = "notnone" if is_none else "none"
        # Branch bodies that end in raise/return/continue do not merge
        # back (the guard pattern ``if x is None: raise``).
        self._env, self._none_env = body_env, body_none
        self._exec_block(stmt.body)
        body_exits = _block_exits(stmt.body)
        out_env, out_none = dict(self._env), dict(self._none_env)
        self._env, self._none_env = else_env, else_none
        self._exec_block(stmt.orelse)
        else_exits = bool(stmt.orelse) and _block_exits(stmt.orelse)
        if body_exits and not else_exits:
            return  # fall-through env is the else env, already active
        if else_exits and not body_exits:
            self._env, self._none_env = out_env, out_none
            return
        self._join_envs(out_env, out_none)

    def _join_envs(self, env: Dict[str, str], none_env: Dict[str, str]) -> None:
        merged: Dict[str, str] = {}
        for name in set(self._env) | set(env):
            merged[name] = join(
                self._env.get(name, "unknown"), env.get(name, "unknown")
            )
        self._env = merged
        merged_none: Dict[str, str] = {}
        for name in set(self._none_env) | set(none_env):
            merged_none[name] = join_noneness(
                self._none_env.get(name, "maybe"), none_env.get(name, "maybe")
            )
        self._none_env = merged_none

    # ------------------------------------------------------------- #
    # expressions
    # ------------------------------------------------------------- #
    def _eval(self, node: ast.expr) -> str:
        dt = self._eval_inner(node)
        self.types[id(node)] = dt
        return dt

    def _eval_inner(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return "int"
            if isinstance(v, int):
                return "int"
            if isinstance(v, float):
                return "float64"
            if isinstance(v, complex):
                return "complex128"
            return "unknown"
        if isinstance(node, ast.Name):
            if node.id in self._tracked and isinstance(node.ctx, ast.Load):
                self.noneness[id(node)] = self._none_env.get(node.id, "maybe")
            return self._env.get(node.id, "unknown")
        if isinstance(node, ast.BinOp):
            return promote(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out = "unknown"
            for i, v in enumerate(node.values):
                dt = self._eval(v)
                out = dt if i == 0 else join(out, dt)
            return out
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return "int"
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return join(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value)
            self._eval(node.slice)
            return base
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            if node.attr in ("real", "imag"):
                return real_of(base)
            if node.attr == "T":
                return base
            return "unknown"
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt)
            return "unknown"
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self._eval(k)
            for v in node.values:
                self._eval(v)
            return "unknown"
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in node.generators:
                self._eval(gen.iter)
            return "unknown"
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self._eval(v.value)
            return "unknown"
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return "unknown"
        return "unknown"

    def _eval_call(self, node: ast.Call) -> str:
        arg_dts = [self._eval(a) for a in node.args]
        for kw in node.keywords:
            self._eval(kw.value)
        func = node.func
        # Method calls: evaluate the receiver chain too.
        if isinstance(func, ast.Attribute):
            recv_dt = self._eval(func.value)
            if func.attr == "astype":
                target = self._dtype_arg(node)
                return lattice_of_dtype_name(target)
            if func.attr in _DTYPE_PRESERVING_METHODS:
                return recv_dt
            if func.attr in ("real", "imag"):
                return real_of(recv_dt)
        np_name = self._numpy_name(node)
        if np_name is not None:
            result = self._eval_numpy_call(node, np_name, arg_dts)
            if result is not None:
                return result
        if self._call_resolver is not None:
            resolved = self._call_resolver(node)
            if resolved is not None:
                return resolved
        return "unknown"

    def _numpy_name(self, node: ast.Call) -> Optional[str]:
        if self._dtype_namer is None:
            return None
        # Reuse the dtype namer's module alias knowledge indirectly: the
        # project layer passes a namer that also resolves call names.
        name = self._dtype_namer(node.func)
        return name

    def _dtype_arg(self, node: ast.Call) -> Optional[str]:
        """The textual dtype a cast/constructor targets, if recognizable."""
        target: Optional[ast.expr] = None
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            if node.args:
                target = node.args[0]
        for kw in node.keywords:
            if kw.arg == "dtype":
                target = kw.value
        if target is None or self._dtype_namer is None:
            return None
        return self._dtype_namer(target)

    def _eval_numpy_call(
        self, node: ast.Call, np_name: str, arg_dts: List[str]
    ) -> Optional[str]:
        dtype_kw = self._dtype_arg(node)
        if dtype_kw is not None:
            return lattice_of_dtype_name(dtype_kw)
        if np_name in _FLOAT_DEFAULT_CTORS:
            return "float64"
        if np_name in _INFERRING_CTORS:
            return arg_dts[0] if arg_dts else "unknown"
        if np_name == "full":
            return arg_dts[1] if len(arg_dts) > 1 else "unknown"
        if np_name == "arange":
            # arange never yields complex; unknown count/step args (the
            # common ``arange(n)`` case) must not poison the result.
            out = "int"
            for dt in arg_dts:
                if dt != "unknown":
                    out = promote(out, dt)
            return out
        if np_name in _REALIZING_FUNCS:
            return real_of(arg_dts[0]) if arg_dts else "unknown"
        if np_name in _TRANSCENDENTAL_FUNCS:
            # Promote over *known* args only: exp(unknown) is called
            # float64 rather than unknown, which can only under-claim
            # (a miss), never mislabel a real value as complex128.
            out = "int"
            for dt in arg_dts:
                if dt != "unknown":
                    out = promote(out, dt)
            return "float64" if out == "int" else out
        if np_name in _PROMOTING_FUNCS:
            if not arg_dts:
                return "unknown"
            out = arg_dts[0]
            for dt in arg_dts[1:]:
                out = promote(out, dt)
            return out
        if np_name.startswith("fft."):
            return "float64" if np_name in ("fft.irfft", "fft.hfft") else "complex128"
        direct = lattice_of_dtype_name(np_name)
        if direct != "unknown":
            # np.float64(x) style scalar constructor.
            return direct
        return None


def _none_test(test: ast.expr) -> Optional[Tuple[str, bool]]:
    """Decompose ``X is None`` / ``X is not None``: (name, is_none)."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    if not isinstance(test.left, ast.Name):
        return None
    comparator = test.comparators[0]
    if not (isinstance(comparator, ast.Constant) and comparator.value is None):
        return None
    if isinstance(test.ops[0], ast.Is):
        return (test.left.id, True)
    if isinstance(test.ops[0], ast.IsNot):
        return (test.left.id, False)
    return None


def _block_exits(stmts: Sequence[ast.stmt]) -> bool:
    """Whether a block always leaves the function/loop (raise/return/...)."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Raise, ast.Return, ast.Continue, ast.Break)
    )


def analyze_function(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    dtype_namer: Optional[DtypeNamer] = None,
    call_resolver: Optional[CallResolver] = None,
    tracked_none_params: Optional[Sequence[str]] = None,
) -> FunctionDataflow:
    """Run the forward pass over one function definition.

    ``tracked_none_params`` names parameters whose noneness should be
    tracked starting from "maybe" (their declared default is None).
    """
    param_noneness = {p: "maybe" for p in (tracked_none_params or ())}
    flow = FunctionDataflow(
        fn.body,
        dtype_namer=dtype_namer,
        call_resolver=call_resolver,
        param_noneness=param_noneness,
    )
    return flow.run()


def analyze_module_body(
    body: Sequence[ast.stmt],
    dtype_namer: Optional[DtypeNamer] = None,
    call_resolver: Optional[CallResolver] = None,
) -> FunctionDataflow:
    """Run the forward pass over module-level statements."""
    flow = FunctionDataflow(
        body, dtype_namer=dtype_namer, call_resolver=call_resolver
    )
    return flow.run()


def none_default_params(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef", names: Sequence[str]
) -> List[str]:
    """Parameters of ``fn`` from ``names`` whose declared default is None."""
    args = fn.args
    out: List[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    # defaults align with the tail of the positional parameter list
    for arg, default in zip(positional[len(positional) - len(args.defaults):],
                            args.defaults):
        if (
            arg.arg in names
            and isinstance(default, ast.Constant)
            and default.value is None
        ):
            out.append(arg.arg)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if (
            arg.arg in names
            and kw_default is not None
            and isinstance(kw_default, ast.Constant)
            and kw_default.value is None
        ):
            out.append(arg.arg)
    return out
